//! # uaq — Uncertainty-Aware Query execution time prediction
//!
//! A from-scratch Rust reproduction of *Uncertainty Aware Query Execution
//! Time Prediction* (Wentao Wu, Xi Wu, Hakan Hacıgümüş, Jeffrey F. Naughton;
//! arXiv:1408.6589, 2014). Instead of a single point estimate, the predictor
//! reports a **distribution of likely running times**
//! `t_q ~ N(E[t_q], Var[t_q])` by treating the optimizer cost model's inputs
//! — the system cost units `c` and the operator selectivities `X` — as
//! random variables:
//!
//! * the `c`'s are calibrated with dedicated micro-queries, keeping sample
//!   **variances**, not just means (§3.1 of the paper);
//! * the `X`'s come from the Haas et al. sampling estimator with its `S_n²`
//!   variance estimator, computed for a whole plan in one provenance-tracked
//!   pass over materialized sample tables (§3.2, Algorithm 1);
//! * the cost model is probed as a black box and approximated by the six
//!   logical cost-function forms C1'–C6' via non-negative least squares on a
//!   `[μ ± 3σ]` grid (§4);
//! * `Var[t_q]` combines exact normal-moment algebra with upper bounds for
//!   the covariances between selectivity estimates of nested operators
//!   (§5, Theorems 7–10, Algorithm 3).
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`stats`] | RNG, erf/Φ, normal moments, NNLS, correlations, `D_n`, Zipf |
//! | [`storage`] | tables, histograms, provenance-carrying sample tables |
//! | [`datagen`] | TPC-H-like generator with Zipf skew |
//! | [`engine`] | plans, executor (full + sample modes), planner |
//! | [`cost`] | cost units, hardware profiles, oracle model, calibration, fitting, simulated runtime |
//! | [`selest`] | `ρ_n`/`S_n²` estimation and covariance bounds |
//! | [`core`] | **the predictor** (Algorithms 2–3, ablation variants) |
//! | [`workloads`] | MICRO / SELJOIN / TPCH benchmarks |
//! | [`experiments`] | experiment matrix, metrics, paper table/figure renderers |
//! | [`service`] | concurrent prediction service: worker pool, plan-shape fit cache, deadline-aware admission |
//! | [`telemetry`] | metrics registry, request spans, calibration monitor, JSONL events |
//!
//! ## Quickstart
//!
//! ```
//! use uaq::prelude::*;
//!
//! // 1. A database (deterministic TPC-H-like generator).
//! let catalog = GenConfig::new(0.001, 0.0, 42).build();
//!
//! // 2. Calibrate the five cost units on simulated hardware (§3.1).
//! let mut rng = Rng::new(7);
//! let units = calibrate(&HardwareProfile::pc1(), &CalibrationConfig::default(), &mut rng);
//!
//! // 3. Materialize sample tables (§3.2.2): 5% ratio, 2 independent copies.
//! let samples = catalog.draw_samples(0.05, 2, &mut rng);
//!
//! // 4. A query plan (here via the heuristic planner).
//! let spec = QuerySpec::scan(
//!     "demo",
//!     TableRef::new("lineitem", Pred::le("l_quantity", Value::Float(25.0))),
//! );
//! let plan = plan_query(&spec, &catalog);
//!
//! // 5. Predict the distribution of likely running times.
//! let predictor = Predictor::new(units, PredictorConfig::default());
//! let prediction = predictor.predict(&plan, &catalog, &samples);
//! let (lo, hi) = prediction.confidence_interval_ms(0.70);
//! assert!(lo < prediction.mean_ms() && prediction.mean_ms() < hi);
//! assert!(prediction.std_dev_ms() > 0.0);
//! ```

pub use uaq_core as core;
pub use uaq_cost as cost;
pub use uaq_datagen as datagen;
pub use uaq_engine as engine;
pub use uaq_experiments as experiments;
pub use uaq_selest as selest;
pub use uaq_service as service;
pub use uaq_stats as stats;
pub use uaq_storage as storage;
pub use uaq_telemetry as telemetry;
pub use uaq_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use uaq_core::{Prediction, Predictor, PredictorConfig, Variant};
    pub use uaq_cost::{
        calibrate, simulate_actual_time, CalibrationConfig, HardwareProfile, NodeCostContext,
        SimConfig, UnitDists,
    };
    pub use uaq_datagen::{DbPreset, GenConfig};
    pub use uaq_engine::{
        execute_full, execute_on_samples, plan_query, AggFunc, CmpOp, JoinStep, Plan, Pred,
        QuerySpec, SortOrder, TableRef,
    };
    pub use uaq_service::{
        AdmissionPolicy, Decision, PredictRequest, PredictResponse, PredictionService,
        ServiceConfig, SharedFitCache,
    };
    pub use uaq_stats::{Normal, Rng};
    pub use uaq_storage::{Catalog, SampleCatalog, Value};
    pub use uaq_workloads::Benchmark;
}
