//! Integration tests for the §6.3.3 ablation variants: the complete
//! predictor versus No Var[c] / No Var[X] / No Cov.

use uaq::prelude::*;

fn setup() -> (Catalog, Vec<QuerySpec>, SampleCatalog, uaq::cost::UnitDists) {
    let catalog = GenConfig::new(0.0015, 0.0, 909).build();
    let mut rng = Rng::new(13);
    let specs = Benchmark::SelJoin.queries(&catalog, 3, &mut rng);
    let samples = catalog.draw_samples(0.03, 2, &mut rng);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    (catalog, specs, samples, units)
}

fn variances_for(variant: Variant) -> Vec<f64> {
    let (catalog, specs, samples, units) = setup();
    let predictor = Predictor::new(
        units,
        PredictorConfig {
            variant,
            ..Default::default()
        },
    );
    specs
        .iter()
        .map(|s| {
            let plan = plan_query(s, &catalog);
            predictor.predict(&plan, &catalog, &samples).var()
        })
        .collect()
}

#[test]
fn every_ablation_reduces_or_keeps_variance() {
    let all = variances_for(Variant::All);
    for variant in [
        Variant::NoCostUnitVariance,
        Variant::NoSelectivityVariance,
        Variant::NoCovariance,
    ] {
        let reduced = variances_for(variant);
        for (i, (&full, &cut)) in all.iter().zip(&reduced).enumerate() {
            assert!(
                cut <= full + 1e-9,
                "{}: query {i}: {cut} > {full}",
                variant.label()
            );
        }
    }
}

#[test]
fn no_cov_is_between_no_var_x_and_all() {
    // Dropping only the covariance bounds keeps the same-operator
    // selectivity variance, so: Var(NoVarX) ≤ Var(NoCov) ≤ Var(All).
    let all = variances_for(Variant::All);
    let no_cov = variances_for(Variant::NoCovariance);
    let no_x = variances_for(Variant::NoSelectivityVariance);
    for i in 0..all.len() {
        assert!(no_x[i] <= no_cov[i] + 1e-9, "query {i}");
        assert!(no_cov[i] <= all[i] + 1e-9, "query {i}");
    }
}

#[test]
fn ablations_do_not_change_the_mean() {
    // All variants predict the same E[t_q]; only the variance differs.
    let (catalog, specs, samples, units) = setup();
    let mean_of = |variant: Variant| -> Vec<f64> {
        let predictor = Predictor::new(
            units,
            PredictorConfig {
                variant,
                ..Default::default()
            },
        );
        specs
            .iter()
            .map(|s| {
                let plan = plan_query(s, &catalog);
                predictor.predict(&plan, &catalog, &samples).mean_ms()
            })
            .collect()
    };
    let base = mean_of(Variant::All);
    for variant in [Variant::NoCostUnitVariance, Variant::NoCovariance] {
        let m = mean_of(variant);
        for (a, b) in base.iter().zip(&m) {
            assert!((a - b).abs() < 1e-6 * a.abs().max(1.0), "{} vs {}", a, b);
        }
    }
    // No Var[X] may shift the fitting grid slightly, so allow a small drift.
    let m = mean_of(Variant::NoSelectivityVariance);
    for (a, b) in base.iter().zip(&m) {
        assert!((a - b).abs() < 0.05 * a.abs().max(1.0), "{a} vs {b}");
    }
}

#[test]
fn no_var_c_hurts_correlation_most() {
    // The paper's central ablation finding (§6.3.3): ignoring cost-unit
    // variance costs the most correlation. We check the weaker, robust
    // statement: r_s(All) is strong and r_s(All) > r_s(NoVar[c]).
    let (catalog, specs, samples, units) = setup();
    let profile = HardwareProfile::pc1();
    let rs_of = |variant: Variant| -> f64 {
        let predictor = Predictor::new(
            units,
            PredictorConfig {
                variant,
                ..Default::default()
            },
        );
        let mut rng = Rng::new(4242);
        let mut sigmas = Vec::new();
        let mut errors = Vec::new();
        for s in &specs {
            let plan = plan_query(s, &catalog);
            let p = predictor.predict(&plan, &catalog, &samples);
            let outcome = execute_full(&plan, &catalog);
            let contexts = NodeCostContext::build_all(&plan, &catalog);
            let actual = simulate_actual_time(
                &plan,
                &contexts,
                &outcome.traces,
                &profile,
                &SimConfig::default(),
                &mut rng,
            );
            sigmas.push(p.std_dev_ms());
            errors.push((p.mean_ms() - actual.mean_ms).abs());
        }
        uaq::stats::spearman(&sigmas, &errors)
    };
    let all = rs_of(Variant::All);
    let no_c = rs_of(Variant::NoCostUnitVariance);
    assert!(all > 0.5, "r_s(All) = {all}");
    assert!(
        no_c < all + 0.05,
        "No Var[c] should not beat the full model: {no_c} vs {all}"
    );
}
