//! End-to-end integration tests: the full pipeline on a tiny database.
//!
//! These exercise the whole stack (datagen → planner → executor → sampler →
//! estimator → fitter → predictor → simulated runtime) and assert the
//! paper's *qualitative* results hold: predictions are accurate, predicted
//! standard deviations correlate with realized errors, and the sampling
//! overhead is a small fraction of execution.

use uaq::prelude::*;
use uaq::stats::{pearson, spearman};

/// Tiny database so the test runs fast even in debug builds.
fn tiny_db() -> Catalog {
    GenConfig::new(0.0015, 0.0, 2024).build()
}

fn predictor_for(profile: &HardwareProfile, seed: u64) -> Predictor {
    let mut rng = Rng::new(seed);
    let units = calibrate(profile, &CalibrationConfig::default(), &mut rng);
    Predictor::new(units, PredictorConfig::default())
}

/// Runs a workload end-to-end, returning per-query (σ, error) pairs.
fn run_workload(
    catalog: &Catalog,
    specs: &[QuerySpec],
    profile: &HardwareProfile,
    sampling_ratio: f64,
    seed: u64,
) -> Vec<(f64, f64, f64, f64)> {
    let predictor = predictor_for(profile, seed);
    let mut rng = Rng::new(seed ^ 0xFACE);
    let samples = catalog.draw_samples(sampling_ratio, 2, &mut rng);
    specs
        .iter()
        .map(|spec| {
            let plan = plan_query(spec, catalog);
            let prediction = predictor.predict(&plan, catalog, &samples);
            let outcome = execute_full(&plan, catalog);
            let contexts = NodeCostContext::build_all(&plan, catalog);
            let actual = simulate_actual_time(
                &plan,
                &contexts,
                &outcome.traces,
                profile,
                &SimConfig::default(),
                &mut rng,
            );
            (
                prediction.std_dev_ms(),
                (prediction.mean_ms() - actual.mean_ms).abs(),
                prediction.mean_ms(),
                actual.mean_ms,
            )
        })
        .collect()
}

#[test]
fn predictions_are_accurate_on_micro() {
    let catalog = tiny_db();
    let mut rng = Rng::new(1);
    let specs = Benchmark::Micro.queries(&catalog, 1, &mut rng);
    let results = run_workload(&catalog, &specs, &HardwareProfile::pc1(), 0.1, 11);
    // Median relative error under 12%.
    let mut rel: Vec<f64> = results
        .iter()
        .map(|&(_, e, _, actual)| e / actual)
        .collect();
    rel.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = rel[rel.len() / 2];
    assert!(median < 0.12, "median relative error {median}");
}

#[test]
fn predicted_sigma_correlates_with_errors() {
    // The headline result (R1): strong positive rank correlation between
    // the predicted standard deviations and the actual prediction errors.
    let catalog = tiny_db();
    let mut rng = Rng::new(2);
    let specs = Benchmark::Micro.queries(&catalog, 1, &mut rng);
    let results = run_workload(&catalog, &specs, &HardwareProfile::pc2(), 0.05, 22);
    let sigmas: Vec<f64> = results.iter().map(|r| r.0).collect();
    let errors: Vec<f64> = results.iter().map(|r| r.1).collect();
    let rs = spearman(&sigmas, &errors);
    let rp = pearson(&sigmas, &errors);
    assert!(rs > 0.5, "r_s = {rs}");
    assert!(rp > 0.3, "r_p = {rp}");
}

#[test]
fn normalized_errors_are_reasonably_calibrated() {
    // (R2): the error-likelihood curve should be in the right ballpark —
    // D_n below the paper's 0.3 threshold.
    let catalog = tiny_db();
    let mut rng = Rng::new(3);
    let specs = Benchmark::SelJoin.queries(&catalog, 4, &mut rng);
    let results = run_workload(&catalog, &specs, &HardwareProfile::pc1(), 0.1, 33);
    let means: Vec<f64> = results.iter().map(|r| r.2).collect();
    let sigmas: Vec<f64> = results.iter().map(|r| r.0).collect();
    let actuals: Vec<f64> = results.iter().map(|r| r.3).collect();
    let e = uaq::stats::normalized_errors(&means, &sigmas, &actuals);
    let dn = uaq::stats::dn(&e);
    assert!(dn < 0.3, "D_n = {dn}");
}

#[test]
fn sampling_overhead_is_small() {
    // §6.4: running the plan over samples costs a small fraction of the
    // real execution.
    let catalog = tiny_db();
    let mut rng = Rng::new(4);
    let specs = Benchmark::Tpch.queries(&catalog, 1, &mut rng);
    let predictor = predictor_for(&HardwareProfile::pc1(), 44);
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    let mut total_full = 0.0;
    let mut total_sample = 0.0;
    for spec in &specs {
        let plan = plan_query(spec, &catalog);
        let t0 = std::time::Instant::now();
        let _ = execute_full(&plan, &catalog);
        total_full += t0.elapsed().as_secs_f64();
        let span = uaq::telemetry::span::SpanRecorder::begin();
        let _ = predictor.predict(&plan, &catalog, &samples);
        total_sample += span.finish().get(uaq::telemetry::span::Stage::SamplePass);
    }
    let overhead = total_sample / total_full;
    assert!(overhead < 0.6, "relative sampling overhead {overhead}");
}

#[test]
fn prediction_is_deterministic_given_seeds() {
    let catalog = tiny_db();
    let run = || {
        let mut rng = Rng::new(5);
        let specs = Benchmark::SelJoin.queries(&catalog, 2, &mut rng);
        let predictor = predictor_for(&HardwareProfile::pc2(), 55);
        let samples = catalog.draw_samples(0.1, 2, &mut rng);
        specs
            .iter()
            .map(|s| {
                let plan = plan_query(s, &catalog);
                let p = predictor.predict(&plan, &catalog, &samples);
                (p.mean_ms(), p.var())
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn skewed_database_still_works() {
    let catalog = GenConfig::new(0.0015, 1.0, 77).build();
    let mut rng = Rng::new(6);
    let specs = Benchmark::Micro.queries(&catalog, 1, &mut rng);
    let results = run_workload(&catalog, &specs, &HardwareProfile::pc1(), 0.1, 66);
    for (sigma, _e, mean, actual) in &results {
        assert!(*sigma > 0.0);
        assert!(*mean > 0.0);
        assert!(*actual > 0.0);
    }
    let sigmas: Vec<f64> = results.iter().map(|r| r.0).collect();
    let errors: Vec<f64> = results.iter().map(|r| r.1).collect();
    assert!(spearman(&sigmas, &errors) > 0.4);
}
