//! Admission control with uncertainty (§6.5.3 of the paper).
//!
//! ```sh
//! cargo run --release --example admission_control
//! ```
//!
//! A DaaS provider must decide whether an incoming query can finish within
//! an SLA deadline. A point estimate says "predicted 80 ms < 100 ms, admit"
//! — but two queries with the same mean can carry very different risk. With
//! the predicted *distribution* the controller can admit on
//! `Pr(T ≤ deadline) ≥ θ` instead, which is exactly the kind of
//! distribution-based decision procedure the paper argues for.

use uaq::prelude::*;

/// Admission decision for one query against a deadline.
struct Decision {
    name: String,
    mean_ms: f64,
    std_ms: f64,
    prob_in_time: f64,
    point_admits: bool,
    dist_admits: bool,
}

fn main() {
    let deadline_ms = 45.0;
    let confidence = 0.9;

    let catalog = DbPreset::Uniform1G.build(42);
    let mut rng = Rng::new(99);
    let units = calibrate(
        &HardwareProfile::pc2(),
        &CalibrationConfig::default(),
        &mut rng,
    );

    // A tight sample budget: estimates are cheap but uncertain — the
    // situation where uncertainty-awareness pays.
    let samples = catalog.draw_samples(0.01, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    // A mixed workload: MICRO scans/joins of very different sizes.
    let queries = Benchmark::Micro.queries(&catalog, 1, &mut rng);

    let mut decisions: Vec<Decision> = Vec::new();
    for spec in &queries {
        let plan = plan_query(spec, &catalog);
        let prediction = predictor.predict(&plan, &catalog, &samples);
        // Pr(T <= deadline) under the predicted normal.
        let prob_in_time = prediction.distribution().cdf(deadline_ms);
        decisions.push(Decision {
            name: spec.name.clone(),
            mean_ms: prediction.mean_ms(),
            std_ms: prediction.std_dev_ms(),
            prob_in_time,
            point_admits: prediction.mean_ms() <= deadline_ms,
            dist_admits: prob_in_time >= confidence,
        });
    }

    println!("SLA deadline: {deadline_ms} ms, required confidence: {confidence}");
    println!(
        "\n{:<26} {:>9} {:>8} {:>12}  {:<14} {:<16}",
        "query", "mean", "sigma", "Pr(in time)", "point-based", "distribution"
    );
    let mut disagreements = 0;
    for d in &decisions {
        let disagree = d.point_admits != d.dist_admits;
        disagreements += disagree as usize;
        println!(
            "{:<26} {:>9.2} {:>8.2} {:>12.3}  {:<14} {:<16}{}",
            d.name,
            d.mean_ms,
            d.std_ms,
            d.prob_in_time,
            if d.point_admits { "ADMIT" } else { "reject" },
            if d.dist_admits { "ADMIT" } else { "reject" },
            if disagree { "   <-- differs" } else { "" }
        );
    }

    let admitted_point = decisions.iter().filter(|d| d.point_admits).count();
    let admitted_dist = decisions.iter().filter(|d| d.dist_admits).count();
    println!(
        "\npoint-based admits {admitted_point}/{} queries; \
         distribution-based admits {admitted_dist}/{} at {:.0}% confidence \
         ({disagreements} decisions differ)",
        decisions.len(),
        decisions.len(),
        confidence * 100.0
    );
    println!(
        "the disagreements are the borderline queries a point estimate \
         silently gambles on"
    );
}
