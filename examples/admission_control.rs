//! Admission control with uncertainty (§6.5.3 of the paper).
//!
//! ```sh
//! cargo run --release --example admission_control
//! ```
//!
//! A DaaS provider must decide whether an incoming query can finish within
//! an SLA deadline. A point estimate says "predicted 80 ms < 100 ms, admit"
//! — but two queries with the same mean can carry very different risk. With
//! the predicted *distribution* the controller can admit on
//! `Pr(T ≤ deadline) ≥ θ` instead — and, unlike a binary point check, it
//! gets a middle verdict: queries in the defer band (`θ/2 ≤ Pr < θ`) are
//! parked for a re-decision rather than dropped (see the retry queue in
//! `uaq_service` / the `deadline_service` example).

use uaq::prelude::*;
use uaq::service::{AdmissionPolicy, Decision};

/// Admission verdicts for one query against a deadline.
struct Verdict {
    name: String,
    mean_ms: f64,
    std_ms: f64,
    prob_in_time: f64,
    point: Decision,
    dist: Decision,
}

fn main() {
    let deadline_ms = 45.0;
    let confidence = 0.9;

    let catalog = DbPreset::Uniform1G.build(42);
    let mut rng = Rng::new(99);
    let units = calibrate(
        &HardwareProfile::pc2(),
        &CalibrationConfig::default(),
        &mut rng,
    );

    // A tight sample budget: estimates are cheap but uncertain — the
    // situation where uncertainty-awareness pays.
    let samples = catalog.draw_samples(0.01, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    let point_policy = AdmissionPolicy::mean_only();
    let dist_policy = AdmissionPolicy::uncertainty_aware(confidence);

    // A mixed workload: MICRO scans/joins of very different sizes.
    let queries = Benchmark::Micro.queries(&catalog, 1, &mut rng);

    let mut verdicts: Vec<Verdict> = Vec::new();
    for spec in &queries {
        let plan = plan_query(spec, &catalog);
        let prediction = predictor.predict(&plan, &catalog, &samples);
        let (point, _) = point_policy.decide(&prediction, Some(deadline_ms));
        let (dist, prob_in_time) = dist_policy.decide(&prediction, Some(deadline_ms));
        verdicts.push(Verdict {
            name: spec.name.clone(),
            mean_ms: prediction.mean_ms(),
            std_ms: prediction.std_dev_ms(),
            prob_in_time,
            point,
            dist,
        });
    }

    println!("SLA deadline: {deadline_ms} ms, required confidence: {confidence}");
    println!(
        "\n{:<26} {:>9} {:>8} {:>12}  {:<14} {:<16}",
        "query", "mean", "sigma", "Pr(in time)", "point-based", "distribution"
    );
    let mut disagreements = 0;
    for v in &verdicts {
        let disagree = v.point != v.dist;
        disagreements += disagree as usize;
        println!(
            "{:<26} {:>9.2} {:>8.2} {:>12.3}  {:<14} {:<16}{}",
            v.name,
            v.mean_ms,
            v.std_ms,
            v.prob_in_time,
            v.point.label(),
            v.dist.label(),
            if disagree { "   <-- differs" } else { "" }
        );
    }

    let count = |vs: &[Verdict], f: fn(&Verdict) -> Decision, d: Decision| {
        vs.iter().filter(|v| f(v) == d).count()
    };
    println!(
        "\npoint-based admits {}/{q} queries; distribution-based admits {}, \
         defers {}, rejects {} at {:.0}% confidence ({disagreements} verdicts differ)",
        count(&verdicts, |v| v.point, Decision::Admit),
        count(&verdicts, |v| v.dist, Decision::Admit),
        count(&verdicts, |v| v.dist, Decision::Defer),
        count(&verdicts, |v| v.dist, Decision::Reject),
        confidence * 100.0,
        q = verdicts.len(),
    );
    println!(
        "the defer band holds exactly the borderline queries a point \
         estimate silently gambles on — the service retries them with a \
         recomputed budget instead of dropping them"
    );
}
