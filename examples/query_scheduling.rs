//! Distribution-based query scheduling (§6.5.3, after Chi et al. [14]).
//!
//! ```sh
//! cargo run --release --example query_scheduling
//! ```
//!
//! Schedule a batch of queries with per-query deadlines on one worker.
//! A point-estimate scheduler orders by predicted slack; a
//! distribution-based scheduler orders by the *probability* of missing the
//! deadline, so a query with moderate mean but huge variance gets priority
//! over a safely-predictable one. We simulate actual executions and count
//! deadline misses under both policies.

use uaq::prelude::*;

struct Job {
    name: String,
    /// Retained so a real scheduler could re-plan or explain the query.
    #[allow(dead_code)]
    plan: Plan,
    deadline_ms: f64,
    mean_ms: f64,
    std_ms: f64,
    actual_ms: f64,
}

/// Runs jobs in the given order, returning the number of deadline misses
/// (deadlines are absolute: measured from the batch start).
fn misses(order: &[usize], jobs: &[Job]) -> usize {
    let mut clock = 0.0;
    let mut missed = 0;
    for &i in order {
        clock += jobs[i].actual_ms;
        if clock > jobs[i].deadline_ms {
            missed += 1;
        }
    }
    missed
}

fn main() {
    let catalog = DbPreset::Uniform1G.build(42);
    let mut rng = Rng::new(123);
    let profile = HardwareProfile::pc1();
    let units = calibrate(&profile, &CalibrationConfig::default(), &mut rng);
    let samples = catalog.draw_samples(0.02, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    // A batch of SELJOIN queries with deadlines proportional to their
    // predicted size (some generous, some tight).
    let specs = Benchmark::SelJoin.queries(&catalog, 3, &mut rng);
    let mut jobs: Vec<Job> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let plan = plan_query(spec, &catalog);
        let prediction = predictor.predict(&plan, &catalog, &samples);
        let outcome = execute_full(&plan, &catalog);
        let contexts = NodeCostContext::build_all(&plan, &catalog);
        let actual = simulate_actual_time(
            &plan,
            &contexts,
            &outcome.traces,
            &profile,
            &SimConfig::default(),
            &mut rng,
        );
        // Deadlines: predicted mean scaled by a slack factor that cycles
        // tight → generous, plus queue headroom.
        let slack = [1.3, 2.0, 3.2][i % 3];
        let headroom = 150.0 * (1 + i % 5) as f64;
        jobs.push(Job {
            name: spec.name.clone(),
            deadline_ms: prediction.mean_ms() * slack + headroom,
            mean_ms: prediction.mean_ms(),
            std_ms: prediction.std_dev_ms(),
            actual_ms: actual.mean_ms,
            plan,
        });
    }

    // Policy A (point-based EDF-with-slack): ascending (deadline − mean).
    let mut point_order: Vec<usize> = (0..jobs.len()).collect();
    point_order.sort_by(|&a, &b| {
        let sa = jobs[a].deadline_ms - jobs[a].mean_ms;
        let sb = jobs[b].deadline_ms - jobs[b].mean_ms;
        sa.partial_cmp(&sb).expect("finite")
    });

    // Policy B (distribution-based): ascending probability of meeting the
    // deadline if run first — i.e. most-at-risk first, where risk counts
    // the variance, not just the mean.
    let mut dist_order: Vec<usize> = (0..jobs.len()).collect();
    dist_order.sort_by(|&a, &b| {
        let pa = Normal::new(jobs[a].mean_ms, jobs[a].std_ms.powi(2).max(1e-12))
            .cdf(jobs[a].deadline_ms);
        let pb = Normal::new(jobs[b].mean_ms, jobs[b].std_ms.powi(2).max(1e-12))
            .cdf(jobs[b].deadline_ms);
        pa.partial_cmp(&pb).expect("finite")
    });

    println!(
        "{:<18} {:>10} {:>9} {:>10} {:>10}",
        "job", "mean", "sigma", "actual", "deadline"
    );
    for j in &jobs {
        println!(
            "{:<18} {:>10.1} {:>9.1} {:>10.1} {:>10.1}",
            j.name, j.mean_ms, j.std_ms, j.actual_ms, j.deadline_ms
        );
    }

    let point_misses = misses(&point_order, &jobs);
    let dist_misses = misses(&dist_order, &jobs);
    println!("\npoint-based schedule        : {point_misses} deadline misses");
    println!("distribution-based schedule : {dist_misses} deadline misses");
    println!(
        "\n(both policies see the same predictions; the distribution-based \
         one additionally knows *which* predictions are shaky)"
    );
}
