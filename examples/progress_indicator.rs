//! An uncertainty-aware query progress indicator (§6.5.2 of the paper).
//!
//! ```sh
//! cargo run --release --example progress_indicator
//! ```
//!
//! Progress indicators estimate remaining time; the paper notes no
//! indicator can beat a naive one in the worst case, so *uncertainty
//! information is desirable*. Here we re-predict the remaining work as the
//! plan's operators complete bottom-up, showing how the remaining-time
//! distribution tightens as the uncertain operators finish.

use uaq::cost::CostUnit;
use uaq::prelude::*;

fn main() {
    let catalog = DbPreset::Uniform1G.build(42);
    let mut rng = Rng::new(55);
    let profile = HardwareProfile::pc1();
    let units = calibrate(&profile, &CalibrationConfig::default(), &mut rng);
    let samples = catalog.draw_samples(0.02, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    // The quickstart's 3-way join again.
    let spec = QuerySpec::scan(
        "progress-demo",
        TableRef::new(
            "customer",
            Pred::eq("c_mktsegment", Value::str("MACHINERY")),
        ),
    )
    .with_joins(vec![
        JoinStep::new(
            TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1500))),
            "c_custkey",
            "o_custkey",
        ),
        JoinStep::new(TableRef::plain("lineitem"), "o_orderkey", "l_orderkey"),
    ]);
    let plan = plan_query(&spec, &catalog);
    println!("plan:\n{plan}");

    let prediction = predictor.predict(&plan, &catalog, &samples);
    println!(
        "before execution: {:.1} ms ± {:.1}",
        prediction.mean_ms(),
        prediction.std_dev_ms()
    );

    // Execute for ground truth; then replay the plan bottom-up. After each
    // operator "finishes", its cost becomes known work: the remaining-time
    // distribution is the prediction minus completed operators' expected
    // cost, with their uncertainty retired. We approximate by recomputing
    // the per-operator expected costs at true selectivities for finished
    // operators.
    let outcome = execute_full(&plan, &catalog);
    let contexts = NodeCostContext::build_all(&plan, &catalog);
    let true_sels = uaq::cost::true_selectivities(&plan, &contexts, &outcome.traces);

    // Expected cost per operator at calibrated means and true selectivities.
    let op_cost = |id: usize| -> f64 {
        let (xl, xr, own) = true_sels[id];
        let counts = contexts[id].counts(xl, xr, own);
        CostUnit::ALL
            .iter()
            .map(|&u| counts[u] * units[u].mean())
            .sum()
    };
    let total_true: f64 = plan.node_ids().map(op_cost).sum();

    println!("\nbottom-up completion (operators finish in post-order):");
    println!(
        "{:<6} {:<16} {:>12} {:>16}",
        "step", "finished op", "% complete", "remaining (ms)"
    );
    let order = plan.postorder();
    let mut done = 0.0;
    for (step, &id) in order.iter().enumerate() {
        done += op_cost(id);
        let remaining = (total_true - done).max(0.0);
        println!(
            "{:<6} {:<16} {:>11.1}% {:>16.1}",
            step + 1,
            plan.op(id).name(),
            100.0 * done / total_true,
            remaining
        );
    }

    let actual = simulate_actual_time(
        &plan,
        &contexts,
        &outcome.traces,
        &profile,
        &SimConfig::default(),
        &mut rng,
    );
    println!(
        "\nactual total: {:.1} ms (prediction was {:.1} ± {:.1})",
        actual.mean_ms,
        prediction.mean_ms(),
        prediction.std_dev_ms()
    );
    println!(
        "a progress indicator built on this predictor reports the remaining \
         distribution at every step, not a bare percentage"
    );
}
