//! The serving layer end-to-end: concurrent prediction service with a warm
//! plan-shape fit cache, and the event-driven deadline-scheduling scenario
//! comparing admission policies.
//!
//! ```sh
//! cargo run --release --example deadline_service
//! ```
//!
//! Prints the SLO table — admit-all vs mean-only (what a point predictor
//! supports) vs uncertainty-aware `Pr(T ≤ d) ≥ θ` admission — under the
//! retry-queue semantics: a `Defer` verdict parks the query and re-decides
//! it with a recomputed budget whenever a server frees up (`d→adm` /
//! `d→rej` columns), instead of silently dropping it. Also shows a bursty
//! (Markov-modulated) arrival run and a utilization sweep.

use uaq::experiments::{
    render_utilization_sweep, run_deadline_scenario, run_utilization_sweep, ArrivalProcess,
    DeadlineConfig, RetryConfig,
};

fn main() {
    let config = DeadlineConfig::default();
    println!(
        "db = {:?}, {} arrivals, {} server(s), utilization target {:.0}%, θ = {}, retries ≤ {}\n",
        config.db,
        config.arrivals,
        config.servers,
        config.utilization * 100.0,
        config.theta,
        config.retry.max_retries,
    );
    println!("— Poisson arrivals, retry queue on —");
    println!("{}", run_deadline_scenario(&config).render());

    println!("— same stream, terminal defer (the old black hole) —");
    let terminal = run_deadline_scenario(&DeadlineConfig {
        retry: RetryConfig::terminal(),
        ..config
    });
    println!("{}", terminal.render());

    println!("— bursty (Markov-modulated) arrivals —");
    let bursty = run_deadline_scenario(&DeadlineConfig {
        arrival_process: ArrivalProcess::bursty(),
        ..config
    });
    println!("{}", bursty.render());

    println!("— utilization sweep (throughput vs SLO record per policy) —");
    let sweep = run_utilization_sweep(&config, &[0.4, 0.6, 0.8, 1.0]);
    println!("{}", render_utilization_sweep(&sweep));
}
