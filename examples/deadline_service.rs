//! The serving layer end-to-end: concurrent prediction service with a warm
//! plan-shape fit cache, and the deadline-scheduling scenario comparing
//! admission policies.
//!
//! ```sh
//! cargo run --release --example deadline_service
//! ```
//!
//! Prints the SLO-violation table: admit-all vs mean-only (what a point
//! predictor supports) vs uncertainty-aware `Pr(T ≤ d) ≥ θ` admission (what
//! the paper's distribution-valued predictions enable).

use uaq::experiments::{run_deadline_scenario, DeadlineConfig};

fn main() {
    let config = DeadlineConfig::default();
    println!(
        "db = {:?}, {} arrivals, utilization target {:.0}%, θ = {}\n",
        config.db,
        config.arrivals,
        config.utilization * 100.0,
        config.theta
    );
    let report = run_deadline_scenario(&config);
    println!("{}", report.render());
}
