//! Quickstart: predict the running-time *distribution* of a query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full pipeline of the paper: generate a TPC-H-like database,
//! calibrate the cost units (§3.1), materialize sample tables (§3.2.2),
//! plan a query, and ask the predictor for `N(E[t_q], Var[t_q])` — then
//! actually "run" the query on the simulated hardware and compare.

use uaq::prelude::*;

fn main() {
    // A small uniform TPC-H-like database (≈ 24 k lineitem rows).
    println!("generating database …");
    let catalog = DbPreset::Uniform1G.build(42);
    println!(
        "  {} tables, {} total rows",
        catalog.len(),
        catalog.total_rows()
    );

    // Calibrate the five cost units of Table 1 against simulated hardware.
    let mut rng = Rng::new(7);
    let profile = HardwareProfile::pc1();
    let units = calibrate(&profile, &CalibrationConfig::default(), &mut rng);
    println!("\ncalibrated cost units (ms per primitive):");
    for u in uaq::cost::CostUnit::ALL {
        println!("  {u}: {:.6} ± {:.6}", units[u].mean(), units[u].std_dev());
    }

    // Materialize sample tables: 5% sampling ratio, 2 independent copies.
    let samples = catalog.draw_samples(0.05, 2, &mut rng);

    // A 3-way join: customers in a segment, their recent orders, the
    // late-shipped lineitems (the core of TPC-H Q3).
    let spec = QuerySpec::scan(
        "quickstart-q3",
        TableRef::new("customer", Pred::eq("c_mktsegment", Value::str("BUILDING"))),
    )
    .with_joins(vec![
        JoinStep::new(
            TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(1200))),
            "c_custkey",
            "o_custkey",
        ),
        JoinStep::new(
            TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(1200))),
            "o_orderkey",
            "l_orderkey",
        ),
    ]);
    let plan = plan_query(&spec, &catalog);
    println!("\nplan:\n{plan}");

    // Predict.
    let predictor = Predictor::new(units, PredictorConfig::default());
    let prediction = predictor.predict(&plan, &catalog, &samples);
    println!(
        "predicted: {:.2} ms  (σ = {:.2} ms)",
        prediction.mean_ms(),
        prediction.std_dev_ms()
    );
    for p in [0.5, 0.7, 0.95] {
        let (lo, hi) = prediction.confidence_interval_ms(p);
        println!(
            "  with probability {:.0}%: between {lo:.2} and {hi:.2} ms",
            p * 100.0
        );
    }
    println!("variance breakdown:");
    println!(
        "  cost-unit fluctuation : {:>10.3} ms²",
        prediction.breakdown.unit_variance
    );
    println!(
        "  selectivity (exact)   : {:>10.3} ms²",
        prediction.breakdown.selectivity_exact
    );
    println!(
        "  covariance bounds     : {:>10.3} ms²",
        prediction.breakdown.covariance_bounds
    );
    println!(
        "  interaction           : {:>10.3} ms²",
        prediction.breakdown.interaction
    );

    // Ground truth: really execute, then time it on the simulated hardware
    // (5 runs averaged, as in the paper).
    let outcome = execute_full(&plan, &catalog);
    let contexts = NodeCostContext::build_all(&plan, &catalog);
    let actual = simulate_actual_time(
        &plan,
        &contexts,
        &outcome.traces,
        &profile,
        &SimConfig::default(),
        &mut rng,
    );
    let err = (prediction.mean_ms() - actual.mean_ms).abs();
    println!(
        "\nactual (5-run avg): {:.2} ms   |error| = {:.2} ms = {:.2}σ",
        actual.mean_ms,
        err,
        err / prediction.std_dev_ms()
    );
    // Stream the result out in pages: each page is densified on demand from
    // the executor's selection vectors, so the full row mirror is never built.
    let mut pages = 0usize;
    let mut streamed = 0usize;
    for page in outcome.row_pages(4096) {
        pages += 1;
        streamed += page.len();
    }
    println!("query returned {streamed} rows in {pages} pages of ≤ 4096");
}
