//! Least-expected-cost plan selection (§6.5.1 of the paper, after Chu,
//! Halpern, Seshadri: "Least expected cost query optimization").
//!
//! ```sh
//! cargo run --release --example plan_selection
//! ```
//!
//! The same logical query admits different physical plans (here: different
//! join orders for TPC-H Q3's 3-way join). A classical optimizer picks the
//! plan with the lowest *point* cost estimate; with distributions available
//! a risk-aware optimizer can also consider spread — e.g. pick by a high
//! quantile ("95 % of the time this plan finishes within …") instead of the
//! mean, penalizing plans whose costs are poorly known. We enumerate the
//! plans, predict each distribution, show how the ranking can differ, and
//! verify against simulated actual executions.

use uaq::prelude::*;

fn main() {
    let catalog = DbPreset::Uniform1G.build(42);
    let mut rng = Rng::new(321);
    let profile = HardwareProfile::pc1();
    let units = calibrate(&profile, &CalibrationConfig::default(), &mut rng);
    // Deliberately scarce samples: plan costs are uncertain.
    let samples = catalog.draw_samples(0.01, 2, &mut rng);
    let predictor = Predictor::new(units, PredictorConfig::default());

    let seg = "BUILDING";
    let date = 1200;

    // Three join orders for the same logical query
    // customer(seg) ⋈ orders(< date) ⋈ lineitem(> date).
    let candidates: Vec<QuerySpec> = vec![
        QuerySpec::scan(
            "customer-first",
            TableRef::new("customer", Pred::eq("c_mktsegment", Value::str(seg))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(date))),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(date))),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        QuerySpec::scan(
            "orders-first",
            TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(date))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("customer", Pred::eq("c_mktsegment", Value::str(seg))),
                "o_custkey",
                "c_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(date))),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        QuerySpec::scan(
            "lineitem-first",
            TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(date))),
        )
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(date))),
                "l_orderkey",
                "o_orderkey",
            ),
            JoinStep::new(
                TableRef::new("customer", Pred::eq("c_mktsegment", Value::str(seg))),
                "o_custkey",
                "c_custkey",
            ),
        ]),
    ];

    println!(
        "{:<16} {:>10} {:>9} {:>12} {:>12}",
        "plan", "mean", "sigma", "p95 cost", "actual"
    );
    println!("{}", "-".repeat(64));
    let mut rows = Vec::new();
    for spec in &candidates {
        let plan = plan_query(spec, &catalog);
        let p = predictor.predict(&plan, &catalog, &samples);
        let p95 = p.distribution().quantile(0.95);
        let outcome = execute_full(&plan, &catalog);
        let contexts = NodeCostContext::build_all(&plan, &catalog);
        let actual = simulate_actual_time(
            &plan,
            &contexts,
            &outcome.traces,
            &profile,
            &SimConfig::default(),
            &mut rng,
        );
        println!(
            "{:<16} {:>10.2} {:>9.2} {:>12.2} {:>12.2}",
            spec.name,
            p.mean_ms(),
            p.std_dev_ms(),
            p95,
            actual.mean_ms
        );
        rows.push((spec.name.clone(), p.mean_ms(), p95, actual.mean_ms));
    }

    let by_mean = rows
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    let by_p95 = rows
        .iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("finite"))
        .expect("non-empty");
    let truly_best = rows
        .iter()
        .min_by(|a, b| a.3.partial_cmp(&b.3).expect("finite"))
        .expect("non-empty");
    println!("\npoint-cost optimizer picks : {}", by_mean.0);
    println!("p95 (risk-aware) pick      : {}", by_p95.0);
    println!("actually fastest           : {}", truly_best.0);
    println!(
        "\nwhen the picks differ, the risk-aware optimizer is trading a little\n\
         expected time for protection against the plan whose cost estimate is\n\
         built on the shakiest selectivities — the LEC idea of §6.5.1, which\n\
         needed exactly the distributions this library provides"
    );
}
