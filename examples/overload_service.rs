//! The overload scenario: a saturated, bounded run queue that must shed
//! work — and the victim choice the paper's variance estimate buys.
//!
//! ```sh
//! cargo run --release --example overload_service
//! ```
//!
//! Replays one arrival stream at ρ = 1.5 (sustained overload) under five
//! rows: unbounded admit-all (the violation catastrophe), then fifo-shed
//! (blind tail drop) vs variance-shed (evict the queued request with the
//! highest predicted σ/μ) at the same queue capacity, each with and
//! without uncertainty-aware admission. The shed counts match per pair —
//! the queue bound decides *how much* to shed, the order only picks
//! *which* request — so the violation-rate gap is purely the value of the
//! predicted variance as an operational signal.

use uaq::experiments::{run_overload_scenario, OverloadConfig};

fn main() {
    let config = OverloadConfig::default();
    println!(
        "db = {:?}, θ = {}, retries ≤ {}\n",
        config.base.db, config.base.theta, config.base.retry.max_retries,
    );
    println!("{}", run_overload_scenario(&config).render());

    println!("— tighter queue (capacity 2): more shedding, same ordering story —");
    let tight = run_overload_scenario(&OverloadConfig {
        queue_capacity: 2,
        ..config
    });
    println!("{}", tight.render());
}
