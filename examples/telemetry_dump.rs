//! One stop for the observability plane: drive the prediction service
//! with request spans on, emit a JSONL event stream (one line per
//! request), and dump the unified telemetry snapshot in both export
//! formats.
//!
//! ```sh
//! cargo run --release --example telemetry_dump            # everything to stdout
//! cargo run --release --example telemetry_dump > run.jsonl
//! grep '"event":"request"' run.jsonl | head               # the event stream
//! ```
//!
//! The event lines carry the served tier, the admission verdict, the
//! per-stage wall-clock breakdown captured by `uaq_telemetry::span`, and
//! predicted vs (simulated) observed milliseconds — everything a log
//! pipeline needs to reconstruct a serving trace. The snapshot at the end
//! is `PredictionService::telemetry()`: queue/cache/tier/fault counters,
//! stage histograms, and the calibration gauges, exportable as Prometheus
//! text exposition or JSON.

use std::sync::Arc;
use uaq::prelude::*;
use uaq::service::{Decision, PredictionService};
use uaq::telemetry::{CalibrationMonitor, Event, Observation};

fn verdict(d: Decision) -> &'static str {
    match d {
        Decision::Admit => "admit",
        Decision::Defer => "defer",
        Decision::Reject => "reject",
    }
}

fn main() {
    let catalog = Arc::new(GenConfig::new(0.002, 0.0, 42).build());
    let mut rng = Rng::new(7);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = Arc::new(catalog.draw_samples(0.05, 2, &mut rng));
    let predictor = Predictor::new(units, PredictorConfig::default());

    // Spans on: each response carries its stage breakdown. (Off by
    // default in production configs — the recorder costs two clock reads
    // per stage on the warm path.)
    let service = PredictionService::start(
        predictor,
        Arc::clone(&catalog),
        Arc::clone(&samples),
        ServiceConfig {
            workers: 2,
            record_spans: true,
            ..Default::default()
        },
    );

    // Mixed MICRO traffic, every third request under a deadline, each
    // template submitted twice so the second pass hits the warm caches.
    let specs = Benchmark::Micro.queries(&catalog, 1, &mut rng);
    let specs: Vec<_> = specs.iter().step_by(6).collect();
    let monitor = CalibrationMonitor::new();
    let mut id = 0u64;
    for round in 0..2 {
        for spec in &specs {
            let plan = Arc::new(plan_query(spec, &catalog));
            let deadline_ms = id.is_multiple_of(3).then_some(150.0);
            let rx = service.submit(PredictRequest {
                id,
                plan: Arc::clone(&plan),
                deadline_ms,
                tenant: uaq::service::TenantId::default(),
            });
            let resp = rx.recv().expect("service worker alive");

            // Ground truth for "observed": the simulated actual runtime
            // the experiments use (a real deployment would feed back the
            // measured execution time here).
            let outcome = execute_full(&plan, &catalog);
            let contexts = NodeCostContext::build_all(&plan, &catalog);
            let observed_ms = simulate_actual_time(
                &plan,
                &contexts,
                &outcome.traces,
                &HardwareProfile::pc1(),
                &SimConfig::default(),
                &mut rng,
            )
            .mean_ms;

            let mut event = Event::new("request")
                .u64("id", resp.id)
                .str("query", spec.name.clone())
                .u64("round", round)
                .str("tier", resp.tier.label())
                .str("verdict", verdict(resp.decision))
                .bool("warm", !resp.prediction.sample_pass_ran)
                .f64("predicted_ms", resp.prediction.mean_ms())
                .f64("predicted_std_ms", resp.prediction.std_dev_ms())
                .f64("observed_ms", observed_ms)
                .f64("prob_in_time", resp.prob_in_time);
            if let Some(timings) = &resp.stage_timings {
                for (stage, secs) in timings.iter() {
                    if secs > 0.0 {
                        event = event.f64(&format!("{}_s", stage.label()), secs);
                    }
                }
            }
            println!("{}", event.to_jsonl());

            // Feed the calibration monitor with the same pair the event
            // carries, so the final snapshot grades these predictions.
            let dist = resp.prediction.distribution();
            let pit = dist.cdf(observed_ms);
            monitor.record(&Observation {
                shape: spec.name.clone(),
                observed_ms,
                pit,
                in50: (pit - 0.5).abs() <= 0.25,
                in90: (pit - 0.5).abs() <= 0.45,
                in99: (pit - 0.5).abs() <= 0.495,
                predicted_violation: deadline_ms.map(|d| 1.0 - dist.cdf(d)),
                violated: deadline_ms.map(|d| observed_ms > d),
            });
            id += 1;
        }
    }

    monitor.export_gauges(service.registry());
    let snap = service.telemetry();
    println!();
    println!("# ---- Prometheus text exposition ----");
    print!("{}", snap.to_prometheus());
    println!();
    println!("# ---- JSON dump ----");
    println!("{}", snap.to_json());

    service.shutdown();
}
