//! # uaq-datagen
//!
//! TPC-H-like database generator standing in for dbgen and the skewed TPC-H
//! generator ([4] in the paper): eight relations with dbgen cardinality
//! ratios, Zipf(z) value/foreign-key skew, deterministic by seed.

pub mod gen;
pub mod presets;
pub mod schema;

pub use gen::{generate, Cardinalities, GenConfig};
pub use presets::DbPreset;
pub use schema::{domains, DATE_DOMAIN_DAYS, DAY_1995_01_01, DAY_1996_12_31};
