//! The data generator itself.
//!
//! Mirrors TPC-H `dbgen` cardinality ratios (scaled by `sf`) and, like the
//! skewed TPC-H generator the paper uses [4], draws column values and foreign
//! keys from a Zipf distribution with exponent `z` (`z = 0` ⇒ uniform,
//! `z = 1` ⇒ the paper's skewed databases).

use crate::schema::{self, domains, DATE_DOMAIN_DAYS};
use uaq_stats::{Rng, Zipf};
use uaq_storage::{Catalog, Row, Table, Value};

/// Generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// TPC-H scale factor; `sf = 1.0` would be the 1 GB database
    /// (6 M lineitem rows). The experiments use small fractions.
    pub sf: f64,
    /// Zipf skew exponent `z` (0 = uniform, 1 = paper's skewed databases).
    pub z: f64,
    /// RNG seed; the same seed always generates the same database.
    pub seed: u64,
}

impl GenConfig {
    pub fn new(sf: f64, z: f64, seed: u64) -> Self {
        assert!(sf > 0.0, "scale factor must be positive");
        assert!(z >= 0.0, "skew must be non-negative");
        Self { sf, z, seed }
    }

    /// Generates the database for this configuration (alias of
    /// [`generate`]).
    pub fn build(&self) -> Catalog {
        generate(self)
    }

    fn scaled(&self, base: f64) -> usize {
        ((base * self.sf).round() as usize).max(1)
    }

    /// Row counts per relation at this scale factor (dbgen ratios).
    pub fn cardinalities(&self) -> Cardinalities {
        Cardinalities {
            region: 5,
            nation: 25,
            supplier: self.scaled(10_000.0),
            customer: self.scaled(150_000.0),
            part: self.scaled(200_000.0),
            partsupp: self.scaled(800_000.0),
            orders: self.scaled(1_500_000.0),
            // dbgen draws 1–7 lineitems per order (average 4); we generate
            // per-order so the total is approximate.
            orders_avg_lineitems: 4.0,
        }
    }
}

/// Expected row counts for a configuration.
#[derive(Debug, Clone, Copy)]
pub struct Cardinalities {
    pub region: usize,
    pub nation: usize,
    pub supplier: usize,
    pub customer: usize,
    pub part: usize,
    pub partsupp: usize,
    pub orders: usize,
    pub orders_avg_lineitems: f64,
}

/// A value skewer: rank-to-value mappers driven by a shared Zipf shape.
struct Skewer {
    z: f64,
}

impl Skewer {
    /// Picks an index into a domain of `n` values with Zipf(z) weights over a
    /// randomly *permuted* rank order (so skew does not always favour the
    /// smallest key — mirroring the TPCDSkew generator's behaviour).
    fn pick(&self, n: usize, zipf: &Zipf, perm: &[usize], rng: &mut Rng) -> usize {
        debug_assert_eq!(zipf.domain_size(), n);
        perm[zipf.sample(rng)]
    }
}

fn identity_or_permuted(n: usize, rng: &mut Rng) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut p);
    p
}

/// Generates the full database into a fresh catalog.
pub fn generate(config: &GenConfig) -> Catalog {
    let mut rng = Rng::new(config.seed);
    let card = config.cardinalities();
    let skew = Skewer { z: config.z };

    let mut catalog = Catalog::new();
    catalog.add_table(gen_region());
    catalog.add_table(gen_nation());
    catalog.add_table(gen_supplier(&card, &skew, &mut rng));
    catalog.add_table(gen_customer(&card, &skew, &mut rng));
    catalog.add_table(gen_part(&card, &skew, &mut rng));
    catalog.add_table(gen_partsupp(&card, &skew, &mut rng));
    let (orders, lineitem) = gen_orders_and_lineitem(&card, &skew, &mut rng);
    catalog.add_table(orders);
    catalog.add_table(lineitem);
    catalog
}

fn gen_region() -> Table {
    let rows: Vec<Row> = domains::REGIONS
        .iter()
        .enumerate()
        .map(|(i, name)| vec![Value::Int(i as i64), Value::str(*name)])
        .collect();
    Table::new("region", schema::region(), rows)
}

fn gen_nation() -> Table {
    let rows: Vec<Row> = domains::NATIONS
        .iter()
        .enumerate()
        .map(|(i, name)| {
            vec![
                Value::Int(i as i64),
                Value::str(*name),
                Value::Int(domains::NATION_REGION[i] as i64),
            ]
        })
        .collect();
    Table::new("nation", schema::nation(), rows)
}

fn gen_supplier(card: &Cardinalities, skew: &Skewer, rng: &mut Rng) -> Table {
    let nation_zipf = Zipf::new(25, skew.z);
    let nation_perm = identity_or_permuted(25, rng);
    let rows: Vec<Row> = (0..card.supplier)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::str(format!("Supplier#{i:06}")),
                Value::Int(skew.pick(25, &nation_zipf, &nation_perm, rng) as i64),
                Value::Float((rng.f64() * 20_000.0 - 1_000.0 * skew.z).max(-999.0)),
            ]
        })
        .collect();
    Table::new("supplier", schema::supplier(), rows)
}

fn gen_customer(card: &Cardinalities, skew: &Skewer, rng: &mut Rng) -> Table {
    let nation_zipf = Zipf::new(25, skew.z);
    let nation_perm = identity_or_permuted(25, rng);
    let seg_zipf = Zipf::new(domains::SEGMENTS.len(), skew.z);
    let seg_perm = identity_or_permuted(domains::SEGMENTS.len(), rng);
    let rows: Vec<Row> = (0..card.customer)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::str(format!("Customer#{i:06}")),
                Value::Int(skew.pick(25, &nation_zipf, &nation_perm, rng) as i64),
                Value::Float(rng.f64() * 20_000.0 - 1_000.0),
                Value::str(domains::SEGMENTS[skew.pick(5, &seg_zipf, &seg_perm, rng)]),
            ]
        })
        .collect();
    Table::new("customer", schema::customer(), rows)
}

fn gen_part(card: &Cardinalities, skew: &Skewer, rng: &mut Rng) -> Table {
    let size_zipf = Zipf::new(50, skew.z);
    let size_perm = identity_or_permuted(50, rng);
    let brand_zipf = Zipf::new(25, skew.z);
    let brand_perm = identity_or_permuted(25, rng);
    let cont_zipf = Zipf::new(domains::CONTAINERS.len(), skew.z);
    let cont_perm = identity_or_permuted(domains::CONTAINERS.len(), rng);
    let rows: Vec<Row> = (0..card.part)
        .map(|i| {
            let brand = skew.pick(25, &brand_zipf, &brand_perm, rng);
            let ty = format!(
                "{} {} {}",
                rng.choose(&domains::TYPE_SYLL1),
                rng.choose(&domains::TYPE_SYLL2),
                rng.choose(&domains::TYPE_SYLL3)
            );
            vec![
                Value::Int(i as i64),
                Value::str(format!("Part#{i:06}")),
                Value::str(format!("Brand#{}{}", brand / 5 + 1, brand % 5 + 1)),
                Value::str(ty),
                Value::Int(skew.pick(50, &size_zipf, &size_perm, rng) as i64 + 1),
                Value::str(domains::CONTAINERS[skew.pick(8, &cont_zipf, &cont_perm, rng)]),
                Value::Float(900.0 + (i % 1000) as f64 / 10.0),
            ]
        })
        .collect();
    Table::new("part", schema::part(), rows)
}

fn gen_partsupp(card: &Cardinalities, skew: &Skewer, rng: &mut Rng) -> Table {
    // dbgen: 4 suppliers per part.
    let per_part = (card.partsupp / card.part).max(1);
    let supp_zipf = Zipf::new(card.supplier, skew.z);
    let supp_perm = identity_or_permuted(card.supplier, rng);
    let mut rows: Vec<Row> = Vec::with_capacity(card.part * per_part);
    for p in 0..card.part {
        let mut seen = Vec::with_capacity(per_part);
        for _ in 0..per_part {
            let mut s = skew.pick(card.supplier, &supp_zipf, &supp_perm, rng);
            // Avoid duplicate (part, supplier) pairs where possible.
            for _ in 0..4 {
                if !seen.contains(&s) {
                    break;
                }
                s = rng.usize_below(card.supplier);
            }
            seen.push(s);
            rows.push(vec![
                Value::Int(p as i64),
                Value::Int(s as i64),
                Value::Int(rng.i64_range(1, 9999)),
                Value::Float(1.0 + rng.f64() * 999.0),
            ]);
        }
    }
    Table::new("partsupp", schema::partsupp(), rows)
}

fn gen_orders_and_lineitem(card: &Cardinalities, skew: &Skewer, rng: &mut Rng) -> (Table, Table) {
    let cust_zipf = Zipf::new(card.customer, skew.z);
    let cust_perm = identity_or_permuted(card.customer, rng);
    let part_zipf = Zipf::new(card.part, skew.z);
    let part_perm = identity_or_permuted(card.part, rng);
    let supp_zipf = Zipf::new(card.supplier, skew.z);
    let supp_perm = identity_or_permuted(card.supplier, rng);
    let date_zipf = Zipf::new(DATE_DOMAIN_DAYS as usize, skew.z);
    let date_perm = identity_or_permuted(DATE_DOMAIN_DAYS as usize, rng);
    let qty_zipf = Zipf::new(50, skew.z);
    let qty_perm = identity_or_permuted(50, rng);
    let prio_zipf = Zipf::new(domains::PRIORITIES.len(), skew.z);
    let prio_perm = identity_or_permuted(domains::PRIORITIES.len(), rng);
    let mode_zipf = Zipf::new(domains::SHIP_MODES.len(), skew.z);
    let mode_perm = identity_or_permuted(domains::SHIP_MODES.len(), rng);

    let mut orders: Vec<Row> = Vec::with_capacity(card.orders);
    let mut items: Vec<Row> =
        Vec::with_capacity((card.orders as f64 * card.orders_avg_lineitems) as usize);

    for o in 0..card.orders {
        let order_date = skew.pick(DATE_DOMAIN_DAYS as usize, &date_zipf, &date_perm, rng) as i64;
        // Line count 1..=7 (avg 4), dbgen-style.
        let n_lines = 1 + rng.usize_below(7);
        let mut total = 0.0;
        // TPC-H semantics: order status reflects line status; keep it simple
        // but correlated with the date (older orders tend to be finished).
        let status = if order_date < DATE_DOMAIN_DAYS / 2 {
            "F"
        } else if rng.bernoulli(0.25) {
            "P"
        } else {
            "O"
        };
        for l in 0..n_lines {
            let qty = (skew.pick(50, &qty_zipf, &qty_perm, rng) + 1) as f64;
            let part = skew.pick(card.part, &part_zipf, &part_perm, rng);
            let supp = skew.pick(card.supplier, &supp_zipf, &supp_perm, rng);
            let price = qty * (900.0 + (part % 1000) as f64 / 10.0);
            let discount = (rng.usize_below(11) as f64) / 100.0;
            let tax = (rng.usize_below(9) as f64) / 100.0;
            let ship = (order_date + rng.i64_range(1, 121)).min(DATE_DOMAIN_DAYS - 1);
            let commit = (order_date + rng.i64_range(30, 90)).min(DATE_DOMAIN_DAYS - 1);
            let receipt = (ship + rng.i64_range(1, 30)).min(DATE_DOMAIN_DAYS - 1);
            total += price * (1.0 - discount);
            items.push(vec![
                Value::Int(o as i64),
                Value::Int(part as i64),
                Value::Int(supp as i64),
                Value::Int(l as i64 + 1),
                Value::Float(qty),
                Value::Float(price),
                Value::Float(discount),
                Value::Float(tax),
                Value::str(if receipt < DATE_DOMAIN_DAYS / 2 {
                    if rng.bernoulli(0.5) {
                        "A"
                    } else {
                        "R"
                    }
                } else {
                    "N"
                }),
                Value::str(if ship < DATE_DOMAIN_DAYS / 2 {
                    "F"
                } else {
                    "O"
                }),
                Value::Int(ship),
                Value::Int(commit),
                Value::Int(receipt),
                Value::str(domains::SHIP_MODES[skew.pick(7, &mode_zipf, &mode_perm, rng)]),
            ]);
        }
        orders.push(vec![
            Value::Int(o as i64),
            Value::Int(skew.pick(card.customer, &cust_zipf, &cust_perm, rng) as i64),
            Value::str(status),
            Value::Float(total),
            Value::Int(order_date),
            Value::str(domains::PRIORITIES[skew.pick(5, &prio_zipf, &prio_perm, rng)]),
            Value::Int(rng.i64_range(0, 1)),
        ]);
    }

    (
        Table::new("orders", schema::orders(), orders),
        Table::new("lineitem", schema::lineitem(), items),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GenConfig {
        GenConfig::new(0.001, 0.0, 42)
    }

    #[test]
    fn cardinalities_scale() {
        let card = small().cardinalities();
        assert_eq!(card.supplier, 10);
        assert_eq!(card.customer, 150);
        assert_eq!(card.part, 200);
        assert_eq!(card.orders, 1500);
    }

    #[test]
    fn generates_all_tables() {
        let cat = generate(&small());
        let names: Vec<&str> = cat.table_names().collect();
        assert_eq!(
            names,
            vec![
                "customer", "lineitem", "nation", "orders", "part", "partsupp", "region",
                "supplier"
            ]
        );
        assert_eq!(cat.table("region").len(), 5);
        assert_eq!(cat.table("nation").len(), 25);
        assert_eq!(cat.table("orders").len(), 1500);
        let li = cat.table("lineitem").len();
        // 1..=7 lines per order, mean 4.
        assert!((4000..8500).contains(&li), "lineitem={li}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small());
        let b = generate(&small());
        assert_eq!(a.table("lineitem").len(), b.table("lineitem").len());
        assert_eq!(
            a.table("lineitem").rows()[17],
            b.table("lineitem").rows()[17]
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&GenConfig::new(0.001, 0.0, 1));
        let b = generate(&GenConfig::new(0.001, 0.0, 2));
        assert_ne!(a.table("orders").rows()[0], b.table("orders").rows()[0]);
    }

    #[test]
    fn foreign_keys_are_valid() {
        let cat = generate(&small());
        let n_cust = cat.table("customer").len() as i64;
        let n_part = cat.table("part").len() as i64;
        let n_supp = cat.table("supplier").len() as i64;
        for row in cat.table("orders").rows() {
            let ck = row[1].as_int();
            assert!((0..n_cust).contains(&ck));
        }
        for row in cat.table("lineitem").rows() {
            assert!((0..n_part).contains(&row[1].as_int()));
            assert!((0..n_supp).contains(&row[2].as_int()));
            let ship = row[10].as_int();
            assert!((0..DATE_DOMAIN_DAYS).contains(&ship));
        }
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        let uni = generate(&GenConfig::new(0.001, 0.0, 7));
        let skw = generate(&GenConfig::new(0.001, 1.0, 7));
        let top_share = |cat: &Catalog| {
            let mut counts = std::collections::HashMap::new();
            for row in cat.table("lineitem").rows() {
                *counts.entry(row[1].as_int()).or_insert(0usize) += 1;
            }
            let mut v: Vec<usize> = counts.into_values().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            let total: usize = v.iter().sum();
            v.iter().take(10).sum::<usize>() as f64 / total as f64
        };
        let u = top_share(&uni);
        let s = top_share(&skw);
        assert!(s > 2.0 * u, "uniform top10 share {u}, skewed {s}");
    }

    #[test]
    fn discount_and_tax_in_domain() {
        let cat = generate(&small());
        for row in cat.table("lineitem").rows() {
            let d = row[6].as_float();
            let t = row[7].as_float();
            assert!((0.0..=0.10).contains(&d));
            assert!((0.0..=0.08).contains(&t));
        }
    }
}
