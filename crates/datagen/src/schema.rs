//! The TPC-H-like schema.
//!
//! Eight relations mirroring TPC-H's join graph. Dates are encoded as
//! integer day offsets from 1992-01-01 (TPC-H's date range spans 2557 days
//! up to 1998-12-31), which keeps every predicate numeric.

use uaq_storage::{Column, Schema};

/// Number of days in the TPC-H date domain (1992-01-01 .. 1998-12-31).
pub const DATE_DOMAIN_DAYS: i64 = 2557;

/// Day offset of 1995-01-01 (used by several templates).
pub const DAY_1995_01_01: i64 = 1096;

/// Day offset of 1996-12-31.
pub const DAY_1996_12_31: i64 = 1826;

pub fn region() -> Schema {
    Schema::new(vec![Column::int("r_regionkey"), Column::str("r_name")])
}

pub fn nation() -> Schema {
    Schema::new(vec![
        Column::int("n_nationkey"),
        Column::str("n_name"),
        Column::int("n_regionkey"),
    ])
}

pub fn supplier() -> Schema {
    Schema::new(vec![
        Column::int("s_suppkey"),
        Column::str("s_name"),
        Column::int("s_nationkey"),
        Column::float("s_acctbal"),
    ])
}

pub fn customer() -> Schema {
    Schema::new(vec![
        Column::int("c_custkey"),
        Column::str("c_name"),
        Column::int("c_nationkey"),
        Column::float("c_acctbal"),
        Column::str("c_mktsegment"),
    ])
}

pub fn part() -> Schema {
    Schema::new(vec![
        Column::int("p_partkey"),
        Column::str("p_name"),
        Column::str("p_brand"),
        Column::str("p_type"),
        Column::int("p_size"),
        Column::str("p_container"),
        Column::float("p_retailprice"),
    ])
}

pub fn partsupp() -> Schema {
    Schema::new(vec![
        Column::int("ps_partkey"),
        Column::int("ps_suppkey"),
        Column::int("ps_availqty"),
        Column::float("ps_supplycost"),
    ])
}

pub fn orders() -> Schema {
    Schema::new(vec![
        Column::int("o_orderkey"),
        Column::int("o_custkey"),
        Column::str("o_orderstatus"),
        Column::float("o_totalprice"),
        Column::int("o_orderdate"),
        Column::str("o_orderpriority"),
        Column::int("o_shippriority"),
    ])
}

pub fn lineitem() -> Schema {
    Schema::new(vec![
        Column::int("l_orderkey"),
        Column::int("l_partkey"),
        Column::int("l_suppkey"),
        Column::int("l_linenumber"),
        Column::float("l_quantity"),
        Column::float("l_extendedprice"),
        Column::float("l_discount"),
        Column::float("l_tax"),
        Column::str("l_returnflag"),
        Column::str("l_linestatus"),
        Column::int("l_shipdate"),
        Column::int("l_commitdate"),
        Column::int("l_receiptdate"),
        Column::str("l_shipmode"),
    ])
}

/// Enumerated string domains used by the generator and by query templates.
pub mod domains {
    pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
    pub const SEGMENTS: [&str; 5] = [
        "AUTOMOBILE",
        "BUILDING",
        "FURNITURE",
        "HOUSEHOLD",
        "MACHINERY",
    ];
    pub const PRIORITIES: [&str; 5] =
        ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
    pub const SHIP_MODES: [&str; 7] = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"];
    pub const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
    pub const LINE_STATUS: [&str; 2] = ["F", "O"];
    pub const ORDER_STATUS: [&str; 3] = ["F", "O", "P"];
    pub const CONTAINERS: [&str; 8] = [
        "SM CASE",
        "SM BOX",
        "MED BAG",
        "MED BOX",
        "LG CASE",
        "LG BOX",
        "JUMBO PACK",
        "WRAP BAG",
    ];
    pub const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
    pub const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
    pub const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
    pub const NATIONS: [&str; 25] = [
        "ALGERIA",
        "ARGENTINA",
        "BRAZIL",
        "CANADA",
        "EGYPT",
        "ETHIOPIA",
        "FRANCE",
        "GERMANY",
        "INDIA",
        "INDONESIA",
        "IRAN",
        "IRAQ",
        "JAPAN",
        "JORDAN",
        "KENYA",
        "MOROCCO",
        "MOZAMBIQUE",
        "PERU",
        "CHINA",
        "ROMANIA",
        "SAUDI ARABIA",
        "VIETNAM",
        "RUSSIA",
        "UNITED KINGDOM",
        "UNITED STATES",
    ];
    /// Region of each nation (aligned with `NATIONS`).
    pub const NATION_REGION: [usize; 25] = [
        0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2, 4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_have_expected_widths() {
        assert_eq!(region().len(), 2);
        assert_eq!(nation().len(), 3);
        assert_eq!(supplier().len(), 4);
        assert_eq!(customer().len(), 5);
        assert_eq!(part().len(), 7);
        assert_eq!(partsupp().len(), 4);
        assert_eq!(orders().len(), 7);
        assert_eq!(lineitem().len(), 14);
    }

    #[test]
    fn key_columns_resolve() {
        assert_eq!(lineitem().expect_index("l_orderkey"), 0);
        assert_eq!(orders().expect_index("o_orderdate"), 4);
        assert_eq!(customer().expect_index("c_mktsegment"), 4);
    }

    #[test]
    fn nation_region_mapping_is_complete() {
        assert_eq!(domains::NATIONS.len(), domains::NATION_REGION.len());
        assert!(domains::NATION_REGION.iter().all(|&r| r < 5));
    }
}
