//! Named database presets mirroring the paper's four experimental databases
//! (§6.1): uniform/skewed × "1 GB"/"10 GB". Our substrate is an in-memory
//! simulator, so "1 GB" maps to a scaled-down database with the same schema
//! and relative cardinalities (see DESIGN.md, substitution table).

use crate::gen::{generate, GenConfig};
use uaq_storage::Catalog;

/// Which of the paper's four databases to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbPreset {
    /// Uniform TPC-H "1 GB" analog.
    Uniform1G,
    /// Zipf z=1 TPC-H "1 GB" analog.
    Skewed1G,
    /// Uniform TPC-H "10 GB" analog.
    Uniform10G,
    /// Zipf z=1 TPC-H "10 GB" analog.
    Skewed10G,
}

impl DbPreset {
    pub const ALL: [DbPreset; 4] = [
        DbPreset::Uniform1G,
        DbPreset::Skewed1G,
        DbPreset::Uniform10G,
        DbPreset::Skewed10G,
    ];

    /// Short label used in experiment tables (matches the paper's wording).
    pub fn label(&self) -> &'static str {
        match self {
            DbPreset::Uniform1G => "Uniform TPC-H 1GB",
            DbPreset::Skewed1G => "Skewed TPC-H 1GB",
            DbPreset::Uniform10G => "Uniform TPC-H 10GB",
            DbPreset::Skewed10G => "Skewed TPC-H 10GB",
        }
    }

    /// Compact label for narrow table headers.
    pub fn short_label(&self) -> &'static str {
        match self {
            DbPreset::Uniform1G => "U-1G",
            DbPreset::Skewed1G => "S-1G",
            DbPreset::Uniform10G => "U-10G",
            DbPreset::Skewed10G => "S-10G",
        }
    }

    /// Generator configuration for the preset. "1 GB" ≈ SF 0.004 (≈ 24 k
    /// lineitem rows), "10 GB" ≈ SF 0.04 — a 10× ratio, as in the paper.
    pub fn gen_config(&self, seed: u64) -> GenConfig {
        match self {
            DbPreset::Uniform1G => GenConfig::new(0.004, 0.0, seed),
            DbPreset::Skewed1G => GenConfig::new(0.004, 1.0, seed),
            DbPreset::Uniform10G => GenConfig::new(0.04, 0.0, seed),
            DbPreset::Skewed10G => GenConfig::new(0.04, 1.0, seed),
        }
    }

    /// Builds the database.
    pub fn build(&self, seed: u64) -> Catalog {
        generate(&self.gen_config(seed))
    }

    pub fn is_skewed(&self) -> bool {
        matches!(self, DbPreset::Skewed1G | DbPreset::Skewed10G)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_with_expected_relative_sizes() {
        let small = DbPreset::Uniform1G.build(11);
        let big = DbPreset::Uniform10G.build(11);
        let ratio = big.table("orders").len() as f64 / small.table("orders").len() as f64;
        assert!((9.0..11.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn skew_flag() {
        assert!(DbPreset::Skewed1G.is_skewed());
        assert!(!DbPreset::Uniform10G.is_skewed());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = DbPreset::ALL.iter().map(|p| p.short_label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
