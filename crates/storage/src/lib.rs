//! # uaq-storage
//!
//! In-memory storage substrate for the `uaq` reproduction: typed values,
//! schemas, row tables with a page model (the cost model charges page I/O),
//! equi-depth histograms (optimizer statistics), and provenance-carrying
//! sample tables (the materialized sampling views of §3.2.2 of the paper).

pub mod catalog;
pub mod column;
pub mod histogram;
pub mod sample;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::{Catalog, SampleCatalog, TableStats};
pub use column::{
    columns_from_rows, rows_from_columns, ColumnData, ColumnRef, ColumnSlice, MAX_SELECTION_DEPTH,
};
pub use histogram::Histogram;
pub use sample::{sample_size_for_ratio, SampleTable};
pub use schema::{Column, ColumnType, Schema};
pub use table::{Table, DEFAULT_TUPLES_PER_PAGE};
pub use value::{Row, Value};
