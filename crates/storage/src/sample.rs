//! Sample tables — the materialized views of §3.2.2.
//!
//! The paper's estimator partitions each relation into blocks and lets the
//! block size be a single tuple, so a "sampling step" draws one tuple
//! uniformly (i.i.d., with replacement). We materialize `n_k` such draws per
//! relation as a sample table whose *row position* is the sampling-step
//! index — that position is the provenance identifier the `Q_{k,j,n}`
//! counters of Algorithm 1 key on ("akin to the idea in data provenance
//! research", §3.2.2).
//!
//! Because estimates for nested operators reuse join results (Example 4),
//! two children of the same join must not share samples of a common base
//! relation (Lemma 2); the catalog therefore supports several *independent*
//! sample tables per relation, addressed by a copy index.

use crate::table::Table;
use uaq_stats::Rng;

/// One i.i.d.-with-replacement sample of a base relation.
#[derive(Debug, Clone)]
pub struct SampleTable {
    /// Name of the sampled base relation.
    base_name: String,
    /// Cardinality of the base relation (`|R|`), needed to scale
    /// selectivities back to cardinalities.
    base_rows: usize,
    /// Which independent sample copy this is (0-based).
    copy: usize,
    /// The sampled rows; row `j` is sampling step `j`.
    table: Table,
}

impl SampleTable {
    /// Draws `n` tuples i.i.d. with replacement from `base`.
    pub fn draw(base: &Table, n: usize, copy: usize, rng: &mut Rng) -> Self {
        assert!(n > 0, "empty sample of {}", base.name());
        assert!(
            !base.is_empty(),
            "cannot sample empty table {}",
            base.name()
        );
        // Gather typed columns by sampled index instead of cloning rows —
        // the draw itself is on the Monte-Carlo hot path, and the row
        // mirror of the resulting table stays unmaterialized unless a row
        // consumer asks for it.
        let idx: Vec<u32> = (0..n).map(|_| rng.usize_below(base.len()) as u32).collect();
        let columns: Vec<_> = base.columns().iter().map(|c| c.gather(&idx)).collect();
        let table = Table::from_columns(
            format!("{}#s{}", base.name(), copy),
            base.schema().clone(),
            columns,
            base.tuples_per_page(),
        );
        Self {
            base_name: base.name().to_string(),
            base_rows: base.len(),
            copy,
            table,
        }
    }

    pub fn base_name(&self) -> &str {
        &self.base_name
    }

    /// `|R|` of the base relation.
    pub fn base_rows(&self) -> usize {
        self.base_rows
    }

    pub fn copy(&self) -> usize {
        self.copy
    }

    /// Number of sampling steps `n_k`.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The sample rows as a regular table (row position = step index).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Effective sampling ratio `n_k / |R|`.
    pub fn ratio(&self) -> f64 {
        self.len() as f64 / self.base_rows as f64
    }
}

/// Computes the per-relation sample size for a target sampling ratio.
///
/// Follows the paper's §6.4 rule of thumb: "the sample size should be larger
/// than or equal to 30 in general" — the CLT normality of `ρ_n` needs a
/// minimum number of sampling steps, so tiny dimension tables are sampled at
/// least 30 times (capped at the relation size; duplicates are fine since
/// steps are i.i.d. with replacement, but beyond `|R|` extra steps add
/// nothing for our in-memory substrate).
pub fn sample_size_for_ratio(base_rows: usize, ratio: f64) -> usize {
    assert!(
        ratio > 0.0 && ratio.is_finite(),
        "bad sampling ratio {ratio}"
    );
    let target = (base_rows as f64 * ratio).round() as usize;
    target.max(30).min(base_rows.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn base(n: usize) -> Table {
        let schema = Schema::new(vec![Column::int("id")]);
        let rows = (0..n).map(|i| vec![Value::Int(i as i64)]).collect();
        Table::new("base", schema, rows)
    }

    #[test]
    fn draw_has_requested_size_and_metadata() {
        let b = base(1000);
        let mut rng = Rng::new(1);
        let s = SampleTable::draw(&b, 50, 2, &mut rng);
        assert_eq!(s.len(), 50);
        assert_eq!(s.base_rows(), 1000);
        assert_eq!(s.copy(), 2);
        assert_eq!(s.base_name(), "base");
        assert_eq!(s.table().name(), "base#s2");
        assert!((s.ratio() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn draw_rows_come_from_base() {
        let b = base(100);
        let mut rng = Rng::new(2);
        let s = SampleTable::draw(&b, 200, 0, &mut rng);
        for row in s.table().rows() {
            let id = row[0].as_int();
            assert!((0..100).contains(&id));
        }
    }

    #[test]
    fn with_replacement_allows_duplicates() {
        let b = base(3);
        let mut rng = Rng::new(3);
        let s = SampleTable::draw(&b, 50, 0, &mut rng);
        // Pigeonhole: 50 draws from 3 rows must repeat.
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn draws_are_roughly_uniform() {
        let b = base(10);
        let mut rng = Rng::new(4);
        let mut counts = [0u32; 10];
        let s = SampleTable::draw(&b, 100_000, 0, &mut rng);
        for row in s.table().rows() {
            counts[row[0].as_int() as usize] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 700, "{counts:?}");
        }
    }

    #[test]
    fn independent_copies_differ() {
        let b = base(10_000);
        let mut rng = Rng::new(5);
        let s0 = SampleTable::draw(&b, 100, 0, &mut rng);
        let s1 = SampleTable::draw(&b, 100, 1, &mut rng);
        let same = s0
            .table()
            .rows()
            .iter()
            .zip(s1.table().rows())
            .filter(|(a, b)| a[0] == b[0])
            .count();
        assert!(same < 5, "copies look identical ({same} matches)");
    }

    #[test]
    fn sample_size_floor_of_thirty() {
        assert_eq!(sample_size_for_ratio(1000, 0.05), 50);
        // Rule-of-thumb floor...
        assert_eq!(sample_size_for_ratio(1000, 0.01), 30);
        // ...capped at the relation size for tiny tables.
        assert_eq!(sample_size_for_ratio(10, 0.01), 10);
        assert_eq!(sample_size_for_ratio(1_000_000, 0.001), 1000);
    }
}
