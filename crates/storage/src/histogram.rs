//! Equi-depth histograms — the "optimizer statistics" of the substrate.
//!
//! These play the role of PostgreSQL's `pg_statistic`: the heuristic
//! optimizer estimates scan/join cardinalities from them, and (as in
//! Algorithm 1, lines 2–5 of the paper) operators above an aggregate fall
//! back to these estimates because the sampling estimator cannot see through
//! a group-by.

/// Equi-depth (equi-height) histogram over the numeric view of a column.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// `buckets + 1` boundary values; bucket `i` spans `[b[i], b[i+1])`, the
    /// last bucket is closed on the right.
    bounds: Vec<f64>,
    /// Rows represented by the histogram.
    total: usize,
    /// Exact number of distinct values observed at build time.
    distinct: usize,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Builds an equi-depth histogram with (up to) `buckets` buckets.
    pub fn build(values: &[f64], buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        if values.is_empty() {
            return Self {
                bounds: vec![0.0, 0.0],
                total: 0,
                distinct: 0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in histogram input"));
        let total = sorted.len();
        let distinct = {
            let mut d = 1;
            for w in sorted.windows(2) {
                if w[0] != w[1] {
                    d += 1;
                }
            }
            d
        };
        let buckets = buckets.min(total);
        let mut bounds = Vec::with_capacity(buckets + 1);
        for i in 0..=buckets {
            let pos = (i * (total - 1)) / buckets;
            bounds.push(sorted[pos]);
        }
        // Last bound must be the true max even with integer truncation.
        *bounds.last_mut().expect("non-empty") = sorted[total - 1];
        Self {
            bounds,
            total,
            distinct,
            min: sorted[0],
            max: sorted[total - 1],
        }
    }

    pub fn total(&self) -> usize {
        self.total
    }

    pub fn distinct(&self) -> usize {
        self.distinct
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    fn buckets(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Estimated fraction of rows with value `< x` (continuous
    /// interpolation within buckets, PostgreSQL-style).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 || x <= self.min {
            return 0.0;
        }
        if x > self.max {
            return 1.0;
        }
        let nb = self.buckets() as f64;
        let mut acc = 0.0;
        for i in 0..self.buckets() {
            let lo = self.bounds[i];
            let hi = self.bounds[i + 1];
            if x >= hi {
                acc += 1.0 / nb;
            } else if x > lo {
                let width = hi - lo;
                let frac = if width > 0.0 { (x - lo) / width } else { 1.0 };
                acc += frac / nb;
                break;
            } else {
                break;
            }
        }
        acc.clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a closed range predicate `lo <= v <= hi`.
    pub fn range_selectivity(&self, lo: f64, hi: f64) -> f64 {
        if self.total == 0 || hi < lo {
            return 0.0;
        }
        let upper = if hi >= self.max {
            1.0
        } else {
            self.fraction_below(hi)
        };
        (upper - self.fraction_below(lo)).clamp(0.0, 1.0)
    }

    /// Approximate quantile: the smallest value `x` with
    /// `fraction_below(x) ≈ p`. Used by the MICRO workload generator to pick
    /// predicate constants that sweep the selectivity space (Picasso-style,
    /// §6.2 of the paper).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile p out of range: {p}");
        if self.total == 0 {
            return 0.0;
        }
        if p <= 0.0 {
            return self.min;
        }
        if p >= 1.0 {
            return self.max;
        }
        let nb = self.buckets() as f64;
        let pos = p * nb;
        let bucket = (pos.floor() as usize).min(self.buckets() - 1);
        let frac = pos - bucket as f64;
        let lo = self.bounds[bucket];
        let hi = self.bounds[bucket + 1];
        lo + (hi - lo) * frac
    }

    /// Estimated selectivity of an equality predicate `v == x`
    /// (uniform-over-distinct assumption).
    pub fn eq_selectivity(&self, x: f64) -> f64 {
        if self.total == 0 || self.distinct == 0 || x < self.min || x > self.max {
            return 0.0;
        }
        1.0 / self.distinct as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_stats::Rng;

    #[test]
    fn uniform_data_range_estimates() {
        let values: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let h = Histogram::build(&values, 100);
        assert_eq!(h.total(), 10_000);
        assert_eq!(h.distinct(), 10_000);
        // 25% range.
        let sel = h.range_selectivity(0.0, 2499.0);
        assert!((sel - 0.25).abs() < 0.02, "sel={sel}");
        // Out-of-range.
        assert_eq!(h.range_selectivity(20_000.0, 30_000.0), 0.0);
        // Everything.
        assert!((h.range_selectivity(-1.0, 1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_data_still_calibrated() {
        // Equi-depth adapts bucket widths to density.
        let mut rng = Rng::new(99);
        let values: Vec<f64> = (0..20_000).map(|_| rng.f64().powi(4) * 100.0).collect();
        let h = Histogram::build(&values, 64);
        for cut in [0.1, 1.0, 10.0, 50.0] {
            let truth = values.iter().filter(|&&v| v < cut).count() as f64 / 20_000.0;
            let est = h.fraction_below(cut);
            assert!(
                (est - truth).abs() < 0.03,
                "cut={cut}: est={est} truth={truth}"
            );
        }
    }

    #[test]
    fn eq_selectivity_uniform_over_distinct() {
        let values: Vec<f64> = (0..100)
            .flat_map(|i| std::iter::repeat_n(i as f64, 5))
            .collect();
        let h = Histogram::build(&values, 10);
        assert_eq!(h.distinct(), 100);
        assert!((h.eq_selectivity(42.0) - 0.01).abs() < 1e-12);
        assert_eq!(h.eq_selectivity(1e9), 0.0);
    }

    #[test]
    fn empty_histogram() {
        let h = Histogram::build(&[], 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction_below(1.0), 0.0);
        assert_eq!(h.range_selectivity(0.0, 1.0), 0.0);
        assert_eq!(h.eq_selectivity(0.0), 0.0);
    }

    #[test]
    fn constant_column() {
        let h = Histogram::build(&vec![7.0; 1000], 16);
        assert_eq!(h.distinct(), 1);
        assert!((h.eq_selectivity(7.0) - 1.0).abs() < 1e-12);
        assert!((h.range_selectivity(6.0, 8.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.range_selectivity(8.0, 9.0), 0.0);
    }

    #[test]
    fn quantile_inverts_fraction_below() {
        let values: Vec<f64> = (0..10_000).map(|i| (i * i) as f64).collect();
        let h = Histogram::build(&values, 64);
        for p in [0.1, 0.25, 0.5, 0.75, 0.9] {
            let x = h.quantile(p);
            let back = h.fraction_below(x);
            assert!((back - p).abs() < 0.03, "p={p}: quantile {x}, back {back}");
        }
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn fraction_below_is_monotone() {
        let mut rng = Rng::new(12);
        let values: Vec<f64> = (0..5000).map(|_| rng.f64() * 50.0).collect();
        let h = Histogram::build(&values, 32);
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 * 0.5;
            let f = h.fraction_below(x);
            assert!(f >= prev - 1e-12, "non-monotone at {x}");
            prev = f;
        }
    }
}
