//! Runtime values. The engine is typed but deliberately small: 64-bit
//! integers (also used for dictionary-encoded dates), 64-bit floats, and
//! interned strings cover every column of the TPC-H-like schema.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single column value.
#[derive(Debug, Clone)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(Arc<str>),
}

impl Value {
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    pub fn as_int(&self) -> i64 {
        match self {
            Value::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    pub fn as_float(&self) -> f64 {
        match self {
            Value::Float(v) => *v,
            Value::Int(v) => *v as f64,
            other => panic!("expected numeric, got {other:?}"),
        }
    }

    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, got {other:?}"),
        }
    }

    /// Numeric view used by histograms; strings have no numeric view.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Str(_) => "Str",
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64).to_bits() == b.to_bits()
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Ints and whole floats that compare equal must hash equally.
            Value::Int(v) => (*v as f64).to_bits().hash(state),
            Value::Float(v) => v.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => {
                let (x, y) = (
                    a.numeric()
                        .unwrap_or_else(|| panic!("cannot order {a:?} vs {b:?}")),
                    b.numeric()
                        .unwrap_or_else(|| panic!("cannot order {a:?} vs {b:?}")),
                );
                x.partial_cmp(&y).expect("NaN in ordered value")
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A row of values.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_float_cross_equality_and_hash() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_eq!(hash_of(&Value::Int(3)), hash_of(&Value::Float(3.0)));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert!(Value::Float(1.5) < Value::Int(2));
        assert!(Value::str("apple") < Value::str("banana"));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(4).numeric(), Some(4.0));
        assert_eq!(Value::Float(2.5).numeric(), Some(2.5));
        assert_eq!(Value::str("x").numeric(), None);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), 7);
        assert_eq!(Value::Int(7).as_float(), 7.0);
        assert_eq!(Value::str("hi").as_str(), "hi");
    }

    #[test]
    #[should_panic]
    fn as_int_on_str_panics() {
        Value::str("oops").as_int();
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::str("abc").to_string(), "abc");
    }
}
