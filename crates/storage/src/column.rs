//! Column-major data: one typed vector per column.
//!
//! The engine's data plane executes over [`ColumnData`] batches instead of
//! `Vec<Row>`: a selection is an index vector into typed columns, a join
//! gathers row indices, and rows are only materialized on explicit request
//! at the edge. The three variants mirror the 3-type [`Value`] model —
//! 64-bit integers, 64-bit floats, and interned strings.
//!
//! Column payloads travel as [`ColumnRef`] — an `Arc`-shared handle that is
//! O(1) to clone, so an operator that passes a column through unchanged (an
//! unfiltered scan, a keep-everything filter, a materialize) *shares* the
//! payload with its input instead of deep-copying it. Code that needs to
//! mutate a possibly-shared column goes through [`ColumnRef::make_mut`],
//! the copy-on-write escape hatch: it clones the payload only when someone
//! else still holds it. (The engine's operators currently never mutate in
//! place — they build fresh columns — so `make_mut` is exercised by the
//! CoW proptests and reserved for in-place builders.)

use crate::schema::{ColumnType, Schema};
use crate::value::{Row, Value};
use std::ops::Deref;
use std::sync::Arc;

/// One column of values, stored contiguously by type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column of the given type with reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            ColumnType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Str(_) => ColumnType::Str,
        }
    }

    /// Materializes cell `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Appends a value; panics if the value's type does not match the column.
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(*x),
            // Int widens into a Float column (aggregate outputs may mix the
            // two, e.g. an empty-input MIN defaulting to integer zero).
            (ColumnData::Float(col), Value::Int(x)) => col.push(*x as f64),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x.clone()),
            (col, v) => panic!("cannot push {v:?} into {:?} column", col.ty()),
        }
    }

    /// New column containing `self[idx[0]], self[idx[1]], …`.
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Appends `src[idx[0]], src[idx[1]], …` onto `self` (same type required).
    pub fn extend_gather(&mut self, src: &ColumnData, idx: &[u32]) {
        match (self, src) {
            (ColumnData::Int(dst), ColumnData::Int(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Float(dst), ColumnData::Float(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Str(dst), ColumnData::Str(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize].clone()));
            }
            (dst, src) => panic!(
                "extend_gather type mismatch: {:?} <- {:?}",
                dst.ty(),
                src.ty()
            ),
        }
    }
}

impl AsRef<ColumnData> for ColumnData {
    fn as_ref(&self) -> &ColumnData {
        self
    }
}

/// A reference-counted column handle: the unit of the zero-copy data plane.
///
/// Cloning a `ColumnRef` bumps a refcount; the typed payload is shared.
/// Every read path (`Deref` to [`ColumnData`]) is free of indirection cost
/// beyond the `Arc`, and [`ColumnRef::make_mut`] gives copy-on-write
/// mutation for the rare paths that build a column in place: semantically
/// identical to eagerly cloning the payload first (a property the storage
/// proptests pin down), but paying for the copy only when the column is
/// actually shared.
#[derive(Debug, Clone)]
pub struct ColumnRef {
    data: Arc<ColumnData>,
}

impl ColumnRef {
    /// Wraps freshly built column data (refcount 1 — not yet shared).
    pub fn new(data: ColumnData) -> Self {
        Self {
            data: Arc::new(data),
        }
    }

    /// Copy-on-write access: clones the payload iff another handle shares
    /// it, so mutating through the returned reference can never be observed
    /// by other holders.
    pub fn make_mut(&mut self) -> &mut ColumnData {
        Arc::make_mut(&mut self.data)
    }

    /// True if both handles share one allocation — what a pass-through
    /// operator guarantees (stronger than payload equality).
    pub fn ptr_eq(&self, other: &ColumnRef) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of handles sharing the payload (tests use this to prove that
    /// sharing actually happens, not just compiles).
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// New handle containing `self[idx[0]], self[idx[1]], …` (always a
    /// fresh, unshared payload).
    pub fn gather(&self, idx: &[u32]) -> ColumnRef {
        ColumnRef::new(self.data.gather(idx))
    }
}

impl Deref for ColumnRef {
    type Target = ColumnData;

    fn deref(&self) -> &ColumnData {
        &self.data
    }
}

impl AsRef<ColumnData> for ColumnRef {
    fn as_ref(&self) -> &ColumnData {
        &self.data
    }
}

impl From<ColumnData> for ColumnRef {
    fn from(data: ColumnData) -> Self {
        ColumnRef::new(data)
    }
}

/// Builds column vectors from schema-conformant rows.
pub fn columns_from_rows(schema: &Schema, rows: &[Row]) -> Vec<ColumnData> {
    let mut cols: Vec<ColumnData> = schema
        .columns()
        .iter()
        .map(|c| ColumnData::with_capacity(c.ty, rows.len()))
        .collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols.len(), "row arity mismatch");
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v);
        }
    }
    cols
}

/// Materializes rows `0..len` from a set of equal-length columns, reading
/// through any column handle (`ColumnData` or [`ColumnRef`]) without copying
/// the columns themselves.
pub fn rows_from_columns<C: AsRef<ColumnData>>(cols: &[C], len: usize) -> Vec<Row> {
    (0..len)
        .map(|i| cols.iter().map(|c| c.as_ref().value(i)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn sample() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![Column::int("a"), Column::float("b"), Column::str("c")]);
        let rows = (0..5)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                    Value::str(format!("s{i}")),
                ]
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn roundtrip_rows_columns_rows() {
        let (schema, rows) = sample();
        let cols = columns_from_rows(&schema, &rows);
        assert_eq!(cols.len(), 3);
        assert!(cols.iter().all(|c| c.len() == 5));
        assert_eq!(rows_from_columns(&cols, 5), rows);
    }

    #[test]
    fn gather_selects_and_reorders() {
        let (schema, rows) = sample();
        let cols = columns_from_rows(&schema, &rows);
        let g = cols[0].gather(&[4, 0, 0]);
        assert_eq!(g, ColumnData::Int(vec![4, 0, 0]));
        let mut acc = ColumnData::empty(ColumnType::Str);
        acc.extend_gather(&cols[2], &[1, 3]);
        assert_eq!(acc.value(0), Value::str("s1"));
        assert_eq!(acc.value(1), Value::str("s3"));
    }

    #[test]
    fn push_widens_int_into_float() {
        let mut c = ColumnData::empty(ColumnType::Float);
        c.push(&Value::Int(3));
        assert_eq!(c.value(0), Value::Float(3.0));
        // Cross-type Value equality also holds: Int(3) == Float(3.0).
        assert_eq!(c.value(0), Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn push_rejects_str_into_int() {
        ColumnData::empty(ColumnType::Int).push(&Value::str("x"));
    }
}
