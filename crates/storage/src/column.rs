//! Column-major data: one typed vector per column.
//!
//! The engine's data plane executes over [`ColumnData`] batches instead of
//! `Vec<Row>`: a selection is an index vector into typed columns, a join
//! gathers row indices, and rows are only materialized on explicit request
//! at the edge. The three variants mirror the 3-type [`Value`] model —
//! 64-bit integers, 64-bit floats, and interned strings.
//!
//! Column payloads travel as [`ColumnRef`] — an `Arc`-shared handle that is
//! O(1) to clone, so an operator that passes a column through unchanged (an
//! unfiltered scan, a keep-everything filter, a materialize) *shares* the
//! payload with its input instead of deep-copying it. Code that needs to
//! mutate a possibly-shared column goes through [`ColumnRef::make_mut`],
//! the copy-on-write escape hatch: it clones the payload only when someone
//! else still holds it. (The engine's operators currently never mutate in
//! place — they build fresh columns — so `make_mut` is exercised by the
//! CoW proptests and reserved for in-place builders.)

use crate::schema::{ColumnType, Schema};
use crate::value::{Row, Value};
use std::ops::Deref;
use std::sync::Arc;

/// One column of values, stored contiguously by type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column of the given type with reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            ColumnType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Str(_) => ColumnType::Str,
        }
    }

    /// Materializes cell `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Appends a value; panics if the value's type does not match the column.
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(*x),
            // Int widens into a Float column (aggregate outputs may mix the
            // two, e.g. an empty-input MIN defaulting to integer zero).
            (ColumnData::Float(col), Value::Int(x)) => col.push(*x as f64),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x.clone()),
            (col, v) => panic!("cannot push {v:?} into {:?} column", col.ty()),
        }
    }

    /// New column containing `self[idx[0]], self[idx[1]], …`.
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Two-level gather `self[inner[outer[k]]]` for every `k` in one typed
    /// pass: the fast path for densifying a depth-2 selection chain without
    /// first composing the index vectors and without per-cell [`Value`]
    /// round-trips.
    pub fn gather2(&self, inner: &[u32], outer: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(
                outer
                    .iter()
                    .map(|&k| v[inner[k as usize] as usize])
                    .collect(),
            ),
            ColumnData::Float(v) => ColumnData::Float(
                outer
                    .iter()
                    .map(|&k| v[inner[k as usize] as usize])
                    .collect(),
            ),
            ColumnData::Str(v) => ColumnData::Str(
                outer
                    .iter()
                    .map(|&k| v[inner[k as usize] as usize].clone())
                    .collect(),
            ),
        }
    }

    /// Appends `src[idx[0]], src[idx[1]], …` onto `self` (same type required).
    pub fn extend_gather(&mut self, src: &ColumnData, idx: &[u32]) {
        match (self, src) {
            (ColumnData::Int(dst), ColumnData::Int(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Float(dst), ColumnData::Float(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Str(dst), ColumnData::Str(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize].clone()));
            }
            (dst, src) => panic!(
                "extend_gather type mismatch: {:?} <- {:?}",
                dst.ty(),
                src.ty()
            ),
        }
    }
}

impl AsRef<ColumnData> for ColumnData {
    fn as_ref(&self) -> &ColumnData {
        self
    }
}

/// A reference-counted column handle: the unit of the zero-copy data plane.
///
/// Cloning a `ColumnRef` bumps a refcount; the typed payload is shared.
/// Every read path (`Deref` to [`ColumnData`]) is free of indirection cost
/// beyond the `Arc`, and [`ColumnRef::make_mut`] gives copy-on-write
/// mutation for the rare paths that build a column in place: semantically
/// identical to eagerly cloning the payload first (a property the storage
/// proptests pin down), but paying for the copy only when the column is
/// actually shared.
#[derive(Debug, Clone)]
pub struct ColumnRef {
    data: Arc<ColumnData>,
}

impl ColumnRef {
    /// Wraps freshly built column data (refcount 1 — not yet shared).
    pub fn new(data: ColumnData) -> Self {
        Self {
            data: Arc::new(data),
        }
    }

    /// Copy-on-write access: clones the payload iff another handle shares
    /// it, so mutating through the returned reference can never be observed
    /// by other holders.
    pub fn make_mut(&mut self) -> &mut ColumnData {
        Arc::make_mut(&mut self.data)
    }

    /// True if both handles share one allocation — what a pass-through
    /// operator guarantees (stronger than payload equality).
    pub fn ptr_eq(&self, other: &ColumnRef) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Number of handles sharing the payload (tests use this to prove that
    /// sharing actually happens, not just compiles).
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// New handle containing `self[idx[0]], self[idx[1]], …` (always a
    /// fresh, unshared payload).
    pub fn gather(&self, idx: &[u32]) -> ColumnRef {
        ColumnRef::new(self.data.gather(idx))
    }
}

impl Deref for ColumnRef {
    type Target = ColumnData;

    fn deref(&self) -> &ColumnData {
        &self.data
    }
}

impl AsRef<ColumnData> for ColumnRef {
    fn as_ref(&self) -> &ColumnData {
        &self.data
    }
}

impl From<ColumnData> for ColumnRef {
    fn from(data: ColumnData) -> Self {
        ColumnRef::new(data)
    }
}

/// Maximum depth of a [`ColumnSlice`] selection chain before it is
/// flattened into a single composed index vector. Selection-over-selection
/// keeps filters zero-copy, but every level adds one dependent load per
/// read; past this bound the chain is composed once (O(rows) u32 writes)
/// so reads stay cache-friendly.
pub const MAX_SELECTION_DEPTH: usize = 3;

/// A late-materialized column view: a shared base column plus an optional
/// chain of shared selection vectors.
///
/// This is the unit of the stage-two zero-copy data plane. A selective
/// operator (filter, join output, sort) no longer gathers fresh payloads —
/// it emits `ColumnSlice`s that layer an `Arc`-shared index vector over the
/// input's slices, with one selection `Arc` shared across *all* columns of
/// a batch. Reads (`value`, [`ColumnSlice::for_each_physical`]) resolve the
/// indirection; [`ColumnSlice::to_dense`] is the single place payloads are
/// actually copied, deferred until a consumer needs dense cells
/// (aggregation state build, sort keys, schema-changing ops, the service
/// edge).
///
/// The chain is stored innermost-first: logical row `i` reads
/// `base[sels[0][sels[1][… sels[k-1][i] …]]]`. Chains deeper than
/// [`MAX_SELECTION_DEPTH`] are flattened on construction.
#[derive(Debug, Clone)]
pub struct ColumnSlice {
    base: ColumnRef,
    sels: Vec<Arc<Vec<u32>>>,
}

impl ColumnSlice {
    /// A dense view of a whole column (no indirection; refcount bump only).
    pub fn dense(base: ColumnRef) -> Self {
        Self {
            base,
            sels: Vec::new(),
        }
    }

    /// A view of `base` restricted to `sel` (shared, not copied).
    pub fn selected(base: ColumnRef, sel: Arc<Vec<u32>>) -> Self {
        debug_assert!(sel.iter().all(|&i| (i as usize) < base.len()));
        Self {
            base,
            sels: vec![sel],
        }
    }

    /// Logical length: rows visible through the selection chain.
    pub fn len(&self) -> usize {
        self.sels.last().map_or(self.base.len(), |s| s.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> ColumnType {
        self.base.ty()
    }

    /// True when no selection is layered over the base column.
    pub fn is_dense(&self) -> bool {
        self.sels.is_empty()
    }

    /// Current chain depth (0 for a dense slice, ≤ [`MAX_SELECTION_DEPTH`]).
    pub fn selection_depth(&self) -> usize {
        self.sels.len()
    }

    /// The shared base column the selection chain reads through.
    pub fn base(&self) -> &ColumnRef {
        &self.base
    }

    /// Outermost selection vector (`None` when dense). Tests use the `Arc`
    /// identity to prove one selection is shared across a batch's columns.
    pub fn top_selection(&self) -> Option<&Arc<Vec<u32>>> {
        self.sels.last()
    }

    /// Physical base index of logical row `i`.
    #[inline]
    pub fn physical(&self, i: usize) -> usize {
        let mut p = i;
        for s in self.sels.iter().rev() {
            p = s[p] as usize;
        }
        p
    }

    /// Materializes logical cell `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        self.base.value(self.physical(i))
    }

    /// Calls `f` with the physical index of every logical row, in logical
    /// order — depth-specialized so reads compile to direct indexed loads
    /// instead of a per-row chain walk.
    #[inline]
    pub fn for_each_physical(&self, mut f: impl FnMut(usize)) {
        match self.sels.as_slice() {
            [] => (0..self.base.len()).for_each(f),
            [s0] => s0.iter().for_each(|&p| f(p as usize)),
            [s0, s1] => s1.iter().for_each(|&p| f(s0[p as usize] as usize)),
            chain => {
                let (outer, inner) = chain.split_last().expect("chain non-empty");
                for &p in outer.iter() {
                    let mut q = p as usize;
                    for s in inner.iter().rev() {
                        q = s[q] as usize;
                    }
                    f(q);
                }
            }
        }
    }

    /// Layers a further selection (over this slice's *logical* rows) on
    /// top, flattening if the chain would exceed [`MAX_SELECTION_DEPTH`].
    /// For whole batches prefer [`ColumnSlice::select_all`], which shares
    /// one flattened vector across columns.
    pub fn select(&self, sel: &Arc<Vec<u32>>) -> ColumnSlice {
        let mut sels = self.sels.clone();
        sels.push(sel.clone());
        if sels.len() > MAX_SELECTION_DEPTH {
            sels = vec![Arc::new(compose_chain(&sels))];
        }
        ColumnSlice {
            base: self.base.clone(),
            sels,
        }
    }

    /// Applies one shared selection to every column of a batch: each output
    /// slice holds the same selection `Arc` (no per-column index copies).
    /// Chains that exceed [`MAX_SELECTION_DEPTH`] are flattened, and the
    /// composed vector is memoized per distinct input chain, so columns
    /// that shared a chain before still share one flattened vector after.
    pub fn select_all(cols: &[ColumnSlice], sel: &Arc<Vec<u32>>) -> Vec<ColumnSlice> {
        // Memo key: the chain's Arc pointer identities, so columns sharing
        // a selection chain resolve to one flattened vector.
        type ChainKey = Vec<*const Vec<u32>>;
        let mut flats: Vec<(ChainKey, Arc<Vec<u32>>)> = Vec::new();
        cols.iter()
            .map(|c| {
                let mut sels = c.sels.clone();
                sels.push(sel.clone());
                if sels.len() <= MAX_SELECTION_DEPTH {
                    return ColumnSlice {
                        base: c.base.clone(),
                        sels,
                    };
                }
                let key: ChainKey = sels.iter().map(Arc::as_ptr).collect();
                let flat = match flats.iter().find(|(k, _)| *k == key) {
                    Some((_, f)) => f.clone(),
                    None => {
                        let f = Arc::new(compose_chain(&sels));
                        flats.push((key, f.clone()));
                        f
                    }
                };
                ColumnSlice {
                    base: c.base.clone(),
                    sels: vec![flat],
                }
            })
            .collect()
    }

    /// Densifies the view: a column holding exactly the selected cells, in
    /// logical order. This is where deferred gathers finally happen — via
    /// the typed per-variant loops ([`ColumnData::gather`] /
    /// [`ColumnData::gather2`]), never per-cell `Value` round-trips. A
    /// dense slice densifies for free: the base handle is shared, which
    /// preserves the stage-one pass-through `ptr_eq` guarantees.
    pub fn to_dense(&self) -> ColumnRef {
        match self.sels.as_slice() {
            [] => self.base.clone(),
            [s0] => self.base.gather(s0),
            [s0, s1] => ColumnRef::new(self.base.gather2(s0, s1)),
            chain => self.base.gather(&compose_chain(chain)),
        }
    }
}

impl From<ColumnRef> for ColumnSlice {
    fn from(base: ColumnRef) -> Self {
        ColumnSlice::dense(base)
    }
}

impl From<ColumnData> for ColumnSlice {
    fn from(data: ColumnData) -> Self {
        ColumnSlice::dense(ColumnRef::new(data))
    }
}

/// Composes a selection chain (innermost first) into one index vector:
/// `out[i] = sels[0][sels[1][… sels[last][i] …]]`.
fn compose_chain(sels: &[Arc<Vec<u32>>]) -> Vec<u32> {
    let (outer, inner) = sels.split_last().expect("chain non-empty");
    let mut flat: Vec<u32> = outer.as_ref().clone();
    for s in inner.iter().rev() {
        for p in flat.iter_mut() {
            *p = s[*p as usize];
        }
    }
    flat
}

/// Builds column vectors from schema-conformant rows.
pub fn columns_from_rows(schema: &Schema, rows: &[Row]) -> Vec<ColumnData> {
    let mut cols: Vec<ColumnData> = schema
        .columns()
        .iter()
        .map(|c| ColumnData::with_capacity(c.ty, rows.len()))
        .collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols.len(), "row arity mismatch");
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v);
        }
    }
    cols
}

/// Materializes rows `0..len` from a set of equal-length columns, reading
/// through any column handle (`ColumnData` or [`ColumnRef`]) without copying
/// the columns themselves.
pub fn rows_from_columns<C: AsRef<ColumnData>>(cols: &[C], len: usize) -> Vec<Row> {
    (0..len)
        .map(|i| cols.iter().map(|c| c.as_ref().value(i)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn sample() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![Column::int("a"), Column::float("b"), Column::str("c")]);
        let rows = (0..5)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                    Value::str(format!("s{i}")),
                ]
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn roundtrip_rows_columns_rows() {
        let (schema, rows) = sample();
        let cols = columns_from_rows(&schema, &rows);
        assert_eq!(cols.len(), 3);
        assert!(cols.iter().all(|c| c.len() == 5));
        assert_eq!(rows_from_columns(&cols, 5), rows);
    }

    #[test]
    fn gather_selects_and_reorders() {
        let (schema, rows) = sample();
        let cols = columns_from_rows(&schema, &rows);
        let g = cols[0].gather(&[4, 0, 0]);
        assert_eq!(g, ColumnData::Int(vec![4, 0, 0]));
        let mut acc = ColumnData::empty(ColumnType::Str);
        acc.extend_gather(&cols[2], &[1, 3]);
        assert_eq!(acc.value(0), Value::str("s1"));
        assert_eq!(acc.value(1), Value::str("s3"));
    }

    #[test]
    fn push_widens_int_into_float() {
        let mut c = ColumnData::empty(ColumnType::Float);
        c.push(&Value::Int(3));
        assert_eq!(c.value(0), Value::Float(3.0));
        // Cross-type Value equality also holds: Int(3) == Float(3.0).
        assert_eq!(c.value(0), Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn push_rejects_str_into_int() {
        ColumnData::empty(ColumnType::Int).push(&Value::str("x"));
    }

    fn int_col(n: i64) -> ColumnRef {
        ColumnRef::new(ColumnData::Int((0..n).collect()))
    }

    #[test]
    fn slice_reads_through_selection_chain() {
        let base = int_col(10);
        let s1 = ColumnSlice::selected(base, Arc::new(vec![9, 7, 5, 3, 1]));
        assert_eq!(s1.len(), 5);
        assert_eq!(s1.value(0), Value::Int(9));
        assert_eq!(s1.value(4), Value::Int(1));
        // Select logical rows [1, 3] of the view → physical [7, 3].
        let s2 = s1.select(&Arc::new(vec![1, 3]));
        assert_eq!(s2.selection_depth(), 2);
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.physical(0), 7);
        assert_eq!(s2.value(1), Value::Int(3));
        let mut phys = Vec::new();
        s2.for_each_physical(|p| phys.push(p));
        assert_eq!(phys, vec![7, 3]);
    }

    #[test]
    fn slice_gather_matches_eager_composition_at_every_depth() {
        let base = int_col(20);
        let mut slice = ColumnSlice::dense(base);
        let mut eager: Vec<i64> = (0..20).collect();
        // Stack selections well past the flatten bound; after every layer
        // the slice must read exactly what eager gathering would produce.
        for (round, step) in [(0u32, 2usize), (1, 2), (0, 3), (1, 2), (0, 2)] {
            let sel: Vec<u32> = (0..eager.len() as u32)
                .filter(|i| i % step as u32 == round)
                .collect();
            eager = sel.iter().map(|&i| eager[i as usize]).collect();
            slice = slice.select(&Arc::new(sel));
            assert!(slice.selection_depth() <= MAX_SELECTION_DEPTH);
            assert_eq!(slice.len(), eager.len());
            let got: Vec<i64> = (0..slice.len())
                .map(|i| match slice.value(i) {
                    Value::Int(v) => v,
                    v => panic!("unexpected {v:?}"),
                })
                .collect();
            assert_eq!(got, eager);
            assert_eq!(slice.to_dense().as_ref(), &ColumnData::Int(eager.clone()));
        }
    }

    #[test]
    fn dense_slice_densifies_by_sharing() {
        let base = int_col(5);
        let slice = ColumnSlice::dense(base.clone());
        assert!(slice.is_dense());
        assert!(slice.to_dense().ptr_eq(&base));
    }

    #[test]
    fn select_all_shares_one_selection_across_columns() {
        let a = int_col(10);
        let b = ColumnRef::new(ColumnData::Float((0..10).map(|i| i as f64).collect()));
        let sel = Arc::new(vec![1u32, 4, 8]);
        let out = ColumnSlice::select_all(
            &[ColumnSlice::dense(a.clone()), ColumnSlice::dense(b)],
            &sel,
        );
        let tops: Vec<_> = out
            .iter()
            .map(|s| s.top_selection().expect("selected"))
            .collect();
        assert!(Arc::ptr_eq(tops[0], &sel));
        assert!(Arc::ptr_eq(tops[0], tops[1]));
        // Base payloads are untouched: still shared with the input handles.
        assert!(out[0].base().ptr_eq(&a));
    }

    #[test]
    fn select_all_flatten_memoizes_shared_chains() {
        let a = ColumnSlice::dense(int_col(16));
        let b = ColumnSlice::dense(int_col(16));
        let mut cols = vec![a, b];
        // Push chains to the bound, then once more: both columns shared
        // every chain level, so the flattened vectors must be shared too.
        for _ in 0..MAX_SELECTION_DEPTH {
            let sel = Arc::new((0..cols[0].len() as u32 / 2).map(|i| i * 2).collect());
            cols = ColumnSlice::select_all(&cols, &sel);
        }
        assert_eq!(cols[0].selection_depth(), MAX_SELECTION_DEPTH);
        let sel = Arc::new(vec![0u32, 1]);
        let flat = ColumnSlice::select_all(&cols, &sel);
        assert_eq!(flat[0].selection_depth(), 1);
        assert!(Arc::ptr_eq(
            flat[0].top_selection().expect("flattened"),
            flat[1].top_selection().expect("flattened")
        ));
        assert_eq!(flat[0].value(1), cols[0].select(&sel).value(1));
    }

    #[test]
    fn gather2_matches_composed_gather() {
        let (schema, rows) = sample();
        for col in columns_from_rows(&schema, &rows) {
            let inner = [4u32, 2, 0, 3];
            let outer = [3u32, 3, 1, 0];
            let composed: Vec<u32> = outer.iter().map(|&k| inner[k as usize]).collect();
            assert_eq!(col.gather2(&inner, &outer), col.gather(&composed));
        }
    }
}
