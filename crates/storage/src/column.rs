//! Column-major data: one typed vector per column.
//!
//! The engine's data plane executes over [`ColumnData`] batches instead of
//! `Vec<Row>`: a selection is an index vector into typed columns, a join
//! gathers row indices, and only the final result is materialized back into
//! rows. The three variants mirror the 3-type [`Value`] model — 64-bit
//! integers, 64-bit floats, and interned strings.

use crate::schema::{ColumnType, Schema};
use crate::value::{Row, Value};
use std::sync::Arc;

/// One column of values, stored contiguously by type.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    Int(Vec<i64>),
    Float(Vec<f64>),
    Str(Vec<Arc<str>>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(ty: ColumnType) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::new()),
            ColumnType::Float => ColumnData::Float(Vec::new()),
            ColumnType::Str => ColumnData::Str(Vec::new()),
        }
    }

    /// An empty column of the given type with reserved capacity.
    pub fn with_capacity(ty: ColumnType, cap: usize) -> Self {
        match ty {
            ColumnType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            ColumnType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            ColumnType::Str => ColumnData::Str(Vec::with_capacity(cap)),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int(v) => v.len(),
            ColumnData::Float(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn ty(&self) -> ColumnType {
        match self {
            ColumnData::Int(_) => ColumnType::Int,
            ColumnData::Float(_) => ColumnType::Float,
            ColumnData::Str(_) => ColumnType::Str,
        }
    }

    /// Materializes cell `i` as a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Str(v) => Value::Str(v[i].clone()),
        }
    }

    /// Appends a value; panics if the value's type does not match the column.
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (ColumnData::Int(col), Value::Int(x)) => col.push(*x),
            (ColumnData::Float(col), Value::Float(x)) => col.push(*x),
            // Int widens into a Float column (aggregate outputs may mix the
            // two, e.g. an empty-input MIN defaulting to integer zero).
            (ColumnData::Float(col), Value::Int(x)) => col.push(*x as f64),
            (ColumnData::Str(col), Value::Str(x)) => col.push(x.clone()),
            (col, v) => panic!("cannot push {v:?} into {:?} column", col.ty()),
        }
    }

    /// New column containing `self[idx[0]], self[idx[1]], …`.
    pub fn gather(&self, idx: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int(v) => ColumnData::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Str(v) => {
                ColumnData::Str(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Appends `src[idx[0]], src[idx[1]], …` onto `self` (same type required).
    pub fn extend_gather(&mut self, src: &ColumnData, idx: &[u32]) {
        match (self, src) {
            (ColumnData::Int(dst), ColumnData::Int(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Float(dst), ColumnData::Float(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize]));
            }
            (ColumnData::Str(dst), ColumnData::Str(v)) => {
                dst.extend(idx.iter().map(|&i| v[i as usize].clone()));
            }
            (dst, src) => panic!(
                "extend_gather type mismatch: {:?} <- {:?}",
                dst.ty(),
                src.ty()
            ),
        }
    }
}

impl AsRef<ColumnData> for ColumnData {
    fn as_ref(&self) -> &ColumnData {
        self
    }
}

/// Builds column vectors from schema-conformant rows.
pub fn columns_from_rows(schema: &Schema, rows: &[Row]) -> Vec<ColumnData> {
    let mut cols: Vec<ColumnData> = schema
        .columns()
        .iter()
        .map(|c| ColumnData::with_capacity(c.ty, rows.len()))
        .collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols.len(), "row arity mismatch");
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v);
        }
    }
    cols
}

/// Materializes rows `0..len` from a set of equal-length columns.
pub fn rows_from_columns(cols: &[ColumnData], len: usize) -> Vec<Row> {
    (0..len)
        .map(|i| cols.iter().map(|c| c.value(i)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn sample() -> (Schema, Vec<Row>) {
        let schema = Schema::new(vec![Column::int("a"), Column::float("b"), Column::str("c")]);
        let rows = (0..5)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Float(i as f64 * 0.5),
                    Value::str(format!("s{i}")),
                ]
            })
            .collect();
        (schema, rows)
    }

    #[test]
    fn roundtrip_rows_columns_rows() {
        let (schema, rows) = sample();
        let cols = columns_from_rows(&schema, &rows);
        assert_eq!(cols.len(), 3);
        assert!(cols.iter().all(|c| c.len() == 5));
        assert_eq!(rows_from_columns(&cols, 5), rows);
    }

    #[test]
    fn gather_selects_and_reorders() {
        let (schema, rows) = sample();
        let cols = columns_from_rows(&schema, &rows);
        let g = cols[0].gather(&[4, 0, 0]);
        assert_eq!(g, ColumnData::Int(vec![4, 0, 0]));
        let mut acc = ColumnData::empty(ColumnType::Str);
        acc.extend_gather(&cols[2], &[1, 3]);
        assert_eq!(acc.value(0), Value::str("s1"));
        assert_eq!(acc.value(1), Value::str("s3"));
    }

    #[test]
    fn push_widens_int_into_float() {
        let mut c = ColumnData::empty(ColumnType::Float);
        c.push(&Value::Int(3));
        assert_eq!(c.value(0), Value::Float(3.0));
        // Cross-type Value equality also holds: Int(3) == Float(3.0).
        assert_eq!(c.value(0), Value::Int(3));
    }

    #[test]
    #[should_panic(expected = "cannot push")]
    fn push_rejects_str_into_int() {
        ColumnData::empty(ColumnType::Int).push(&Value::str("x"));
    }
}
