//! In-memory row tables with a page model.
//!
//! The cost model charges sequential / random page I/O, so a table knows how
//! many disk pages it would occupy (`tuples_per_page` is a storage
//! parameter, default 64 — a stand-in for 8 KB pages of ~128-byte tuples).

use crate::column::{columns_from_rows, rows_from_columns, ColumnRef};
use crate::schema::Schema;
use crate::value::Row;
use std::sync::OnceLock;

/// Default number of tuples per page in the simulated storage layer.
pub const DEFAULT_TUPLES_PER_PAGE: usize = 64;

/// An in-memory table: schema + columns + page geometry.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    /// Column-major data — what the executor's data plane reads. Each
    /// column is an `Arc`-shared [`ColumnRef`], so scans and pass-through
    /// operators share the table's payloads instead of copying them.
    columns: Vec<ColumnRef>,
    /// Cardinality `|R|` (columns may be consulted lazily).
    len: usize,
    /// Row-major mirror, materialized on first `rows()` call. Tables built
    /// from rows keep the caller's vector; tables built from columns (e.g.
    /// sample draws on the Monte-Carlo hot path) never pay for it unless a
    /// row consumer — like the row-based reference executor — asks.
    rows: OnceLock<Vec<Row>>,
    tuples_per_page: usize,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        Self::with_page_size(name, schema, rows, DEFAULT_TUPLES_PER_PAGE)
    }

    pub fn with_page_size(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
        tuples_per_page: usize,
    ) -> Self {
        assert!(tuples_per_page > 0);
        let name = name.into();
        debug_assert!(
            rows.iter().all(|r| schema.validates(r)),
            "row does not match schema of table {name}"
        );
        let columns = columns_from_rows(&schema, &rows)
            .into_iter()
            .map(ColumnRef::new)
            .collect();
        Self {
            name,
            schema,
            len: rows.len(),
            columns,
            rows: OnceLock::from(rows),
            tuples_per_page,
        }
    }

    /// Builds a table directly from column handles; the row mirror stays
    /// unmaterialized until someone calls [`Self::rows`]. Used by the
    /// sample-drawing fast path.
    pub fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        columns: Vec<ColumnRef>,
        tuples_per_page: usize,
    ) -> Self {
        assert!(tuples_per_page > 0);
        let len = columns.first().map_or(0, |c| c.len());
        debug_assert!(columns.iter().all(|c| c.len() == len));
        debug_assert_eq!(columns.len(), schema.len());
        Self {
            name: name.into(),
            schema,
            len,
            columns,
            rows: OnceLock::new(),
            tuples_per_page,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row-major view (materialized lazily on first call). Built by reading
    /// through the shared column handles — the columns themselves are never
    /// copied, whether or not other holders share them.
    pub fn rows(&self) -> &[Row] {
        self.rows
            .get_or_init(|| rows_from_columns(&self.columns, self.len))
    }

    /// Column-major view of the table: one `Arc`-shared handle per column,
    /// O(1) to clone into an execution batch.
    pub fn columns(&self) -> &[ColumnRef] {
        &self.columns
    }

    /// Cardinality `|R|`.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn tuples_per_page(&self) -> usize {
        self.tuples_per_page
    }

    /// Number of pages the table occupies: `ceil(|R| / tuples_per_page)`.
    pub fn pages(&self) -> usize {
        self.len.div_ceil(self.tuples_per_page)
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> usize {
        self.schema.expect_index(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn small_table(n: usize) -> Table {
        let schema = Schema::new(vec![Column::int("id"), Column::float("v")]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64 * 0.5)])
            .collect();
        Table::with_page_size("t", schema, rows, 10)
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(small_table(0).pages(), 0);
        assert_eq!(small_table(1).pages(), 1);
        assert_eq!(small_table(10).pages(), 1);
        assert_eq!(small_table(11).pages(), 2);
        assert_eq!(small_table(100).pages(), 10);
    }

    #[test]
    fn basic_accessors() {
        let t = small_table(5);
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.column_index("v"), 1);
        assert_eq!(t.rows()[3][0], Value::Int(3));
    }

    #[test]
    #[should_panic]
    fn zero_page_size_rejected() {
        let schema = Schema::new(vec![Column::int("id")]);
        Table::with_page_size("t", schema, vec![], 0);
    }
}
