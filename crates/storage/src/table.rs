//! In-memory row tables with a page model.
//!
//! The cost model charges sequential / random page I/O, so a table knows how
//! many disk pages it would occupy (`tuples_per_page` is a storage
//! parameter, default 64 — a stand-in for 8 KB pages of ~128-byte tuples).

use crate::schema::Schema;
use crate::value::Row;

/// Default number of tuples per page in the simulated storage layer.
pub const DEFAULT_TUPLES_PER_PAGE: usize = 64;

/// An in-memory table: schema + rows + page geometry.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    tuples_per_page: usize,
}

impl Table {
    pub fn new(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        Self::with_page_size(name, schema, rows, DEFAULT_TUPLES_PER_PAGE)
    }

    pub fn with_page_size(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Row>,
        tuples_per_page: usize,
    ) -> Self {
        assert!(tuples_per_page > 0);
        let name = name.into();
        debug_assert!(
            rows.iter().all(|r| schema.validates(r)),
            "row does not match schema of table {name}"
        );
        Self {
            name,
            schema,
            rows,
            tuples_per_page,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Cardinality `|R|`.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn tuples_per_page(&self) -> usize {
        self.tuples_per_page
    }

    /// Number of pages the table occupies: `ceil(|R| / tuples_per_page)`.
    pub fn pages(&self) -> usize {
        self.rows.len().div_ceil(self.tuples_per_page)
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> usize {
        self.schema.expect_index(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn small_table(n: usize) -> Table {
        let schema = Schema::new(vec![Column::int("id"), Column::float("v")]);
        let rows = (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Float(i as f64 * 0.5)])
            .collect();
        Table::with_page_size("t", schema, rows, 10)
    }

    #[test]
    fn page_count_rounds_up() {
        assert_eq!(small_table(0).pages(), 0);
        assert_eq!(small_table(1).pages(), 1);
        assert_eq!(small_table(10).pages(), 1);
        assert_eq!(small_table(11).pages(), 2);
        assert_eq!(small_table(100).pages(), 10);
    }

    #[test]
    fn basic_accessors() {
        let t = small_table(5);
        assert_eq!(t.name(), "t");
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.column_index("v"), 1);
        assert_eq!(t.rows()[3][0], Value::Int(3));
    }

    #[test]
    #[should_panic]
    fn zero_page_size_rejected() {
        let schema = Schema::new(vec![Column::int("id")]);
        Table::with_page_size("t", schema, vec![], 0);
    }
}
