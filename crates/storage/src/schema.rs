//! Table schemas.

use crate::value::Value;
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    Int,
    Float,
    Str,
}

/// A named, typed column.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColumnType,
}

impl Column {
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }

    pub fn int(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Int)
    }

    pub fn float(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Float)
    }

    pub fn str(name: impl Into<String>) -> Self {
        Self::new(name, ColumnType::Str)
    }
}

/// An ordered list of columns. Backed by an `Arc` slice so the executor can
/// clone schemas per operator per execution for the cost of a refcount bump
/// (column names are `String`s; deep-cloning them dominated small sample
/// runs).
#[derive(Debug, Clone, Default)]
pub struct Schema {
    columns: std::sync::Arc<[Column]>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        let mut names = std::collections::HashSet::new();
        for c in &columns {
            assert!(names.insert(c.name.clone()), "duplicate column {}", c.name);
        }
        Self {
            columns: columns.into(),
        }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Index of a column by name, panicking with context if absent.
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(name).unwrap_or_else(|| {
            panic!(
                "no column {name:?} in schema [{}]",
                self.columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        })
    }

    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Concatenation of two schemas (the output schema of a join), prefixing
    /// nothing: callers are expected to have disambiguated names already.
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns: Vec<Column> = self.columns.to_vec();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }

    /// Checks a row against the schema (debug validation).
    pub fn validates(&self, row: &[Value]) -> bool {
        row.len() == self.columns.len()
            && row.iter().zip(self.columns.iter()).all(|(v, c)| {
                matches!(
                    (v, c.ty),
                    (Value::Int(_), ColumnType::Int)
                        | (Value::Float(_), ColumnType::Float)
                        | (Value::Str(_), ColumnType::Str)
                )
            })
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({})",
            self.columns
                .iter()
                .map(|c| format!("{}: {:?}", c.name, c.ty))
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::int("id"),
            Column::float("price"),
            Column::str("name"),
        ])
    }

    #[test]
    fn index_lookup() {
        let s = schema();
        assert_eq!(s.index_of("price"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.expect_index("name"), 2);
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn expect_index_panics_with_context() {
        schema().expect_index("nope");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::new(vec![Column::int("a"), Column::int("a")]);
    }

    #[test]
    fn concat_joins_schemas() {
        let a = Schema::new(vec![Column::int("a")]);
        let b = Schema::new(vec![Column::int("b"), Column::float("c")]);
        let ab = a.concat(&b);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.index_of("c"), Some(2));
    }

    #[test]
    fn validates_rows() {
        let s = schema();
        assert!(s.validates(&[Value::Int(1), Value::Float(2.0), Value::str("x")]));
        assert!(!s.validates(&[Value::Int(1), Value::Int(2), Value::str("x")]));
        assert!(!s.validates(&[Value::Int(1)]));
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![Column::int("a")]);
        assert_eq!(s.to_string(), "(a: Int)");
    }
}
