//! The catalog: base tables, their optimizer statistics, and sample sets.

use crate::column::ColumnData;
use crate::histogram::Histogram;
use crate::sample::{sample_size_for_ratio, SampleTable};
use crate::table::Table;
use std::collections::{BTreeMap, HashMap, HashSet};
use uaq_stats::Rng;

/// Number of histogram buckets kept per numeric column.
const HISTOGRAM_BUCKETS: usize = 64;

/// Per-table optimizer statistics (the `pg_statistic` stand-in).
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Equi-depth histogram per numeric column.
    histograms: HashMap<String, Histogram>,
    /// Exact distinct counts per column (numeric and string alike).
    distinct: HashMap<String, usize>,
}

impl TableStats {
    fn build(table: &Table) -> Self {
        let mut histograms = HashMap::new();
        let mut distinct = HashMap::new();
        for (idx, col) in table.schema().columns().iter().enumerate() {
            let mut seen: HashSet<String> = HashSet::new();
            let mut numeric: Vec<f64> = Vec::with_capacity(table.len());
            for row in table.rows() {
                let v = &row[idx];
                seen.insert(v.to_string());
                if let Some(x) = v.numeric() {
                    numeric.push(x);
                }
            }
            distinct.insert(col.name.clone(), seen.len());
            if !numeric.is_empty() {
                histograms.insert(
                    col.name.clone(),
                    Histogram::build(&numeric, HISTOGRAM_BUCKETS),
                );
            }
        }
        Self {
            histograms,
            distinct,
        }
    }

    pub fn histogram(&self, column: &str) -> Option<&Histogram> {
        self.histograms.get(column)
    }

    /// Distinct-value count of a column (0 if unknown).
    pub fn distinct(&self, column: &str) -> usize {
        self.distinct.get(column).copied().unwrap_or(0)
    }
}

/// The database: named base tables plus statistics.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
    stats: BTreeMap<String, TableStats>,
    /// Memoized [`Catalog::fingerprint`]; invalidated by [`Catalog::add_table`].
    fingerprint: std::sync::OnceLock<u64>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a table, rebuilding its statistics and dropping
    /// the memoized fingerprint (the only mutation a catalog supports, so
    /// resetting here keeps the cached digest trustworthy).
    pub fn add_table(&mut self, table: Table) {
        let stats = TableStats::build(&table);
        self.stats.insert(table.name().to_string(), stats);
        self.tables.insert(table.name().to_string(), table);
        self.fingerprint = std::sync::OnceLock::new();
    }

    pub fn table(&self, name: &str) -> &Table {
        self.tables
            .get(name)
            .unwrap_or_else(|| panic!("no table {name:?} in catalog"))
    }

    pub fn try_table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    pub fn stats(&self, name: &str) -> &TableStats {
        self.stats
            .get(name)
            .unwrap_or_else(|| panic!("no stats for table {name:?}"))
    }

    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of rows across all tables (for reporting).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// FNV-1a digest of everything the cost model reads from the catalog:
    /// per table (in name order) its name, row count, page count, and
    /// per-column distinct counts. Two catalogs with equal fingerprints
    /// yield identical `NodeCostContext`s for any plan, so cache layers
    /// keying on plan shape mix this in to stay safe when one process
    /// serves several databases.
    /// Memoized after the first call; [`Catalog::add_table`] (the only
    /// mutating operation) resets the memo, so a stale digest can never be
    /// served.
    pub fn fingerprint(&self) -> u64 {
        *self.fingerprint.get_or_init(|| {
            let mut h = Fnv1a::new();
            for (name, table) in &self.tables {
                h.eat(name.as_bytes());
                h.eat(&(table.len() as u64).to_le_bytes());
                h.eat(&(table.pages() as u64).to_le_bytes());
                let stats = &self.stats[name];
                for col in table.schema().columns() {
                    h.eat(&(stats.distinct(&col.name) as u64).to_le_bytes());
                }
            }
            h.finish()
        })
    }

    /// Draws `copies` independent sample tables per relation at the given
    /// sampling ratio. Empty relations are skipped — they cannot be sampled,
    /// and queries that do not touch them must still be predictable.
    pub fn draw_samples(&self, ratio: f64, copies: usize, rng: &mut Rng) -> SampleCatalog {
        assert!(copies > 0);
        let mut samples = BTreeMap::new();
        for table in self.tables.values() {
            if table.is_empty() {
                continue;
            }
            let n = sample_size_for_ratio(table.len(), ratio);
            let per_table: Vec<SampleTable> = (0..copies)
                .map(|c| SampleTable::draw(table, n, c, rng))
                .collect();
            samples.insert(table.name().to_string(), per_table);
        }
        let fingerprint = fingerprint_samples(&samples);
        SampleCatalog {
            ratio,
            samples,
            fingerprint,
        }
    }
}

/// Incremental FNV-1a — the digest shared by [`Catalog::fingerprint`] and
/// [`fingerprint_samples`], kept in one place so the two fingerprints can
/// never drift apart.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn eat(&mut self, bytes: &[u8]) {
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a digest of the full *contents* of a sample set: per relation (in
/// name order), per copy, every cell bit-exactly (floats by bit pattern,
/// matching [`crate::Value`] equality). Selectivity estimates are a pure
/// function of (plan, samples, catalog), so equal fingerprints here — plus
/// equal catalog fingerprints — make cached estimates safe to re-serve, up
/// to the 2⁻⁶⁴-probability collision a 64-bit non-cryptographic digest
/// admits. Computed once at draw time; sample tables are immutable
/// afterwards.
fn fingerprint_samples(samples: &BTreeMap<String, Vec<SampleTable>>) -> u64 {
    let mut h = Fnv1a::new();
    for (name, copies) in samples {
        h.eat(name.as_bytes());
        h.eat(&(copies.len() as u64).to_le_bytes());
        for sample in copies {
            h.eat(&(sample.len() as u64).to_le_bytes());
            for col in sample.table().columns() {
                match col.as_ref() {
                    ColumnData::Int(v) => {
                        h.eat(&[0u8]);
                        for x in v {
                            h.eat(&x.to_le_bytes());
                        }
                    }
                    ColumnData::Float(v) => {
                        h.eat(&[1u8]);
                        for x in v {
                            h.eat(&x.to_bits().to_le_bytes());
                        }
                    }
                    ColumnData::Str(v) => {
                        h.eat(&[2u8]);
                        for s in v {
                            h.eat(&(s.len() as u64).to_le_bytes());
                            h.eat(s.as_bytes());
                        }
                    }
                }
            }
        }
    }
    h.finish()
}

/// Materialized sample tables for every relation of a catalog.
#[derive(Debug, Clone)]
pub struct SampleCatalog {
    ratio: f64,
    samples: BTreeMap<String, Vec<SampleTable>>,
    /// Content digest, see [`fingerprint_samples`].
    fingerprint: u64,
}

impl SampleCatalog {
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Content digest of the whole sample set: catalogs with bit-identical
    /// sample tables — which produce bit-identical selectivity estimates
    /// for any plan — share a fingerprint. Cache layers keyed on (plan
    /// shape, literals) mix this in so a re-drawn sample set is not served
    /// stale estimates (up to a 64-bit digest collision; see
    /// [`fingerprint_samples`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of independent copies kept per relation.
    pub fn copies(&self) -> usize {
        self.samples.values().next().map_or(0, Vec::len)
    }

    /// Whether any sample tables were drawn for `relation`. Empty base
    /// relations are skipped at draw time, so a plan scanning one would
    /// panic in [`Self::sample`] — validators check this first.
    pub fn has_relation(&self, relation: &str) -> bool {
        self.samples
            .get(relation)
            .is_some_and(|copies| !copies.is_empty())
    }

    /// The `copy`-th independent sample of `relation` (falls back to copy 0
    /// if fewer copies exist than requested — the paper's multi-sample trick
    /// is an optimisation, not a requirement).
    pub fn sample(&self, relation: &str, copy: usize) -> &SampleTable {
        let copies = self
            .samples
            .get(relation)
            .unwrap_or_else(|| panic!("no samples for relation {relation:?}"));
        copies.get(copy).unwrap_or(&copies[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::int("id"), Column::str("tag")]);
        let rows = (0..500)
            .map(|i| vec![Value::Int(i % 50), Value::str(format!("t{}", i % 5))])
            .collect();
        c.add_table(Table::new("r", schema, rows));
        c
    }

    #[test]
    fn stats_distinct_counts() {
        let c = catalog();
        let s = c.stats("r");
        assert_eq!(s.distinct("id"), 50);
        assert_eq!(s.distinct("tag"), 5);
        assert_eq!(s.distinct("missing"), 0);
    }

    #[test]
    fn sample_fingerprint_tracks_contents() {
        use uaq_stats::Rng;
        let c = catalog();
        // Same seed ⇒ same draws ⇒ same fingerprint.
        let a = c.draw_samples(0.1, 2, &mut Rng::new(9));
        let b = c.draw_samples(0.1, 2, &mut Rng::new(9));
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Different seed ⇒ different rows ⇒ different fingerprint.
        let d = c.draw_samples(0.1, 2, &mut Rng::new(10));
        assert_ne!(a.fingerprint(), d.fingerprint());
        // Clones share contents and fingerprint.
        assert_eq!(a.clone().fingerprint(), a.fingerprint());
    }

    #[test]
    fn histogram_only_for_numeric() {
        let c = catalog();
        let s = c.stats("r");
        assert!(s.histogram("id").is_some());
        assert!(s.histogram("tag").is_none());
    }

    #[test]
    #[should_panic(expected = "no table")]
    fn missing_table_panics() {
        catalog().table("nope");
    }

    #[test]
    fn sample_catalog_shape() {
        let c = catalog();
        let mut rng = Rng::new(10);
        let sc = c.draw_samples(0.1, 2, &mut rng);
        assert_eq!(sc.copies(), 2);
        assert!((sc.ratio() - 0.1).abs() < 1e-12);
        assert_eq!(sc.sample("r", 0).len(), 50);
        assert_eq!(sc.sample("r", 1).len(), 50);
        // Requesting a copy beyond what exists falls back to copy 0.
        assert_eq!(sc.sample("r", 7).copy(), 0);
    }

    #[test]
    fn sample_size_capped_reasonably() {
        let mut c = Catalog::new();
        let schema = Schema::new(vec![Column::int("id")]);
        let rows = (0..6).map(|i| vec![Value::Int(i)]).collect();
        c.add_table(Table::new("tiny", schema, rows));
        let mut rng = Rng::new(1);
        let sc = c.draw_samples(0.01, 1, &mut rng);
        // Floor of 30 steps, capped at |R| = 6.
        assert_eq!(sc.sample("tiny", 0).len(), 6);
    }

    #[test]
    fn total_rows() {
        assert_eq!(catalog().total_rows(), 500);
    }

    #[test]
    fn fingerprint_tracks_cost_model_inputs() {
        let base = catalog();
        assert_eq!(base.fingerprint(), catalog().fingerprint(), "deterministic");

        // More rows ⇒ different cardinalities ⇒ different fingerprint.
        let mut bigger = catalog();
        let schema = Schema::new(vec![Column::int("id")]);
        bigger.add_table(Table::new(
            "extra",
            schema,
            (0..10).map(|i| vec![Value::Int(i)]).collect(),
        ));
        assert_ne!(base.fingerprint(), bigger.fingerprint());

        // Same table sizes but different distinct counts (key densities
        // diverge) ⇒ different fingerprint.
        let make = |modulus: i64| {
            let mut c = Catalog::new();
            c.add_table(Table::new(
                "t",
                Schema::new(vec![Column::int("k")]),
                (0..100).map(|i| vec![Value::Int(i % modulus)]).collect(),
            ));
            c
        };
        assert_ne!(make(5).fingerprint(), make(20).fingerprint());
    }
}
