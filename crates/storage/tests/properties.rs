//! Property-based tests for the storage substrate.

use proptest::prelude::*;
use uaq_stats::Rng;
use uaq_storage::{
    sample_size_for_ratio, Catalog, Column, ColumnData, ColumnRef, Histogram, SampleTable, Schema,
    Table, Value,
};

fn table_of(values: &[i64]) -> Table {
    let schema = Schema::new(vec![Column::int("v")]);
    let rows = values.iter().map(|&v| vec![Value::Int(v)]).collect();
    Table::new("t", schema, rows)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // ---- Histogram ----

    #[test]
    fn histogram_fraction_below_is_monotone_and_bounded(
        values in prop::collection::vec(-1000.0..1000.0f64, 1..500),
        buckets in 1usize..64,
    ) {
        let h = Histogram::build(&values, buckets);
        let mut prev = -0.1;
        for i in 0..=40 {
            let x = -1100.0 + i as f64 * 60.0;
            let f = h.fraction_below(x);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
    }

    #[test]
    fn histogram_range_additivity(
        values in prop::collection::vec(0.0..100.0f64, 2..400),
        a in 0.0..100.0f64,
        b in 0.0..100.0f64,
        c in 0.0..100.0f64,
    ) {
        let h = Histogram::build(&values, 32);
        let mut cuts = [a, b, c];
        cuts.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let [lo, mid, hi] = cuts;
        // fraction mass over adjacent half-open ranges adds up.
        let left = h.fraction_below(mid) - h.fraction_below(lo);
        let right = h.fraction_below(hi) - h.fraction_below(mid);
        let total = h.fraction_below(hi) - h.fraction_below(lo);
        prop_assert!((left + right - total).abs() < 1e-9);
        prop_assert!(left >= -1e-12 && right >= -1e-12);
    }

    #[test]
    fn histogram_quantile_within_domain(
        values in prop::collection::vec(-50.0..50.0f64, 1..300),
        p in 0.0..1.0f64,
    ) {
        let h = Histogram::build(&values, 16);
        let q = h.quantile(p);
        prop_assert!(q >= h.min() - 1e-9 && q <= h.max() + 1e-9);
    }

    #[test]
    fn histogram_distinct_and_total(values in prop::collection::vec(-20i64..20, 1..300)) {
        let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
        let h = Histogram::build(&floats, 16);
        prop_assert_eq!(h.total(), values.len());
        let mut uniq = values.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(h.distinct(), uniq.len());
    }

    // ---- Sampling ----

    #[test]
    fn sample_rows_come_from_base(values in prop::collection::vec(-100i64..100, 1..200), seed in any::<u64>()) {
        let base = table_of(&values);
        let mut rng = Rng::new(seed);
        let s = SampleTable::draw(&base, 37.min(values.len().max(1)), 0, &mut rng);
        for row in s.table().rows() {
            prop_assert!(values.contains(&row[0].as_int()));
        }
        prop_assert_eq!(s.base_rows(), values.len());
    }

    #[test]
    fn sample_size_respects_floor_and_cap(rows in 1usize..1_000_000, ratio in 0.0001..0.5f64) {
        let n = sample_size_for_ratio(rows, ratio);
        prop_assert!(n >= 30.min(rows));
        prop_assert!(n <= rows.max(30));
        // Target honored once above the floor.
        let target = (rows as f64 * ratio).round() as usize;
        if target >= 30 && target <= rows {
            prop_assert_eq!(n, target);
        }
    }

    // ---- Catalog stats ----

    #[test]
    fn catalog_stats_agree_with_data(values in prop::collection::vec(0i64..50, 1..300)) {
        let mut catalog = Catalog::new();
        catalog.add_table(table_of(&values));
        let stats = catalog.stats("t");
        let mut uniq = values.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(stats.distinct("v"), uniq.len());
        let h = stats.histogram("v").expect("numeric column");
        prop_assert_eq!(h.total(), values.len());
        prop_assert_eq!(h.min(), *values.iter().min().expect("non-empty") as f64);
        prop_assert_eq!(h.max(), *values.iter().max().expect("non-empty") as f64);
    }

    // ---- ColumnRef copy-on-write ----

    // Copy-on-write must be *semantically invisible*: a random interleaving
    // of share (handle clone) and mutate (push through `make_mut`) steps
    // applied to `ColumnRef` handles produces exactly the column contents
    // that eagerly-cloned `ColumnData` models produce, and a mutation
    // through one handle is never observable through any other.
    #[test]
    fn column_ref_cow_equals_eager_cloning(
        initial in prop::collection::vec(-100i64..100, 0..40),
        ops in prop::collection::vec((0i64..2, 0usize..8, -100i64..100), 1..60),
    ) {
        let data = ColumnData::Int(initial.clone());
        let mut handles: Vec<ColumnRef> = vec![ColumnRef::new(data.clone())];
        let mut models: Vec<ColumnData> = vec![data];
        for &(kind, target, value) in &ops {
            let i = target % handles.len();
            match kind {
                // Share: clone the handle (O(1), same payload) — the model
                // clones its data eagerly, the semantics CoW must match.
                0 => {
                    handles.push(handles[i].clone());
                    models.push(models[i].clone());
                }
                // Mutate: push through the CoW escape hatch — the model
                // mutates its own eager copy.
                _ => {
                    handles[i].make_mut().push(&Value::Int(value));
                    models[i].push(&Value::Int(value));
                }
            }
            // Every handle tracks its model after every step: mutations
            // never leak into (or from) sharing handles.
            for (h, m) in handles.iter().zip(&models) {
                prop_assert_eq!(h.as_ref(), m);
            }
        }
    }
}

/// The sharing side of CoW, deterministically: handles stay on one
/// allocation until the first mutation, and only the mutated handle
/// detaches.
#[test]
fn column_ref_detaches_exactly_on_mutation() {
    let a = ColumnRef::new(ColumnData::Int(vec![1, 2, 3]));
    let mut b = a.clone();
    let c = a.clone();
    assert!(a.ptr_eq(&b) && a.ptr_eq(&c));
    assert_eq!(a.strong_count(), 3);

    b.make_mut().push(&Value::Int(4));
    assert!(!a.ptr_eq(&b), "mutated handle must have detached");
    assert!(a.ptr_eq(&c), "bystander handles keep sharing");
    assert_eq!(a.strong_count(), 2);
    assert_eq!(b.strong_count(), 1);
    assert_eq!(a.len(), 3);
    assert_eq!(b.len(), 4);

    // An unshared handle mutates in place — no allocation churn.
    let mut lone = ColumnRef::new(ColumnData::Int(vec![9]));
    let before = format!("{:p}", lone.as_ref() as *const ColumnData);
    lone.make_mut().push(&Value::Int(10));
    let after = format!("{:p}", lone.as_ref() as *const ColumnData);
    assert_eq!(before, after, "sole owner must not copy");
}
