//! Simulated hardware profiles — the substitution for the paper's PC1/PC2
//! machines (see DESIGN.md).
//!
//! A profile is the *ground truth* the predictor never sees: the true
//! distribution of each cost unit. The paper models the `c`'s as random
//! system state ("the value of `c_r` may vary ... depending on where the
//! pages are located on disk", §1); we realise that by drawing one value per
//! unit per query run.

use crate::units::{CostUnit, UnitDists, UnitValues};
use uaq_stats::{Normal, Rng};

/// Ground-truth hardware behaviour.
#[derive(Debug, Clone)]
pub struct HardwareProfile {
    name: &'static str,
    true_units: UnitDists,
}

impl HardwareProfile {
    pub fn new(name: &'static str, true_units: UnitDists) -> Self {
        Self { name, true_units }
    }

    /// The paper's PC1: dual-core 1.86 GHz, 4 GB RAM — slower CPU, slower
    /// and noisier disk. Unit means in milliseconds per primitive.
    pub fn pc1() -> Self {
        Self::new(
            "PC1",
            UnitDists([
                normal_rel(0.080, 0.06),    // c_s: seq page
                normal_rel(0.900, 0.12),    // c_r: random page
                normal_rel(0.000_40, 0.05), // c_t: tuple CPU
                normal_rel(0.000_90, 0.07), // c_i: index CPU
                normal_rel(0.000_15, 0.05), // c_o: primitive op
            ]),
        )
    }

    /// The paper's PC2: 8-core 2.4 GHz, 16 GB RAM — faster, steadier.
    pub fn pc2() -> Self {
        Self::new(
            "PC2",
            UnitDists([
                normal_rel(0.050, 0.05),
                normal_rel(0.550, 0.10),
                normal_rel(0.000_18, 0.04),
                normal_rel(0.000_40, 0.05),
                normal_rel(0.000_07, 0.04),
            ]),
        )
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The true unit distributions (test/experiment introspection only — the
    /// predictor must use calibrated estimates instead).
    pub fn true_units(&self) -> &UnitDists {
        &self.true_units
    }

    /// Draws one concrete system state: a value per unit, truncated positive.
    pub fn draw(&self, rng: &mut Rng) -> UnitValues {
        let mut values = UnitValues::default();
        for u in CostUnit::ALL {
            let dist = self.true_units[u];
            let mut v = dist.sample(rng);
            // Means sit many σ above zero; truncation is a safety net.
            for _ in 0..8 {
                if v > 0.0 {
                    break;
                }
                v = dist.sample(rng);
            }
            values[u] = v.max(dist.mean() * 1e-3);
        }
        values
    }
}

/// `N(mean, (rel_std · mean)²)`.
fn normal_rel(mean: f64, rel_std: f64) -> Normal {
    let sd = mean * rel_std;
    Normal::new(mean, sd * sd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_stats::Welford;

    #[test]
    fn pc1_is_slower_than_pc2() {
        let pc1 = HardwareProfile::pc1();
        let pc2 = HardwareProfile::pc2();
        for u in CostUnit::ALL {
            assert!(
                pc1.true_units()[u].mean() > pc2.true_units()[u].mean(),
                "{u}: PC1 should be slower"
            );
        }
    }

    #[test]
    fn random_io_costs_more_than_sequential() {
        for p in [HardwareProfile::pc1(), HardwareProfile::pc2()] {
            assert!(
                p.true_units()[CostUnit::RandPage].mean()
                    > 5.0 * p.true_units()[CostUnit::SeqPage].mean()
            );
        }
    }

    #[test]
    fn draws_are_positive_and_match_distribution() {
        let p = HardwareProfile::pc1();
        let mut rng = Rng::new(42);
        let mut w = Welford::new();
        for _ in 0..50_000 {
            let v = p.draw(&mut rng);
            assert!(v[CostUnit::RandPage] > 0.0);
            w.push(v[CostUnit::RandPage]);
        }
        let truth = p.true_units()[CostUnit::RandPage];
        assert!((w.mean() - truth.mean()).abs() / truth.mean() < 0.01);
        assert!((w.sample_variance() - truth.var()).abs() / truth.var() < 0.05);
    }

    #[test]
    fn draws_vary_between_runs() {
        let p = HardwareProfile::pc2();
        let mut rng = Rng::new(7);
        let a = p.draw(&mut rng);
        let b = p.draw(&mut rng);
        assert_ne!(a, b);
    }
}
