//! Logical cost functions — the six canonical forms C1'–C6' of §4.1, their
//! evaluation, and their asymptotic distributions under normal selectivity
//! estimates (§5.2.1).
//!
//! Written in terms of selectivities (the primed forms): the coefficients `b`
//! already absorb the `|R|` scale factors, so a fitted function maps
//! selectivities straight to primitive-operation counts.

use uaq_stats::{lemma4_var, lemma8_var, Normal};

/// Which selectivity variables a cost function reads.
///
/// * Scans read their **own** output selectivity `X` (C1'/C2').
/// * Unary operators read their child's selectivity `X_l` (C3'/C4').
/// * Binary operators read both children's selectivities (C5'/C6').
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostForm {
    /// C1': `f = b0`.
    Const,
    /// C2': `f = b0·X + b1` — linear in the operator's own selectivity.
    LinearOut,
    /// C3': `f = b0·X_l + b1` — linear in the left-child selectivity.
    LinearLeft,
    /// C4': `f = b0·X_l² + b1·X_l + b2` — quadratic in the left-child
    /// selectivity (the `N log N` approximation).
    QuadLeft,
    /// C5': `f = b0·X_l + b1·X_r + b2` — linear in both child selectivities.
    LinearBoth,
    /// C6': `f = b0·X_l·X_r + b1·X_l + b2·X_r + b3` — with the product term
    /// of a nested-loop join.
    ProductBoth,
}

impl CostForm {
    /// Number of coefficients.
    pub fn arity(&self) -> usize {
        match self {
            CostForm::Const => 1,
            CostForm::LinearOut | CostForm::LinearLeft => 2,
            CostForm::QuadLeft | CostForm::LinearBoth => 3,
            CostForm::ProductBoth => 4,
        }
    }

    /// Does the form read the operator's own output selectivity?
    pub fn uses_own(&self) -> bool {
        matches!(self, CostForm::LinearOut)
    }

    /// Does the form read the right child's selectivity?
    pub fn uses_right(&self) -> bool {
        matches!(self, CostForm::LinearBoth | CostForm::ProductBoth)
    }

    /// Design-matrix row for a given variable assignment; column order
    /// matches the coefficient order of [`FittedCost::eval`].
    pub fn design_row(&self, xl: f64, xr: f64, own: f64) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.arity());
        self.design_row_into(xl, xr, own, &mut out);
        out
    }

    /// Appends the design row to `out` without allocating (hot path of the
    /// grid fits, which assemble thousands of rows per prediction).
    pub fn design_row_into(&self, xl: f64, xr: f64, own: f64, out: &mut Vec<f64>) {
        match self {
            CostForm::Const => out.push(1.0),
            CostForm::LinearOut => out.extend([own, 1.0]),
            CostForm::LinearLeft => out.extend([xl, 1.0]),
            CostForm::QuadLeft => out.extend([xl * xl, xl, 1.0]),
            CostForm::LinearBoth => out.extend([xl, xr, 1.0]),
            CostForm::ProductBoth => out.extend([xl * xr, xl, xr, 1.0]),
        }
    }
}

/// A fitted logical cost function: a form plus its coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct FittedCost {
    pub form: CostForm,
    /// Coefficients in the order of [`CostForm::design_row`]; trailing
    /// entries beyond the form's arity are zero.
    pub b: [f64; 4],
}

impl FittedCost {
    pub fn new(form: CostForm, coeffs: &[f64]) -> Self {
        assert_eq!(coeffs.len(), form.arity(), "coefficient arity mismatch");
        let mut b = [0.0; 4];
        b[..coeffs.len()].copy_from_slice(coeffs);
        Self { form, b }
    }

    /// A constant function (used for zero-count unit slots too).
    pub fn constant(value: f64) -> Self {
        Self::new(CostForm::Const, &[value])
    }

    /// Evaluates the function at concrete selectivities.
    pub fn eval(&self, xl: f64, xr: f64, own: f64) -> f64 {
        let b = &self.b;
        match self.form {
            CostForm::Const => b[0],
            CostForm::LinearOut => b[0] * own + b[1],
            CostForm::LinearLeft => b[0] * xl + b[1],
            CostForm::QuadLeft => b[0] * xl * xl + b[1] * xl + b[2],
            CostForm::LinearBoth => b[0] * xl + b[1] * xr + b[2],
            CostForm::ProductBoth => b[0] * xl * xr + b[1] * xl + b[2] * xr + b[3],
        }
    }

    /// Mean and variance of `f(X)` under normal selectivity estimates —
    /// the asymptotic distributions of §5.2.1 (exact moments; the *normal
    /// approximation* `f^N ~ N(E[f], Var[f])` is Theorems 1 and 5).
    ///
    /// `xl`/`xr` are the child-selectivity distributions (ignored where
    /// unused); `own` is the operator's own output-selectivity distribution.
    /// Binary forms assume `X_l ⊥ X_r` (Lemma 2 + the multi-sample trick).
    pub fn mean_var(&self, xl: &Normal, xr: &Normal, own: &Normal) -> (f64, f64) {
        let b = &self.b;
        match self.form {
            CostForm::Const => (b[0], 0.0),
            CostForm::LinearOut => (b[0] * own.mean() + b[1], b[0] * b[0] * own.var()),
            CostForm::LinearLeft => (b[0] * xl.mean() + b[1], b[0] * b[0] * xl.var()),
            CostForm::QuadLeft => {
                // E[f] = b0·E[X²] + b1·E[X] + b2 (Table 3), Var by Lemma 4.
                let mean = b[0] * xl.raw_moment(2) + b[1] * xl.mean() + b[2];
                (mean, lemma4_var(b[0], b[1], xl))
            }
            CostForm::LinearBoth => (
                b[0] * xl.mean() + b[1] * xr.mean() + b[2],
                b[0] * b[0] * xl.var() + b[1] * b[1] * xr.var(),
            ),
            CostForm::ProductBoth => {
                let mean =
                    b[0] * xl.mean() * xr.mean() + b[1] * xl.mean() + b[2] * xr.mean() + b[3];
                (mean, lemma8_var(b[0], b[1], b[2], xl, xr))
            }
        }
    }

    /// Decomposition into selectivity monomials with coefficients — the raw
    /// material for the covariance algebra of §5.3. `Var::One` is the
    /// constant term.
    pub fn terms(&self) -> Vec<(SelTerm, f64)> {
        let b = &self.b;
        match self.form {
            CostForm::Const => vec![(SelTerm::One, b[0])],
            CostForm::LinearOut => vec![(SelTerm::Own, b[0]), (SelTerm::One, b[1])],
            CostForm::LinearLeft => vec![(SelTerm::Left, b[0]), (SelTerm::One, b[1])],
            CostForm::QuadLeft => vec![
                (SelTerm::LeftSq, b[0]),
                (SelTerm::Left, b[1]),
                (SelTerm::One, b[2]),
            ],
            CostForm::LinearBoth => vec![
                (SelTerm::Left, b[0]),
                (SelTerm::Right, b[1]),
                (SelTerm::One, b[2]),
            ],
            CostForm::ProductBoth => vec![
                (SelTerm::LeftRight, b[0]),
                (SelTerm::Left, b[1]),
                (SelTerm::Right, b[2]),
                (SelTerm::One, b[3]),
            ],
        }
    }
}

/// A selectivity monomial appearing in a cost function, relative to the
/// operator that owns the function (`Z ∈ {1, X, X_l, X_l², X_r, X_l X_r}`,
/// §5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelTerm {
    /// Constant 1.
    One,
    /// The operator's own output selectivity `X`.
    Own,
    /// Left child selectivity `X_l`.
    Left,
    /// `X_l²`.
    LeftSq,
    /// Right child selectivity `X_r`.
    Right,
    /// `X_l · X_r`.
    LeftRight,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_stats::Rng;

    #[test]
    fn eval_matches_design_row() {
        let mut rng = Rng::new(9);
        for form in [
            CostForm::Const,
            CostForm::LinearOut,
            CostForm::LinearLeft,
            CostForm::QuadLeft,
            CostForm::LinearBoth,
            CostForm::ProductBoth,
        ] {
            let coeffs: Vec<f64> = (0..form.arity()).map(|_| rng.f64() * 10.0).collect();
            let f = FittedCost::new(form, &coeffs);
            for _ in 0..20 {
                let (xl, xr, own) = (rng.f64(), rng.f64(), rng.f64());
                let via_row: f64 = form
                    .design_row(xl, xr, own)
                    .iter()
                    .zip(&coeffs)
                    .map(|(d, c)| d * c)
                    .sum();
                assert!((f.eval(xl, xr, own) - via_row).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mean_var_against_monte_carlo_all_forms() {
        let xl = Normal::new(0.3, 0.004);
        let xr = Normal::new(0.6, 0.009);
        let own = Normal::new(0.2, 0.002);
        let mut rng = Rng::new(321);
        for (form, coeffs) in [
            (CostForm::Const, vec![5.0]),
            (CostForm::LinearOut, vec![100.0, 3.0]),
            (CostForm::LinearLeft, vec![40.0, 1.0]),
            (CostForm::QuadLeft, vec![30.0, 10.0, 2.0]),
            (CostForm::LinearBoth, vec![20.0, 15.0, 1.0]),
            (CostForm::ProductBoth, vec![50.0, 5.0, 7.0, 0.5]),
        ] {
            let f = FittedCost::new(form, &coeffs);
            let (am, av) = f.mean_var(&xl, &xr, &own);
            let n = 300_000;
            let mut sum = 0.0;
            let mut sumsq = 0.0;
            for _ in 0..n {
                let v = f.eval(
                    xl.sample(&mut rng),
                    xr.sample(&mut rng),
                    own.sample(&mut rng),
                );
                sum += v;
                sumsq += v * v;
            }
            let mm = sum / n as f64;
            let mv = sumsq / n as f64 - mm * mm;
            assert!(
                (am - mm).abs() / am.abs().max(1e-9) < 0.01,
                "{form:?}: mean analytic {am} vs mc {mm}"
            );
            if av > 0.0 {
                assert!(
                    (av - mv).abs() / av < 0.05,
                    "{form:?}: var analytic {av} vs mc {mv}"
                );
            } else {
                assert!(mv.abs() < 1e-9);
            }
        }
    }

    #[test]
    fn terms_reconstruct_eval() {
        let f = FittedCost::new(CostForm::ProductBoth, &[2.0, 3.0, 4.0, 5.0]);
        let (xl, xr) = (0.25, 0.5);
        let via_terms: f64 = f
            .terms()
            .iter()
            .map(|(t, c)| {
                c * match t {
                    SelTerm::One => 1.0,
                    SelTerm::Own => unreachable!(),
                    SelTerm::Left => xl,
                    SelTerm::LeftSq => xl * xl,
                    SelTerm::Right => xr,
                    SelTerm::LeftRight => xl * xr,
                }
            })
            .sum();
        assert!((f.eval(xl, xr, 0.0) - via_terms).abs() < 1e-12);
    }

    #[test]
    fn constant_helper() {
        let f = FittedCost::constant(7.5);
        assert_eq!(f.eval(0.1, 0.9, 0.4), 7.5);
        let (m, v) = f.mean_var(
            &Normal::new(0.5, 0.1),
            &Normal::new(0.5, 0.1),
            &Normal::new(0.5, 0.1),
        );
        assert_eq!((m, v), (7.5, 0.0));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_rejected() {
        FittedCost::new(CostForm::QuadLeft, &[1.0, 2.0]);
    }
}
