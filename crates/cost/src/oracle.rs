//! The oracle cost model — the substrate's stand-in for PostgreSQL's
//! internal cost functions.
//!
//! For every operator it maps selectivities to the five primitive-operation
//! counts `(n_s, n_r, n_t, n_i, n_o)` of Eq. 1. Two consumers:
//!
//! * the **simulated runtime** evaluates it at *true* selectivities to
//!   produce actual execution times (ground truth);
//! * the **predictor** treats it as a black box, probing it on a selectivity
//!   grid and fitting the logical forms C1'–C6' (§4.2) — it never reads the
//!   constants below directly. The `N log N` sort term is intentionally not
//!   representable by any form, reproducing the paper's `g`-approximation
//!   error.

use crate::logical::CostForm;
use crate::units::{CostUnit, UnitCounts};
use uaq_engine::{NodeId, Op, Plan};
use uaq_storage::Catalog;

/// Tuple-construction cost charged per emitted output row (in `c_t` units):
/// result tuples are formed, copied, and pushed to the consumer, which costs
/// several times a plain tuple touch.
const EMIT_TUPLE_FACTOR: f64 = 4.0;
/// Primitive operations per emitted output row (in `c_o` units).
const EMIT_OPS: f64 = 2.0;
/// Hash-build cost per inner tuple (in `c_o` units).
const HASH_BUILD_OPS: f64 = 2.0;
/// Hash-probe cost per outer tuple.
const HASH_PROBE_OPS: f64 = 1.5;
/// Per-tuple ops charged by an aggregate on top of its per-function work.
const AGG_BASE_OPS: f64 = 1.0;

/// Everything the oracle needs to know about one operator, independent of
/// any concrete execution: static table geometry plus the `|R|` products
/// that convert selectivities to cardinalities.
#[derive(Debug, Clone)]
pub struct NodeCostContext {
    kind: KindParams,
    /// `∏ |R|` over the left child's leaf tables (0 for scans).
    left_leaf_product: f64,
    /// `∏ |R|` over the right child's leaf tables (0 for unary operators).
    right_leaf_product: f64,
    /// `∏ |R|` over this operator's own leaf tables.
    own_leaf_product: f64,
}

#[derive(Debug, Clone)]
enum KindParams {
    SeqScan {
        rows: f64,
        pages: f64,
        pred_ops: f64,
    },
    IndexScan {
        rows: f64,
        pred_ops: f64,
    },
    Filter {
        pred_ops: f64,
    },
    Sort,
    Materialize {
        tuples_per_page: f64,
    },
    HashJoin {
        key_density: f64,
    },
    NestedLoopJoin {
        key_density: f64,
    },
    HashAggregate {
        ops_per_tuple: f64,
    },
}

impl NodeCostContext {
    /// Builds the context for one plan node.
    pub fn build(plan: &Plan, id: NodeId, catalog: &Catalog) -> Self {
        let children = plan.op(id).children();
        let left_leaf_product = children
            .first()
            .map_or(0.0, |&c| plan.leaf_cardinality_product(c, catalog));
        let right_leaf_product = children
            .get(1)
            .map_or(0.0, |&c| plan.leaf_cardinality_product(c, catalog));
        let own_leaf_product = plan.leaf_cardinality_product(id, catalog);

        let kind = match plan.op(id) {
            Op::SeqScan { table, predicate } => {
                let t = catalog.table(table);
                KindParams::SeqScan {
                    rows: t.len() as f64,
                    pages: t.pages() as f64,
                    pred_ops: predicate.op_count().max(1) as f64,
                }
            }
            Op::IndexScan {
                table, predicate, ..
            } => KindParams::IndexScan {
                rows: catalog.table(table).len() as f64,
                pred_ops: predicate.op_count().max(1) as f64,
            },
            Op::Filter { predicate, .. } => KindParams::Filter {
                pred_ops: predicate.op_count().max(1) as f64,
            },
            Op::Sort { .. } => KindParams::Sort,
            Op::Materialize { .. } => KindParams::Materialize {
                tuples_per_page: uaq_storage::DEFAULT_TUPLES_PER_PAGE as f64,
            },
            Op::HashJoin { .. } => KindParams::HashJoin {
                key_density: uaq_engine::cardest::join_key_density(plan, id, catalog),
            },
            Op::NestedLoopJoin { .. } => KindParams::NestedLoopJoin {
                key_density: uaq_engine::cardest::join_key_density(plan, id, catalog),
            },
            Op::HashAggregate { aggs, .. } => KindParams::HashAggregate {
                ops_per_tuple: AGG_BASE_OPS + aggs.len() as f64,
            },
        };
        Self {
            kind,
            left_leaf_product,
            right_leaf_product,
            own_leaf_product,
        }
    }

    /// Contexts for every node of a plan, indexed by `NodeId`.
    pub fn build_all(plan: &Plan, catalog: &Catalog) -> Vec<NodeCostContext> {
        plan.node_ids()
            .map(|id| Self::build(plan, id, catalog))
            .collect()
    }

    /// Left-child cardinality for a left-child selectivity.
    pub fn nl(&self, xl: f64) -> f64 {
        xl * self.left_leaf_product
    }

    /// Right-child cardinality for a right-child selectivity.
    pub fn nr(&self, xr: f64) -> f64 {
        xr * self.right_leaf_product
    }

    /// Own output cardinality for an own selectivity.
    pub fn m(&self, own: f64) -> f64 {
        own * self.own_leaf_product
    }

    /// `∏|R|` of the operator's own subtree (selectivity denominator).
    pub fn own_leaf_product(&self) -> f64 {
        self.own_leaf_product
    }

    /// The counting functions: selectivities in, primitive counts out
    /// (Eq. 1's `n` vector as a function of `X`, §2).
    pub fn counts(&self, xl: f64, xr: f64, own: f64) -> UnitCounts {
        let mut n = UnitCounts::default();
        match &self.kind {
            KindParams::SeqScan {
                rows,
                pages,
                pred_ops,
            } => {
                n[CostUnit::SeqPage] = *pages;
                // Touch every tuple, plus construct every emitted tuple
                // (PostgreSQL charges cpu_tuple_cost per output row).
                n[CostUnit::CpuTuple] = rows + EMIT_TUPLE_FACTOR * self.m(own);
                n[CostUnit::CpuOp] = pred_ops * rows + EMIT_OPS * self.m(own);
            }
            KindParams::IndexScan { rows, pred_ops } => {
                let m = self.m(own);
                // One random page fetch and one index-entry visit per
                // qualifying tuple, plus the B-tree descent.
                n[CostUnit::RandPage] = m;
                n[CostUnit::CpuIndex] = m + (rows + 1.0).log2();
                n[CostUnit::CpuTuple] = (1.0 + EMIT_TUPLE_FACTOR) * m;
                n[CostUnit::CpuOp] = (pred_ops + EMIT_OPS) * m;
            }
            KindParams::Filter { pred_ops } => {
                let nl = self.nl(xl);
                n[CostUnit::CpuTuple] = nl;
                n[CostUnit::CpuOp] = pred_ops * nl;
            }
            KindParams::Sort => {
                let nl = self.nl(xl);
                n[CostUnit::CpuTuple] = nl;
                // The paper's canonical non-linear example: a·N·log N.
                n[CostUnit::CpuOp] = nl * nl.max(2.0).log2();
            }
            KindParams::Materialize { tuples_per_page } => {
                let nl = self.nl(xl);
                n[CostUnit::CpuTuple] = nl;
                n[CostUnit::SeqPage] = nl / tuples_per_page;
            }
            KindParams::HashJoin { key_density } => {
                let (nl, nr) = (self.nl(xl), self.nr(xr));
                // Expected matches ≈ N_l · N_r · density: emitted join tuples
                // must be constructed — the C6'-shaped product term.
                let emitted = nl * nr * key_density;
                n[CostUnit::CpuTuple] = nl + nr + EMIT_TUPLE_FACTOR * emitted;
                n[CostUnit::CpuOp] = HASH_PROBE_OPS * nl + HASH_BUILD_OPS * nr + EMIT_OPS * emitted;
            }
            KindParams::NestedLoopJoin { key_density } => {
                let (nl, nr) = (self.nl(xl), self.nr(xr));
                let emitted = nl * nr * key_density;
                n[CostUnit::CpuTuple] = nl + nl * nr + EMIT_TUPLE_FACTOR * emitted;
                n[CostUnit::CpuOp] = nl * nr + EMIT_OPS * emitted;
            }
            KindParams::HashAggregate { ops_per_tuple } => {
                let nl = self.nl(xl);
                n[CostUnit::CpuTuple] = nl;
                n[CostUnit::CpuOp] = ops_per_tuple * nl;
            }
        }
        n
    }

    /// The logical form the predictor should fit for one cost unit — `None`
    /// when the count is identically zero for this operator kind (§4.1's
    /// form assignment).
    pub fn form_for(&self, unit: CostUnit) -> Option<CostForm> {
        use CostUnit::*;
        match (&self.kind, unit) {
            (KindParams::SeqScan { .. }, SeqPage) => Some(CostForm::Const),
            (KindParams::SeqScan { .. }, CpuTuple | CpuOp) => Some(CostForm::LinearOut),
            (KindParams::SeqScan { .. }, _) => None,
            (KindParams::IndexScan { .. }, RandPage | CpuIndex | CpuTuple | CpuOp) => {
                Some(CostForm::LinearOut)
            }
            (KindParams::IndexScan { .. }, _) => None,
            (KindParams::Filter { .. }, CpuTuple | CpuOp) => Some(CostForm::LinearLeft),
            (KindParams::Filter { .. }, _) => None,
            (KindParams::Sort, CpuTuple) => Some(CostForm::LinearLeft),
            (KindParams::Sort, CpuOp) => Some(CostForm::QuadLeft),
            (KindParams::Sort, _) => None,
            (KindParams::Materialize { .. }, SeqPage | CpuTuple) => Some(CostForm::LinearLeft),
            (KindParams::Materialize { .. }, _) => None,
            (KindParams::HashJoin { .. }, CpuTuple | CpuOp) => Some(CostForm::ProductBoth),
            (KindParams::HashJoin { .. }, _) => None,
            (KindParams::NestedLoopJoin { .. }, CpuTuple | CpuOp) => Some(CostForm::ProductBoth),
            (KindParams::NestedLoopJoin { .. }, _) => None,
            (KindParams::HashAggregate { .. }, CpuTuple | CpuOp) => Some(CostForm::LinearLeft),
            (KindParams::HashAggregate { .. }, _) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_engine::{PlanBuilder, Pred};
    use uaq_storage::{Column, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..640)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("x")]);
        let rows2 = (0..320).map(|i| vec![Value::Int(i % 10)]).collect();
        c.add_table(Table::new("u", s2, rows2));
        c
    }

    #[test]
    fn seq_scan_io_constant_but_tuple_cost_tracks_output() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::eq("a", Value::Int(1)));
        let plan = b.build(s);
        let ctx = NodeCostContext::build(&plan, s, &c);
        let n1 = ctx.counts(0.0, 0.0, 0.1);
        let n2 = ctx.counts(0.0, 0.0, 0.9);
        // Page I/O and predicate evaluation are selectivity-independent...
        assert_eq!(n1[CostUnit::SeqPage], 10.0); // 640 rows / 64 per page
        assert_eq!(n1[CostUnit::SeqPage], n2[CostUnit::SeqPage]);
        assert!(n1[CostUnit::CpuOp] < n2[CostUnit::CpuOp]);
        // ...but emitted tuples cost extra: 640 + 4·640·X.
        assert_eq!(n1[CostUnit::CpuTuple], 896.0);
        assert_eq!(n2[CostUnit::CpuTuple], 2944.0);
        assert_eq!(n1[CostUnit::RandPage], 0.0);
    }

    #[test]
    fn index_scan_counts_scale_with_own_selectivity() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.index_scan("t", "b", Pred::lt("b", Value::Int(64)));
        let plan = b.build(s);
        let ctx = NodeCostContext::build(&plan, s, &c);
        let lo = ctx.counts(0.0, 0.0, 0.1);
        let hi = ctx.counts(0.0, 0.0, 0.2);
        assert!((lo[CostUnit::RandPage] - 64.0).abs() < 1e-9);
        assert!((hi[CostUnit::RandPage] - 128.0).abs() < 1e-9);
        assert!(hi[CostUnit::CpuIndex] > lo[CostUnit::CpuIndex]);
    }

    #[test]
    fn join_counts_use_child_cardinalities() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let ctx = NodeCostContext::build(&plan, j, &c);
        // Xl = 0.5 of 640 = 320; Xr = 0.25 of 320 = 80. Key density: both
        // keys have 10 distinct values, so emitted ≈ 320·80/10 = 2560.
        let n = ctx.counts(0.5, 0.25, 0.0);
        assert!((n[CostUnit::CpuTuple] - (400.0 + 4.0 * 2560.0)).abs() < 1e-9);
        assert!(
            (n[CostUnit::CpuOp] - (1.5 * 320.0 + 2.0 * 80.0 + 2.0 * 2560.0)).abs() < 1e-9,
            "{}",
            n[CostUnit::CpuOp]
        );
    }

    #[test]
    fn nl_join_has_product_term() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.nl_join(l, r, "a", "x");
        let plan = b.build(j);
        let ctx = NodeCostContext::build(&plan, j, &c);
        let n = ctx.counts(0.5, 0.5, 0.0);
        // Nl = 320, Nr = 160 → pair ops = 320·160, plus 2 ops per emitted
        // tuple (key density 1/10 → 5120 emitted).
        assert!((n[CostUnit::CpuOp] - (51_200.0 + 2.0 * 5_120.0)).abs() < 1e-9);
    }

    #[test]
    fn sort_is_superlinear() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let srt = b.sort(s, vec![("b".into(), uaq_engine::SortOrder::Asc)]);
        let plan = b.build(srt);
        let ctx = NodeCostContext::build(&plan, srt, &c);
        let half = ctx.counts(0.5, 0.0, 0.0)[CostUnit::CpuOp];
        let full = ctx.counts(1.0, 0.0, 0.0)[CostUnit::CpuOp];
        assert!(
            full > 2.0 * half,
            "sort should be superlinear: {half} vs {full}"
        );
    }

    #[test]
    fn forms_match_kinds() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let srt = b.sort(j, vec![("b".into(), uaq_engine::SortOrder::Asc)]);
        let plan = b.build(srt);
        let ctxs = NodeCostContext::build_all(&plan, &c);
        assert_eq!(ctxs[l].form_for(CostUnit::SeqPage), Some(CostForm::Const));
        assert_eq!(ctxs[l].form_for(CostUnit::RandPage), None);
        assert_eq!(
            ctxs[j].form_for(CostUnit::CpuOp),
            Some(CostForm::ProductBoth)
        );
        assert_eq!(
            ctxs[srt].form_for(CostUnit::CpuOp),
            Some(CostForm::QuadLeft)
        );
        assert_eq!(
            ctxs[srt].form_for(CostUnit::CpuTuple),
            Some(CostForm::LinearLeft)
        );
    }

    #[test]
    fn forms_cover_all_nonzero_counts() {
        // Any unit with a nonzero count must have a declared form, and any
        // declared form must produce selectivity-consistent counts.
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.index_scan("u", "x", Pred::lt("x", Value::Int(5)));
        let j = b.nl_join(l, r, "a", "x");
        let agg = b.aggregate(
            j,
            vec!["a".into()],
            vec![("cnt".into(), uaq_engine::AggFunc::CountStar)],
        );
        let plan = b.build(agg);
        for id in plan.node_ids() {
            let ctx = NodeCostContext::build(&plan, id, &c);
            let n = ctx.counts(0.4, 0.3, 0.2);
            for u in CostUnit::ALL {
                if n[u] != 0.0 {
                    assert!(
                        ctx.form_for(u).is_some(),
                        "node {id} unit {u} has count {} but no form",
                        n[u]
                    );
                }
            }
        }
    }
}
