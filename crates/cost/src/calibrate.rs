//! Cost-unit calibration (§3.1, extending the framework of [48]).
//!
//! Five dedicated calibration query shapes isolate the units one at a time
//! (Example 3: `SELECT * FROM R` on a memory-resident table exposes `c_t`).
//! Each query is "run" on the simulated hardware several times over several
//! table sizes; inverting the known count equation per run yields i.i.d.
//! samples of the unit, and — this paper's extension over [48] — we keep the
//! sample *variance*, not just the mean, giving `c ~ N(μ̂, σ̂²)`.

use crate::profile::HardwareProfile;
use crate::units::{CostUnit, UnitCounts, UnitDists};
use uaq_stats::{Normal, Rng, Welford};

/// Relative standard deviation of timing-measurement noise (clock jitter).
const MEASUREMENT_NOISE_REL_STD: f64 = 0.005;

/// Calibration effort knobs.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationConfig {
    /// Repetitions per (query shape, table size).
    pub runs_per_size: usize,
    /// Synthetic table sizes (row counts) the calibration queries scan.
    pub table_sizes: [usize; 3],
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self {
            runs_per_size: 8,
            table_sizes: [20_000, 50_000, 100_000],
        }
    }
}

/// Runs one calibration query: the simulated hardware draws a system state,
/// executes the known count vector, and reports wall-clock time with a
/// little measurement noise.
fn observe(profile: &HardwareProfile, counts: &UnitCounts, rng: &mut Rng) -> f64 {
    let state = profile.draw(rng);
    let t = state.time_for(counts);
    t * (1.0 + rng.normal(0.0, MEASUREMENT_NOISE_REL_STD))
}

/// Calibrates all five units against a hardware profile, in the dependency
/// order of [48]: `c_t` first, then units whose queries also exercise
/// already-calibrated ones (their means are subtracted out).
pub fn calibrate(
    profile: &HardwareProfile,
    config: &CalibrationConfig,
    rng: &mut Rng,
) -> UnitDists {
    let tuples_per_page = uaq_storage::DEFAULT_TUPLES_PER_PAGE as f64;

    // 1. c_t: in-memory full scan; τ = N·c_t.
    let ct = collect(
        config,
        |n, rng| {
            let mut counts = UnitCounts::default();
            counts[CostUnit::CpuTuple] = n;
            observe(profile, &counts, rng) / n
        },
        rng,
    );

    // 2. c_o: in-memory scan plus two primitive ops per tuple;
    //    τ = N·c_t + 2N·c_o ⇒ c_o = (τ − N·μ̂_t) / 2N.
    let co = collect(
        config,
        |n, rng| {
            let mut counts = UnitCounts::default();
            counts[CostUnit::CpuTuple] = n;
            counts[CostUnit::CpuOp] = 2.0 * n;
            (observe(profile, &counts, rng) - n * ct.mean()) / (2.0 * n)
        },
        rng,
    );

    // 3. c_s: cold sequential scan; τ = P·c_s + N·c_t.
    let cs = collect(
        config,
        |n, rng| {
            let pages = n / tuples_per_page;
            let mut counts = UnitCounts::default();
            counts[CostUnit::SeqPage] = pages;
            counts[CostUnit::CpuTuple] = n;
            (observe(profile, &counts, rng) - n * ct.mean()) / pages
        },
        rng,
    );

    // 4. c_i: in-memory index-only lookup of M tuples; τ = M·c_i + M·c_t.
    let ci = collect(
        config,
        |n, rng| {
            let m = n / 10.0;
            let mut counts = UnitCounts::default();
            counts[CostUnit::CpuIndex] = m;
            counts[CostUnit::CpuTuple] = m;
            (observe(profile, &counts, rng) - m * ct.mean()) / m
        },
        rng,
    );

    // 5. c_r: cold index scan; τ = M·c_r + M·c_i + M·c_t.
    let cr = collect(
        config,
        |n, rng| {
            let m = n / 10.0;
            let mut counts = UnitCounts::default();
            counts[CostUnit::RandPage] = m;
            counts[CostUnit::CpuIndex] = m;
            counts[CostUnit::CpuTuple] = m;
            (observe(profile, &counts, rng) - m * (ct.mean() + ci.mean())) / m
        },
        rng,
    );

    UnitDists([cs, cr, ct, ci, co])
}

/// Collects unit samples across sizes and repetitions; returns the fitted
/// normal (sample mean + unbiased sample variance).
fn collect(
    config: &CalibrationConfig,
    mut one_sample: impl FnMut(f64, &mut Rng) -> f64,
    rng: &mut Rng,
) -> Normal {
    let mut w = Welford::new();
    for &size in &config.table_sizes {
        for _ in 0..config.runs_per_size {
            w.push(one_sample(size as f64, rng));
        }
    }
    Normal::new(w.mean().max(0.0), w.sample_variance())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_means_track_truth() {
        let profile = HardwareProfile::pc1();
        let mut rng = Rng::new(1000);
        // Generous effort for a tight test.
        let config = CalibrationConfig {
            runs_per_size: 200,
            table_sizes: [20_000, 50_000, 100_000],
        };
        let calibrated = calibrate(&profile, &config, &mut rng);
        for u in CostUnit::ALL {
            let truth = profile.true_units()[u].mean();
            let got = calibrated[u].mean();
            assert!(
                (got - truth).abs() / truth < 0.05,
                "{u}: calibrated {got} vs true {truth}"
            );
        }
    }

    #[test]
    fn calibrated_variances_are_positive_and_sane() {
        let profile = HardwareProfile::pc2();
        let mut rng = Rng::new(2000);
        let config = CalibrationConfig {
            runs_per_size: 100,
            table_sizes: [20_000, 50_000, 100_000],
        };
        let calibrated = calibrate(&profile, &config, &mut rng);
        for u in CostUnit::ALL {
            let truth = profile.true_units()[u];
            let got = calibrated[u];
            assert!(got.var() > 0.0, "{u}: zero variance");
            // Contamination from subtracting mean estimates inflates the
            // variance of dependent units; it must stay within an order of
            // magnitude of the truth and never undershoot grossly.
            assert!(
                got.var() < 30.0 * truth.var() && got.var() > 0.2 * truth.var(),
                "{u}: var {} vs true {}",
                got.var(),
                truth.var()
            );
        }
    }

    #[test]
    fn default_effort_is_modest_but_stable() {
        let profile = HardwareProfile::pc1();
        let mut rng = Rng::new(3000);
        let calibrated = calibrate(&profile, &CalibrationConfig::default(), &mut rng);
        for u in CostUnit::ALL {
            let truth = profile.true_units()[u].mean();
            assert!(
                (calibrated[u].mean() - truth).abs() / truth < 0.25,
                "{u} badly calibrated"
            );
        }
    }

    #[test]
    fn calibration_is_deterministic_by_seed() {
        let profile = HardwareProfile::pc1();
        let a = calibrate(&profile, &CalibrationConfig::default(), &mut Rng::new(4));
        let b = calibrate(&profile, &CalibrationConfig::default(), &mut Rng::new(4));
        for u in CostUnit::ALL {
            assert_eq!(a[u].mean(), b[u].mean());
        }
    }
}
