//! Cost-function fitting (§4.2).
//!
//! The predictor treats the optimizer cost model as a black box: it picks
//! selectivity points on the `[μ − 3σ, μ + 3σ]` interval (where ≈ 99.7% of
//! the estimate's mass lives), invokes the model there, and solves the
//! non-negative least-squares problem `min ‖Ab − y‖, b ≥ 0` for the logical
//! form's coefficients — the paper uses Scilab's `qpsolve`; we use our
//! Lawson–Hanson NNLS (see `uaq_stats::nnls`).

use crate::logical::{CostForm, FittedCost};
use crate::oracle::NodeCostContext;
use crate::units::CostUnit;
use uaq_stats::{nnls, Matrix, Normal};

/// Fitting knobs.
#[derive(Debug, Clone, Copy)]
pub struct FitConfig {
    /// Number of grid subintervals `W` (§4.2): `W + 1` points per variable.
    pub grid_w: usize,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { grid_w: 8 }
    }
}

/// The `W + 1` boundary points of `[μ − 3σ, μ + 3σ] ∩ [0, 1]`, widened to a
/// small relative interval when the variance is (near) zero so the fit still
/// sees the local shape of the function.
pub fn grid_points(x: &Normal, w: usize) -> Vec<f64> {
    assert!(w >= 1);
    let (mut lo, mut hi) = (
        (x.mean() - 3.0 * x.std_dev()).max(0.0),
        (x.mean() + 3.0 * x.std_dev()).min(1.0),
    );
    if hi - lo < 1e-12 {
        lo = (x.mean() * 0.9).max(0.0);
        hi = (x.mean() * 1.1).min(1.0);
    }
    if hi - lo < 1e-12 {
        // Mean is (near) zero with zero variance: probe a sliver above zero.
        hi = (lo + 1e-9).min(1.0);
    }
    (0..=w)
        .map(|i| lo + (hi - lo) * i as f64 / w as f64)
        .collect()
}

/// Probe points of one grid category with the oracle's counts at each
/// point — computed once per operator and shared by every cost unit whose
/// form reads the same variables (the oracle returns all five units per
/// probe, so probing per-unit would repeat identical work five times).
struct Probes {
    /// `(xl, xr, own)` per probe point.
    points: Vec<(f64, f64, f64)>,
    counts: Vec<crate::units::UnitCounts>,
}

fn probe(ctx: &NodeCostContext, points: Vec<(f64, f64, f64)>) -> Probes {
    let counts = points
        .iter()
        .map(|&(pl, pr, po)| ctx.counts(pl, pr, po))
        .collect();
    Probes { points, counts }
}

/// Fits the cost function of one (operator, cost-unit) pair against
/// precomputed probes. Returns `None` when the operator never exercises the
/// unit.
fn fit_from_probes(unit: CostUnit, form: CostForm, probes: &Probes) -> FittedCost {
    // One flat design matrix, no per-row allocation.
    let cols = form.arity();
    let mut data = Vec::with_capacity(probes.points.len() * cols);
    for &(pl, pr, po) in &probes.points {
        form.design_row_into(pl, pr, po, &mut data);
    }
    let y: Vec<f64> = probes.counts.iter().map(|c| c[unit]).collect();

    // Column scaling: selectivities can be ~1e-9 while the intercept column
    // is 1, which would wreck the normal equations' conditioning. NNLS is
    // scale-covariant under positive column scaling, so solve the scaled
    // problem and unscale the coefficients.
    let mut scale = vec![0.0f64; cols];
    for row in data.chunks_exact(cols) {
        for (s, v) in scale.iter_mut().zip(row) {
            *s = s.max(v.abs());
        }
    }
    for s in &mut scale {
        if *s == 0.0 {
            *s = 1.0;
        }
    }
    for row in data.chunks_exact_mut(cols) {
        for (v, s) in row.iter_mut().zip(&scale) {
            *v /= s;
        }
    }
    let solution = nnls(&Matrix::from_flat(data, cols), &y);
    let coeffs: Vec<f64> = solution.x.iter().zip(&scale).map(|(b, s)| b / s).collect();
    FittedCost::new(form, &coeffs)
}

/// Fits the cost function of one (operator, cost-unit) pair. Returns `None`
/// when the operator never exercises the unit.
pub fn fit_cost_function(
    ctx: &NodeCostContext,
    unit: CostUnit,
    xl: &Normal,
    xr: &Normal,
    own: &Normal,
    config: &FitConfig,
) -> Option<FittedCost> {
    let form = ctx.form_for(unit)?;
    if form == CostForm::Const {
        let value = ctx.counts(xl.mean(), xr.mean(), own.mean())[unit];
        return Some(FittedCost::constant(value));
    }
    let points = grid_for_form(form, xl, xr, own, config);
    Some(fit_from_probes(unit, form, &probe(ctx, points)))
}

/// Probe points for a form's grid category (§4.2).
fn grid_for_form(
    form: CostForm,
    xl: &Normal,
    xr: &Normal,
    own: &Normal,
    config: &FitConfig,
) -> Vec<(f64, f64, f64)> {
    if form.uses_right() {
        // Binary: (W+1) × (W+1) grid over I_l × I_r.
        let gl = grid_points(xl, config.grid_w);
        let gr = grid_points(xr, config.grid_w);
        let mut out = Vec::with_capacity(gl.len() * gr.len());
        for &pl in &gl {
            for &pr in &gr {
                out.push((pl, pr, 0.0));
            }
        }
        out
    } else if form.uses_own() {
        grid_points(own, config.grid_w)
            .into_iter()
            .map(|p| (0.0, 0.0, p))
            .collect()
    } else {
        grid_points(xl, config.grid_w)
            .into_iter()
            .map(|p| (p, 0.0, 0.0))
            .collect()
    }
}

/// Grid category of a form, used to share probes between units.
fn grid_category(form: CostForm) -> u8 {
    if form.uses_right() {
        0
    } else if form.uses_own() {
        1
    } else {
        2
    }
}

/// Fits all five unit functions of one operator. Oracle probes are shared
/// across units with the same grid category: one `counts()` call yields all
/// five unit values, so each distinct grid is walked exactly once.
pub fn fit_node(
    ctx: &NodeCostContext,
    xl: &Normal,
    xr: &Normal,
    own: &Normal,
    config: &FitConfig,
) -> [Option<FittedCost>; 5] {
    let mut cached: [Option<Probes>; 3] = [None, None, None];
    CostUnit::ALL.map(|unit| {
        let form = ctx.form_for(unit)?;
        if form == CostForm::Const {
            let value = ctx.counts(xl.mean(), xr.mean(), own.mean())[unit];
            return Some(FittedCost::constant(value));
        }
        let cat = grid_category(form) as usize;
        let probes =
            cached[cat].get_or_insert_with(|| probe(ctx, grid_for_form(form, xl, xr, own, config)));
        Some(fit_from_probes(unit, form, probes))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_engine::{PlanBuilder, Pred, SortOrder};
    use uaq_storage::{Catalog, Column, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..6400)
            .map(|i| vec![Value::Int(i % 80), Value::Int(i)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("x")]);
        let rows2 = (0..3200).map(|i| vec![Value::Int(i % 80)]).collect();
        c.add_table(Table::new("u", s2, rows2));
        c
    }

    #[test]
    fn grid_stays_in_unit_interval_and_covers_3sigma() {
        let x = Normal::new(0.5, 0.01);
        let pts = grid_points(&x, 8);
        assert_eq!(pts.len(), 9);
        assert!((pts[0] - 0.2).abs() < 1e-12);
        assert!((pts[8] - 0.8).abs() < 1e-12);
        let tight = grid_points(&Normal::new(0.99, 0.01), 4);
        assert!(tight.iter().all(|&p| p <= 1.0));
        let degenerate = grid_points(&Normal::point(0.4), 4);
        assert!(degenerate.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn linear_forms_are_recovered_exactly() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let ctx = NodeCostContext::build(&plan, j, &c);
        let xl = Normal::new(0.4, 0.003);
        let xr = Normal::new(0.5, 0.002);
        let fit = fit_cost_function(
            &ctx,
            CostUnit::CpuTuple,
            &xl,
            &xr,
            &Normal::point(0.0),
            &FitConfig::default(),
        )
        .expect("hash join exercises c_t");
        // Oracle: n_t = Nl + Nr = 6400·Xl + 3200·Xr — a C5' exactly.
        for (pl, pr) in [(0.3, 0.4), (0.45, 0.55), (0.5, 0.5)] {
            let truth = ctx.counts(pl, pr, 0.0)[CostUnit::CpuTuple];
            assert!(
                (fit.eval(pl, pr, 0.0) - truth).abs() / truth < 1e-6,
                "fit {} vs oracle {truth}",
                fit.eval(pl, pr, 0.0)
            );
        }
    }

    #[test]
    fn nl_join_product_form_recovered() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.nl_join(l, r, "a", "x");
        let plan = b.build(j);
        let ctx = NodeCostContext::build(&plan, j, &c);
        let xl = Normal::new(0.2, 0.001);
        let xr = Normal::new(0.3, 0.001);
        let fit = fit_cost_function(
            &ctx,
            CostUnit::CpuOp,
            &xl,
            &xr,
            &Normal::point(0.0),
            &FitConfig::default(),
        )
        .expect("nl join exercises c_o");
        let truth = ctx.counts(0.25, 0.35, 0.0)[CostUnit::CpuOp];
        assert!((fit.eval(0.25, 0.35, 0.0) - truth).abs() / truth < 1e-6);
        assert_eq!(fit.form, CostForm::ProductBoth);
    }

    #[test]
    fn sort_nlogn_fits_quadratic_within_interval() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let srt = b.sort(s, vec![("b".into(), SortOrder::Asc)]);
        let plan = b.build(srt);
        let ctx = NodeCostContext::build(&plan, srt, &c);
        let xl = Normal::new(0.5, 0.004);
        let fit = fit_cost_function(
            &ctx,
            CostUnit::CpuOp,
            &xl,
            &Normal::point(0.0),
            &Normal::point(0.0),
            &FitConfig::default(),
        )
        .expect("sort exercises c_o");
        assert_eq!(fit.form, CostForm::QuadLeft);
        // Inside the 3σ interval the quadratic approximation of N log N is
        // accurate to well under 1%.
        for p in [0.4, 0.5, 0.6] {
            let truth = ctx.counts(p, 0.0, 0.0)[CostUnit::CpuOp];
            let rel = (fit.eval(p, 0.0, 0.0) - truth).abs() / truth;
            assert!(rel < 0.01, "rel err {rel} at X={p}");
        }
    }

    #[test]
    fn tiny_selectivities_stay_numerically_stable() {
        // Join-output selectivities can be ~1e-6 or less; the column-scaled
        // NNLS must not blow up.
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.index_scan("t", "b", Pred::lt("b", Value::Int(6)));
        let plan = b.build(s);
        let ctx = NodeCostContext::build(&plan, s, &c);
        let own = Normal::new(1e-6, 1e-14);
        let fit = fit_cost_function(
            &ctx,
            CostUnit::RandPage,
            &Normal::point(0.0),
            &Normal::point(0.0),
            &own,
            &FitConfig::default(),
        )
        .expect("index scan does random I/O");
        let truth = ctx.counts(0.0, 0.0, 1e-6)[CostUnit::RandPage];
        assert!(
            (fit.eval(0.0, 0.0, 1e-6) - truth).abs() <= truth * 1e-3 + 1e-9,
            "fit {} vs truth {truth}",
            fit.eval(0.0, 0.0, 1e-6)
        );
    }

    #[test]
    fn unused_units_fit_to_none() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let plan = b.build(s);
        let ctx = NodeCostContext::build(&plan, s, &c);
        let fits = fit_node(
            &ctx,
            &Normal::point(0.0),
            &Normal::point(0.0),
            &Normal::new(0.5, 0.01),
            &FitConfig::default(),
        );
        assert!(fits[CostUnit::RandPage.idx()].is_none());
        assert!(fits[CostUnit::CpuIndex.idx()].is_none());
        assert!(fits[CostUnit::SeqPage.idx()].is_some());
    }

    #[test]
    fn coefficients_are_nonnegative() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let srt = b.sort(s, vec![("b".into(), SortOrder::Asc)]);
        let plan = b.build(srt);
        let ctx = NodeCostContext::build(&plan, srt, &c);
        let fit = fit_cost_function(
            &ctx,
            CostUnit::CpuOp,
            &Normal::new(0.3, 0.01),
            &Normal::point(0.0),
            &Normal::point(0.0),
            &FitConfig::default(),
        )
        .expect("fit");
        assert!(fit.b.iter().all(|&b| b >= 0.0), "{:?}", fit.b);
    }
}
