//! # uaq-cost
//!
//! Cost-model substrate for the `uaq` reproduction: the five PostgreSQL cost
//! units (Table 1), simulated hardware profiles (PC1/PC2), the oracle cost
//! model (the black box the predictor fits), cost-unit calibration with
//! variances (§3.1), the logical cost-function forms C1'–C6' with their
//! asymptotic distributions (§4, §5.2.1), NNLS grid fitting (§4.2), and the
//! simulated runtime producing ground-truth "actual" execution times.

pub mod cache;
pub mod calibrate;
pub mod fitting;
pub mod logical;
pub mod oracle;
pub mod profile;
pub mod runtime;
pub mod units;

pub use cache::{FitCache, FitSignature, NoFitCache, NoSelEstCache, NodeFits, SelEstCache};
pub use calibrate::{calibrate, CalibrationConfig};
pub use fitting::{fit_cost_function, fit_node, grid_points, FitConfig};
pub use logical::{CostForm, FittedCost, SelTerm};
pub use oracle::NodeCostContext;
pub use profile::HardwareProfile;
pub use runtime::{simulate_actual_time, true_selectivities, ActualTiming, SimConfig};
pub use units::{CostUnit, UnitCounts, UnitDists, UnitValues};
