//! Fit-cache abstraction for the prediction pipeline.
//!
//! Short plans are dominated not by the sample pass but by the
//! oracle-probe grid fits of §4.2: every prediction rebuilds the per-node
//! [`NodeCostContext`]s and re-solves one NNLS per (operator, cost-unit)
//! pair. In a serving setting the same query *templates* recur constantly —
//! same plan shape, different literals — so that work is redundant. This
//! module defines the [`FitCache`] trait the predictor threads through its
//! fitting stage; a concrete concurrent implementation lives in
//! `uaq_service`, and [`NoFitCache`] preserves the original
//! fit-everything-per-call behavior for batch consumers (`Lab`, tests).
//!
//! Two cache levels, both keyed by the plan's *shape signature*
//! (`uaq_engine::Plan::shape_signature` — operators + tables + columns +
//! predicate structure, literals masked):
//!
//! * **Contexts** (`Vec<NodeCostContext>`): depend only on the shape and
//!   the catalog, so literal-perturbed instances of one template share them
//!   unconditionally.
//! * **Fits** (`NodeFits`): additionally depend on the per-node selectivity
//!   distributions and the fit grid, captured bit-exactly by
//!   [`FitSignature`]. A hit therefore returns *precisely* what a fresh
//!   fit would compute — cached and uncached predictions are bit-identical
//!   by construction. Repeated identical queries (the common serving case)
//!   hit this level and skip the grid fits entirely; literal-perturbed
//!   queries with shifted selectivities fall back to the context level.
//!
//! Contexts embed table cardinalities and key densities, so the predictor
//! mixes the catalog's fingerprint (`uaq_storage::Catalog::fingerprint`)
//! into the shape key: one cache instance stays correct even when a
//! process serves several databases.

use crate::logical::FittedCost;
use crate::oracle::NodeCostContext;
use std::sync::Arc;
use uaq_selest::SelEstimates;
use uaq_stats::Normal;

/// All fitted cost functions of one plan: per node, per cost unit.
pub type NodeFits = Vec<[Option<FittedCost>; 5]>;

/// Everything the grid fit of a whole plan depends on besides the contexts:
/// the fit grid resolution and the exact bit patterns of every node's
/// selectivity distribution. Equal signatures ⇒ bit-identical fits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FitSignature {
    grid_w: usize,
    /// `(mean, var)` of each node's selectivity distribution, as IEEE-754
    /// bit patterns (exact equality, no epsilon).
    dists: Vec<(u64, u64)>,
}

impl FitSignature {
    pub fn new(grid_w: usize, dists: &[Normal]) -> Self {
        Self {
            grid_w,
            dists: dists
                .iter()
                .map(|d| (d.mean().to_bits(), d.var().to_bits()))
                .collect(),
        }
    }
}

/// Cache of per-shape cost contexts and fitted cost functions, shared
/// across predictions. Implementations must be safe to call from multiple
/// worker threads (`&self` methods, `Sync`).
pub trait FitCache: Sync {
    /// False for the no-op cache: lets the predictor skip computing the
    /// shape signature altogether.
    fn enabled(&self) -> bool {
        true
    }

    /// Cached `NodeCostContext`s for a plan shape.
    fn get_contexts(&self, shape: &str) -> Option<Arc<Vec<NodeCostContext>>>;

    /// Stores freshly built contexts for a plan shape.
    fn put_contexts(&self, shape: &str, contexts: &Arc<Vec<NodeCostContext>>);

    /// Cached fitted cost functions for (plan shape, fit inputs).
    fn get_fits(&self, shape: &str, sig: &FitSignature) -> Option<Arc<NodeFits>>;

    /// Stores freshly fitted cost functions for (plan shape, fit inputs).
    fn put_fits(&self, shape: &str, sig: &FitSignature, fits: &Arc<NodeFits>);
}

/// Cache of whole-plan selectivity estimates — the level *in front of*
/// [`FitCache`] in the serving pipeline. Where the fit cache removes the
/// grid fits for a repeated query, this cache removes the **sample pass**
/// itself: the dominant cost of a warm prediction once fits are cached.
///
/// The key is built by the predictor and identifies everything the
/// estimates depend on: plan shape signature, catalog fingerprint, the
/// *literal key* (`uaq_engine::Plan::literal_key` — the exact predicate
/// constants the shape signature masks), the sample set's content
/// fingerprint, and the aggregate-cardinality source. Estimates are pure
/// functions of those inputs, so a hit returns precisely what a fresh
/// sample pass would compute — cached and uncached predictions stay
/// bit-identical, the same contract the fit cache carries.
///
/// Implementations must be callable from multiple worker threads.
pub trait SelEstCache: Sync {
    /// False for the no-op cache: lets the predictor skip computing the
    /// literal key altogether.
    fn enabled(&self) -> bool {
        true
    }

    /// Cached estimates for a fully-qualified instance key. The returned
    /// value shares the cached allocation (`SelEstimates` is `Arc`-backed).
    fn get(&self, key: &str) -> Option<SelEstimates>;

    /// Stores freshly computed estimates for an instance key.
    fn put(&self, key: &str, estimates: &SelEstimates);
}

/// The no-op selectivity-estimate cache: every prediction runs the sample
/// pass, exactly as before the cache existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSelEstCache;

impl SelEstCache for NoSelEstCache {
    fn enabled(&self) -> bool {
        false
    }

    fn get(&self, _key: &str) -> Option<SelEstimates> {
        None
    }

    fn put(&self, _key: &str, _estimates: &SelEstimates) {}
}

/// The no-op cache: every prediction rebuilds contexts and fits, exactly as
/// before the cache existed. This is the default for `Predictor::predict`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFitCache;

impl FitCache for NoFitCache {
    fn enabled(&self) -> bool {
        false
    }

    fn get_contexts(&self, _shape: &str) -> Option<Arc<Vec<NodeCostContext>>> {
        None
    }

    fn put_contexts(&self, _shape: &str, _contexts: &Arc<Vec<NodeCostContext>>) {}

    fn get_fits(&self, _shape: &str, _sig: &FitSignature) -> Option<Arc<NodeFits>> {
        None
    }

    fn put_fits(&self, _shape: &str, _sig: &FitSignature, _fits: &Arc<NodeFits>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_cache_is_disabled_and_empty() {
        let c = NoFitCache;
        assert!(!c.enabled());
        assert!(c.get_contexts("sig").is_none());
        let sig = FitSignature::new(8, &[Normal::new(0.5, 0.01)]);
        assert!(c.get_fits("sig", &sig).is_none());
        c.put_fits("sig", &sig, &Arc::new(Vec::new()));
        assert!(c.get_fits("sig", &sig).is_none());
    }

    #[test]
    fn no_sel_cache_is_disabled_and_empty() {
        let c = NoSelEstCache;
        assert!(!c.enabled());
        assert!(c.get("key").is_none());
        c.put("key", &SelEstimates::from_vec(Vec::new()));
        assert!(c.get("key").is_none());
    }

    #[test]
    fn fit_signature_is_bit_exact() {
        let a = FitSignature::new(8, &[Normal::new(0.5, 0.01), Normal::new(0.25, 0.0)]);
        let b = FitSignature::new(8, &[Normal::new(0.5, 0.01), Normal::new(0.25, 0.0)]);
        assert_eq!(a, b);
        // A 1-ulp nudge in any mean must produce a distinct signature.
        let nudged = f64::from_bits(0.5f64.to_bits() + 1);
        let c = FitSignature::new(8, &[Normal::new(nudged, 0.01), Normal::new(0.25, 0.0)]);
        assert_ne!(a, c);
        // Same dists, different grid resolution: different fits, distinct key.
        let d = FitSignature::new(4, &[Normal::new(0.5, 0.01), Normal::new(0.25, 0.0)]);
        assert_ne!(a, d);
    }
}
