//! The simulated hardware runtime: turns a truly-executed plan into an
//! "actual" wall-clock time (the ground truth of every experiment).
//!
//! Per run (the paper runs each query 5 times with cold caches and averages):
//!
//! * one system-state draw of the five cost units for the whole query — the
//!   paper models the `c`'s as per-query random state, and calibration
//!   observes exactly these fluctuations;
//! * the oracle counts evaluated at the **true** cardinalities — a real
//!   execution "observes the true cardinalities ... identical every time it
//!   is run" (§1);
//! * a per-operator log-normal factor for cost-model error (`g`-error: the
//!   model ignores e.g. CPU/I/O interleaving; §1 bullet three) which the
//!   predictor's uncertainty model deliberately does not capture.

use crate::oracle::NodeCostContext;
use crate::profile::HardwareProfile;
use uaq_engine::{NodeTrace, Plan};
use uaq_stats::Rng;

/// Simulation knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Runs per query (paper: 5, averaged).
    pub runs: usize,
    /// σ of the per-operator log-normal model-error factor.
    pub model_error_sigma: f64,
    /// When true, every operator draws its own cost-unit state per run
    /// instead of all operators sharing one system state per run. The paper
    /// models the `c`'s as shared per-query state (`t_q ≈ Σ_c g_c·c`,
    /// §5.2.3); this flag simulates the world where that modeling assumption
    /// is wrong (the ablation of DESIGN.md note 1, `repro-ablate-cdraw`).
    pub per_operator_unit_draws: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            runs: 5,
            model_error_sigma: 0.05,
            per_operator_unit_draws: false,
        }
    }
}

/// True selectivity triple `(x_l, x_r, own)` per node, computed from full
/// execution traces (the selectivity definition of Eq. 3).
pub fn true_selectivities(
    plan: &Plan,
    contexts: &[NodeCostContext],
    traces: &[NodeTrace],
) -> Vec<(f64, f64, f64)> {
    plan.node_ids()
        .map(|id| {
            let children = plan.op(id).children();
            let ctx = &contexts[id];
            // The leaf products are recovered by mapping selectivity 1.
            let xl = children
                .first()
                .map_or(0.0, |&c| ratio(traces[c].output_rows, ctx.nl(1.0)));
            let xr = children
                .get(1)
                .map_or(0.0, |&c| ratio(traces[c].output_rows, ctx.nr(1.0)));
            let own = ratio(traces[id].output_rows, ctx.own_leaf_product());
            (xl, xr, own)
        })
        .collect()
}

fn ratio(num: usize, denom: f64) -> f64 {
    if denom > 0.0 {
        num as f64 / denom
    } else {
        0.0
    }
}

/// Timing of one simulated query: per-run times and their mean.
#[derive(Debug, Clone)]
pub struct ActualTiming {
    pub per_run_ms: Vec<f64>,
    pub mean_ms: f64,
}

/// Simulates the actual execution time of a plan whose true per-node
/// cardinalities are known from a full execution.
pub fn simulate_actual_time(
    plan: &Plan,
    contexts: &[NodeCostContext],
    traces: &[NodeTrace],
    profile: &HardwareProfile,
    config: &SimConfig,
    rng: &mut Rng,
) -> ActualTiming {
    assert!(config.runs > 0);
    let sels = true_selectivities(plan, contexts, traces);
    // The `g`-error is *systematic*: the cost model mis-models a given
    // operator the same way on every run (e.g. it always ignores the same
    // CPU/I/O interleaving), so one γ per operator per query — it does not
    // average out across the 5 runs, exactly like the paper's third error
    // source which the predictor's uncertainty model cannot see.
    let gammas: Vec<f64> = plan
        .node_ids()
        .map(|_| {
            if config.model_error_sigma > 0.0 {
                rng.lognormal(0.0, config.model_error_sigma)
            } else {
                1.0
            }
        })
        .collect();
    let per_run_ms: Vec<f64> = (0..config.runs)
        .map(|_| {
            let shared_state = profile.draw(rng);
            plan.node_ids()
                .map(|id| {
                    let (xl, xr, own) = sels[id];
                    let counts = contexts[id].counts(xl, xr, own);
                    let time = if config.per_operator_unit_draws {
                        profile.draw(rng).time_for(&counts)
                    } else {
                        shared_state.time_for(&counts)
                    };
                    gammas[id] * time
                })
                .sum()
        })
        .collect();
    let mean_ms = per_run_ms.iter().sum::<f64>() / per_run_ms.len() as f64;
    ActualTiming {
        per_run_ms,
        mean_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_engine::{execute_full, PlanBuilder, Pred};
    use uaq_storage::{Catalog, Column, Schema, Table, Value};

    fn setup() -> (Catalog, Plan) {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..6400)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let mut b = PlanBuilder::new();
        let scan = b.seq_scan("t", Pred::lt("b", Value::Int(3200)));
        let plan = b.build(scan);
        (c, plan)
    }

    #[test]
    fn true_selectivities_match_execution() {
        let (c, plan) = setup();
        let out = execute_full(&plan, &c);
        let ctxs = NodeCostContext::build_all(&plan, &c);
        let sels = true_selectivities(&plan, &ctxs, &out.traces);
        assert!(
            (sels[0].2 - 0.5).abs() < 1e-9,
            "own selectivity {:?}",
            sels[0]
        );
    }

    #[test]
    fn simulated_time_is_positive_and_varies_across_runs() {
        let (c, plan) = setup();
        let out = execute_full(&plan, &c);
        let ctxs = NodeCostContext::build_all(&plan, &c);
        let mut rng = Rng::new(77);
        let timing = simulate_actual_time(
            &plan,
            &ctxs,
            &out.traces,
            &HardwareProfile::pc1(),
            &SimConfig::default(),
            &mut rng,
        );
        assert_eq!(timing.per_run_ms.len(), 5);
        assert!(timing.per_run_ms.iter().all(|&t| t > 0.0));
        let spread = timing
            .per_run_ms
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &t| {
                (lo.min(t), hi.max(t))
            });
        assert!(spread.1 > spread.0, "runs should differ");
        assert!(
            (timing.mean_ms
                - timing.per_run_ms.iter().sum::<f64>() / timing.per_run_ms.len() as f64)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn per_operator_draws_reduce_run_variance() {
        // Independent per-operator fluctuations partially cancel, so the
        // spread of per-run times shrinks versus shared system state.
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a")]);
        c.add_table(Table::new(
            "t",
            s,
            (0..20_000).map(|i| vec![Value::Int(i % 10)]).collect(),
        ));
        // Several operators of similar size: scan + filters stacked.
        let mut b = PlanBuilder::new();
        let mut node = b.seq_scan("t", Pred::True);
        for i in 0..4 {
            node = b.filter(node, Pred::ge("a", Value::Int(i)));
        }
        let plan = b.build(node);
        let out = execute_full(&plan, &c);
        let ctxs = NodeCostContext::build_all(&plan, &c);
        let profile = HardwareProfile::pc1();
        let run_var = |per_op: bool, seed: u64| {
            let cfg = SimConfig {
                runs: 3000,
                model_error_sigma: 0.0,
                per_operator_unit_draws: per_op,
            };
            let mut rng = Rng::new(seed);
            let t = simulate_actual_time(&plan, &ctxs, &out.traces, &profile, &cfg, &mut rng);
            uaq_stats::sample_variance(&t.per_run_ms)
        };
        let shared = run_var(false, 9);
        let independent = run_var(true, 9);
        assert!(
            independent < shared,
            "independent {independent} should be below shared {shared}"
        );
    }

    #[test]
    fn mean_time_tracks_expected_cost() {
        let (c, plan) = setup();
        let out = execute_full(&plan, &c);
        let ctxs = NodeCostContext::build_all(&plan, &c);
        let profile = HardwareProfile::pc1();
        let mut rng = Rng::new(5);
        // No model error, many runs → mean close to Σ n_c μ_c.
        let cfg = SimConfig {
            runs: 4000,
            model_error_sigma: 0.0,
            per_operator_unit_draws: false,
        };
        let timing = simulate_actual_time(&plan, &ctxs, &out.traces, &profile, &cfg, &mut rng);
        let sels = true_selectivities(&plan, &ctxs, &out.traces);
        let expected: f64 = plan
            .node_ids()
            .map(|id| {
                let (xl, xr, own) = sels[id];
                let counts = ctxs[id].counts(xl, xr, own);
                crate::units::CostUnit::ALL
                    .iter()
                    .map(|&u| counts[u] * profile.true_units()[u].mean())
                    .sum::<f64>()
            })
            .sum();
        assert!(
            (timing.mean_ms - expected).abs() / expected < 0.01,
            "mean {} vs expected {}",
            timing.mean_ms,
            expected
        );
    }

    #[test]
    fn bigger_queries_take_longer() {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a")]);
        c.add_table(Table::new(
            "small",
            s.clone(),
            (0..1000).map(|i| vec![Value::Int(i)]).collect(),
        ));
        c.add_table(Table::new(
            "large",
            s,
            (0..100_000).map(|i| vec![Value::Int(i)]).collect(),
        ));
        let time_of = |table: &str, rng_seed: u64| {
            let mut b = PlanBuilder::new();
            let scan = b.seq_scan(table, Pred::True);
            let plan = b.build(scan);
            let out = execute_full(&plan, &c);
            let ctxs = NodeCostContext::build_all(&plan, &c);
            let mut rng = Rng::new(rng_seed);
            simulate_actual_time(
                &plan,
                &ctxs,
                &out.traces,
                &HardwareProfile::pc2(),
                &SimConfig::default(),
                &mut rng,
            )
            .mean_ms
        };
        assert!(time_of("large", 1) > 20.0 * time_of("small", 1));
    }
}
