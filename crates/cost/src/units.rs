//! The five cost units of PostgreSQL's cost model (Table 1 of the paper).

use std::fmt;
use std::ops::{Index, IndexMut};
use uaq_stats::Normal;

/// A cost unit `c` (Table 1): what one primitive operation costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CostUnit {
    /// `c_s` — sequential page I/O.
    SeqPage,
    /// `c_r` — random page I/O.
    RandPage,
    /// `c_t` — CPU cost to process one tuple.
    CpuTuple,
    /// `c_i` — CPU cost to process one tuple via index access.
    CpuIndex,
    /// `c_o` — CPU cost of one primitive operation (hash, comparison, ...).
    CpuOp,
}

impl CostUnit {
    pub const ALL: [CostUnit; 5] = [
        CostUnit::SeqPage,
        CostUnit::RandPage,
        CostUnit::CpuTuple,
        CostUnit::CpuIndex,
        CostUnit::CpuOp,
    ];

    pub const COUNT: usize = 5;

    /// Dense index for array storage.
    pub fn idx(&self) -> usize {
        match self {
            CostUnit::SeqPage => 0,
            CostUnit::RandPage => 1,
            CostUnit::CpuTuple => 2,
            CostUnit::CpuIndex => 3,
            CostUnit::CpuOp => 4,
        }
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            CostUnit::SeqPage => "c_s",
            CostUnit::RandPage => "c_r",
            CostUnit::CpuTuple => "c_t",
            CostUnit::CpuIndex => "c_i",
            CostUnit::CpuOp => "c_o",
        }
    }
}

impl fmt::Display for CostUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A concrete value per cost unit (e.g. one draw of the system state), in
/// milliseconds per primitive.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UnitValues(pub [f64; CostUnit::COUNT]);

impl Index<CostUnit> for UnitValues {
    type Output = f64;

    fn index(&self, u: CostUnit) -> &f64 {
        &self.0[u.idx()]
    }
}

impl IndexMut<CostUnit> for UnitValues {
    fn index_mut(&mut self, u: CostUnit) -> &mut f64 {
        &mut self.0[u.idx()]
    }
}

impl UnitValues {
    /// Total time of a count vector under these unit values:
    /// `Σ_c n_c · c` (Eq. 1 of the paper).
    pub fn time_for(&self, counts: &UnitCounts) -> f64 {
        self.0.iter().zip(counts.0.iter()).map(|(c, n)| c * n).sum()
    }
}

/// A count vector `(n_s, n_r, n_t, n_i, n_o)` for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UnitCounts(pub [f64; CostUnit::COUNT]);

impl Index<CostUnit> for UnitCounts {
    type Output = f64;

    fn index(&self, u: CostUnit) -> &f64 {
        &self.0[u.idx()]
    }
}

impl IndexMut<CostUnit> for UnitCounts {
    fn index_mut(&mut self, u: CostUnit) -> &mut f64 {
        &mut self.0[u.idx()]
    }
}

impl UnitCounts {
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&n| n == 0.0)
    }
}

/// A distribution per cost unit — either the hardware's ground truth or the
/// calibrated estimate `c ~ N(μ̂, σ̂²)` the predictor works with (§3.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitDists(pub [Normal; CostUnit::COUNT]);

impl Index<CostUnit> for UnitDists {
    type Output = Normal;

    fn index(&self, u: CostUnit) -> &Normal {
        &self.0[u.idx()]
    }
}

impl UnitDists {
    /// Zeroes all variances (the paper's `No Var[c]` ablation, §6.3.3).
    pub fn without_variance(&self) -> UnitDists {
        UnitDists(self.0.map(|n| Normal::point(n.mean())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idx_is_dense_and_stable() {
        for (i, u) in CostUnit::ALL.iter().enumerate() {
            assert_eq!(u.idx(), i);
        }
    }

    #[test]
    fn time_for_is_dot_product() {
        let mut values = UnitValues::default();
        values[CostUnit::SeqPage] = 0.1;
        values[CostUnit::CpuTuple] = 0.001;
        let mut counts = UnitCounts::default();
        counts[CostUnit::SeqPage] = 100.0;
        counts[CostUnit::CpuTuple] = 1000.0;
        counts[CostUnit::CpuOp] = 999.0; // zero unit cost
        assert!((values.time_for(&counts) - 11.0).abs() < 1e-12);
    }

    #[test]
    fn without_variance_keeps_means() {
        let dists = UnitDists([
            Normal::new(1.0, 0.1),
            Normal::new(2.0, 0.2),
            Normal::new(3.0, 0.3),
            Normal::new(4.0, 0.4),
            Normal::new(5.0, 0.5),
        ]);
        let flat = dists.without_variance();
        for u in CostUnit::ALL {
            assert_eq!(flat[u].mean(), dists[u].mean());
            assert_eq!(flat[u].var(), 0.0);
        }
    }

    #[test]
    fn symbols_match_paper() {
        assert_eq!(CostUnit::SeqPage.to_string(), "c_s");
        assert_eq!(CostUnit::CpuOp.to_string(), "c_o");
    }
}
