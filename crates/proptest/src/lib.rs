//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the API subset our property tests use: the [`Strategy`] trait over
//! numeric ranges, tuples, and `collection::vec`; [`any`] for primitives;
//! `prop_filter`; the `proptest!` macro with `ProptestConfig::with_cases`;
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the message instead of a minimized counterexample.
//! * **Deterministic seeding.** Cases are generated from a fixed seed mixed
//!   with the case index, so failures reproduce exactly across runs.
//!
//! Swapping the real proptest back in is a one-line Cargo change; test
//! sources need no edits.

use std::ops::Range;

/// SplitMix64 — small, fast, deterministic generator for test inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of test values.
pub trait Strategy {
    type Value: std::fmt::Debug + Clone;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Rejection-sampling filter (no shrinking, bounded retries).
    fn prop_filter<F>(self, whence: impl Into<String>, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            filter,
        }
    }

    /// Mapping combinator.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug + Clone,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    filter: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.filter)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, O: std::fmt::Debug + Clone, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + (rng.next_u64() as usize) % (self.end - self.start)
    }
}

impl Strategy for Range<u64> {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug + Clone {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for a primitive type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, min..max)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Asserts a property; panics with the message on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each function runs `cases` times over freshly
/// generated inputs. Failures report the case index and generated values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                // Seed from the test name so distinct tests explore
                // different streams but each run is reproducible.
                let mut seed: u64 = 0xcbf29ce484222325;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                for case in 0..cfg.cases {
                    let mut rng = $crate::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                    if let Err(err) = result {
                        let msg = err
                            .downcast_ref::<String>()
                            .map(|s| s.as_str())
                            .or_else(|| err.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "property {} failed at case {}/{}: {}\ninputs: {:?}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            msg,
                            ($(&$arg,)*)
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let i = (-5i64..7).generate(&mut rng);
            assert!((-5..7).contains(&i));
            let f = (0.25..0.75f64).generate(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let u = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = TestRng::new(2);
        let s = collection::vec((0i64..4, 0i64..4), 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn filter_rejects() {
        let mut rng = TestRng::new(3);
        let s = (0i64..100).prop_filter("even", |x| x % 2 == 0);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfigLocal::with_cases(8))]

        #[test]
        fn macro_compiles_and_runs(x in 0i64..10, v in collection::vec(0i64..3, 0..4)) {
            prop_assert!((0..10).contains(&x));
            prop_assert!(v.len() < 4);
        }
    }

    use crate::test_runner::Config as ProptestConfigLocal;
}
