//! Property-based tests for the selectivity estimator and covariance bounds.

use proptest::prelude::*;
use uaq_engine::{execute_full, execute_on_samples, PlanBuilder, Pred};
use uaq_selest::{cov_bounds, estimate_selectivities, shared_leaves, SelSource};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Column, Schema, Table, Value};

fn catalog(t: &[(i64, i64)], u: &[(i64, i64)]) -> Catalog {
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a"), Column::int("b")]);
    c.add_table(Table::new(
        "t",
        ts,
        t.iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect(),
    ));
    let us = Schema::new(vec![Column::int("x"), Column::int("y")]);
    c.add_table(Table::new(
        "u",
        us,
        u.iter()
            .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
            .collect(),
    ));
    c
}

fn rows_strategy(min: usize, max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..6, 0i64..40), min..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimates_are_valid_probabilities(
        t in rows_strategy(8, 120),
        u in rows_strategy(8, 80),
        seed in any::<u64>(),
        cut in 0i64..40,
    ) {
        let c = catalog(&t, &u);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let mut rng = Rng::new(seed);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        for e in &est {
            prop_assert!((0.0..=1.0).contains(&e.rho), "rho {}", e.rho);
            prop_assert!(e.var >= 0.0);
            prop_assert!(e.per_leaf_var.iter().all(|&v| v >= 0.0));
            let sum: f64 = e.per_leaf_var.iter().sum();
            prop_assert!((sum - e.var).abs() <= 1e-12 + 1e-9 * e.var);
            prop_assert_eq!(e.source, SelSource::Sampled);
        }
    }

    #[test]
    fn scan_matches_closed_form(
        t in rows_strategy(8, 150),
        seed in any::<u64>(),
        cut in 0i64..40,
    ) {
        // The paper's closed form for selections: S_n² with the exact (n−1)
        // denominator; our generic Q-map path must reproduce it.
        let c = catalog(&t, &[(0, 0)]);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
        let plan = b.build(s);
        let mut rng = Rng::new(seed);
        let samples = c.draw_samples(0.6, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = &estimate_selectivities(&plan, &out, &samples, &c)[0];
        let n = samples.sample("t", 0).len() as f64;
        let m = out.traces[0].output_rows as f64;
        if m > 0.0 {
            let rho = m / n;
            let s2 = ((n - m) * rho * rho + m * (1.0 - rho) * (1.0 - rho)) / (n - 1.0);
            prop_assert!((est.rho - rho).abs() < 1e-12);
            prop_assert!((est.var - s2 / n).abs() < 1e-12);
        } else {
            // Smoothed zero: half a pseudo-occurrence, σ = 2ρ.
            prop_assert!((est.rho - 0.5 / n).abs() < 1e-15);
            prop_assert!((est.var.sqrt() - 2.0 * est.rho).abs() < 1e-15);
        }
    }

    #[test]
    fn bound_ordering_b1_le_b2(
        t in rows_strategy(10, 100),
        u in rows_strategy(10, 80),
        seed in any::<u64>(),
    ) {
        let c = catalog(&t, &u);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::lt("b", Value::Int(20)));
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let mut rng = Rng::new(seed);
        let samples = c.draw_samples(0.4, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        let shared = shared_leaves(&plan, l, j).expect("scan under join");
        let bounds = cov_bounds(&est[l], &est[j], &shared);
        prop_assert!(bounds.b1 <= bounds.b2 + 1e-15, "B1 {} > B2 {}", bounds.b1, bounds.b2);
        prop_assert!(bounds.b1 >= 0.0 && bounds.b2 >= 0.0 && bounds.b3 >= 0.0);
        prop_assert!(bounds.tightest() <= bounds.b1 + 1e-15);
    }

    #[test]
    fn join_estimator_is_unbiased_in_expectation(
        t in rows_strategy(30, 120),
        u in rows_strategy(30, 80),
        seed in any::<u64>(),
    ) {
        // Average ρ_n over several independent sample sets should approach
        // the true selectivity (strong consistency / unbiasedness of the
        // Haas estimator). With 12 sample sets we allow a loose tolerance.
        let c = catalog(&t, &u);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let truth = {
            let out = execute_full(&plan, &c);
            out.traces[j].output_rows as f64 / (t.len() as f64 * u.len() as f64)
        };
        let mut rng = Rng::new(seed);
        let mut sum = 0.0;
        let reps = 12;
        for _ in 0..reps {
            let samples = c.draw_samples(0.5, 1, &mut rng);
            let out = execute_on_samples(&plan, &samples);
            sum += estimate_selectivities(&plan, &out, &samples, &c)[j].rho;
        }
        let mean = sum / reps as f64;
        // Loose statistical check: within 50% relative or 0.02 absolute.
        prop_assert!(
            (mean - truth).abs() < (0.5 * truth).max(0.02),
            "mean {mean} vs truth {truth}"
        );
    }
}
