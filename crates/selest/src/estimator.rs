//! One-pass selectivity and variance estimation (§3.2, Algorithm 1).
//!
//! After executing a plan over the sample tables with provenance tracking
//! (`uaq_engine::execute_on_samples`), this module turns each operator's
//! output provenance into:
//!
//! * `ρ_n` — the Haas et al. estimator of the operator's selectivity, and
//! * `S_n²`-based variance components — one per leaf relation, whose sum
//!   over `S_k²/n_k` estimates `Var[ρ_n]` (Eq. 5 generalised to per-relation
//!   sample sizes).
//!
//! The per-relation split is kept because the restricted variance
//! `S_ρ²(m, n)` over the `m` relations *shared* with another operator is the
//! ingredient of the refined covariance bound (Theorem 7) — it is just the
//! partial sum over the shared leaves.

use crate::gee;

use uaq_engine::{estimate_cardinalities, ExecOutcome, NodeId, Op, Plan, SelKind};
use uaq_stats::Normal;
use uaq_storage::{Catalog, SampleCatalog};

/// How aggregate output cardinalities are estimated (Algorithm 1, lines
/// 2–5, leaves the choice open; the paper uses the optimizer's estimate and
/// names the GEE estimator as the planned extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AggCardinalitySource {
    /// The optimizer's histogram-based estimate (the paper's §6 strategy).
    #[default]
    Optimizer,
    /// The GEE sampling-based distinct-value estimator (the paper's §3.2.2
    /// "we are working to incorporate ... the GEE estimator [11]").
    Gee,
}

/// Where an operator's selectivity estimate came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelSource {
    /// Sampled via `ρ_n`/`S_n²` (scans, filters, joins below any aggregate).
    Sampled,
    /// Child's estimate passed through (sort / materialize).
    PassThrough,
    /// Optimizer cardinality estimate with zero variance (aggregates and
    /// everything above them; Algorithm 1 lines 2–5).
    OptimizerFallback,
}

/// Selectivity estimate of one operator.
#[derive(Debug, Clone)]
pub struct SelEstimate {
    pub node: NodeId,
    /// `ρ_n` — estimated selectivity (output fraction of `∏|R|`).
    pub rho: f64,
    /// Estimated `Var[ρ_n] ≈ Σ_k S_k²/n_k`.
    pub var: f64,
    /// Per-leaf variance components `S_k²/n_k`, aligned with the node's
    /// `leaf_tables`; empty for optimizer-fallback estimates.
    pub per_leaf_var: Vec<f64>,
    /// Sample size `n_k` per leaf, same alignment.
    pub leaf_sample_sizes: Vec<usize>,
    pub source: SelSource,
}

impl SelEstimate {
    /// The asymptotically normal selectivity distribution `X ~ N(ρ_n, σ_n²)`
    /// (§3.2.1, by the CLT).
    pub fn distribution(&self) -> Normal {
        Normal::new(self.rho, self.var.max(0.0))
    }

    /// Restricted variance `S_ρ²(m, n)` over a subset of leaf indices —
    /// the partial sum of per-leaf components (Theorem 7's ingredient).
    pub fn restricted_var(&self, leaf_indices: &[usize]) -> f64 {
        leaf_indices
            .iter()
            .map(|&i| self.per_leaf_var.get(i).copied().unwrap_or(0.0))
            .sum()
    }
}

/// Estimates `ρ_n` and `Var[ρ_n]` for every operator of a plan from a
/// provenance-tracked sample execution.
///
/// `sample_outcome` must come from `execute_on_samples(plan, samples)`;
/// `catalog` supplies the base cardinalities (selectivity denominators) and
/// the optimizer statistics for the aggregate fallback.
pub fn estimate_selectivities(
    plan: &Plan,
    sample_outcome: &ExecOutcome,
    samples: &SampleCatalog,
    catalog: &Catalog,
) -> Vec<SelEstimate> {
    estimate_selectivities_with(
        plan,
        sample_outcome,
        samples,
        catalog,
        AggCardinalitySource::Optimizer,
    )
}

/// Like [`estimate_selectivities`], with a configurable aggregate
/// cardinality source (GEE is the paper's named extension).
pub fn estimate_selectivities_with(
    plan: &Plan,
    sample_outcome: &ExecOutcome,
    samples: &SampleCatalog,
    catalog: &Catalog,
    agg_source: AggCardinalitySource,
) -> Vec<SelEstimate> {
    let optimizer_est = estimate_cardinalities(plan, catalog);
    let mut out: Vec<Option<SelEstimate>> = vec![None; plan.len()];

    for id in plan.postorder() {
        let meta = plan.meta(id);
        let estimate = if meta.agg_at_or_below {
            // Aggregate or above: fixed cardinality estimate, zero variance.
            let denom = plan.leaf_cardinality_product(id, catalog).max(1.0);
            let cardinality = match (agg_source, plan.op(id)) {
                (AggCardinalitySource::Gee, Op::HashAggregate { group_by, .. }) => {
                    let input_est = plan
                        .op(id)
                        .children()
                        .first()
                        .and_then(|&c| out[c].as_ref())
                        .map(|e| e.rho * plan.leaf_cardinality_product(e.node, catalog))
                        .unwrap_or(optimizer_est[id]);
                    gee_aggregate_cardinality(plan, id, group_by, samples, catalog, input_est)
                        .unwrap_or(optimizer_est[id])
                }
                _ => optimizer_est[id],
            };
            SelEstimate {
                node: id,
                rho: (cardinality / denom).clamp(0.0, 1.0),
                var: 0.0,
                per_leaf_var: vec![0.0; meta.leaf_tables.len()],
                leaf_sample_sizes: leaf_sizes(plan, id, samples),
                source: SelSource::OptimizerFallback,
            }
        } else {
            match meta.sel_kind {
                SelKind::PassThrough => {
                    let child = plan.op(id).children()[0];
                    let mut e = out[child].clone().expect("child estimated first");
                    e.node = id;
                    e.source = SelSource::PassThrough;
                    e
                }
                SelKind::Estimable => estimate_sampled(plan, id, sample_outcome, samples),
                SelKind::Aggregate => unreachable!("handled by agg_at_or_below"),
            }
        };
        out[id] = Some(estimate);
    }
    out.into_iter().map(|e| e.expect("all estimated")).collect()
}

fn leaf_sizes(plan: &Plan, id: NodeId, samples: &SampleCatalog) -> Vec<usize> {
    plan.meta(id)
        .leaf_tables
        .iter()
        .map(|l| samples.sample(&l.relation, l.occurrence).len())
        .collect()
}

/// GEE-based group-count estimate for an aggregate node: per grouping
/// column, find the leaf relation that owns the column and apply the GEE
/// distinct estimator to its sample; multiply across columns (independence)
/// capped by the input-cardinality estimate. Returns `None` when a grouping
/// column cannot be resolved to a base relation (e.g. it is itself an
/// aggregate output).
fn gee_aggregate_cardinality(
    plan: &Plan,
    id: NodeId,
    group_by: &[String],
    samples: &SampleCatalog,
    catalog: &Catalog,
    input_estimate: f64,
) -> Option<f64> {
    if group_by.is_empty() {
        return Some(1.0);
    }
    let mut pairs = Vec::with_capacity(group_by.len());
    for col in group_by {
        let leaf = plan
            .meta(id)
            .leaf_tables
            .iter()
            .find(|l| catalog.table(&l.relation).schema().index_of(col).is_some())?;
        pairs.push((
            samples.sample(&leaf.relation, leaf.occurrence),
            col.as_str(),
        ));
    }
    let refs: Vec<(&uaq_storage::SampleTable, &str)> =
        pairs.iter().map(|(s, c)| (*s, *c)).collect();
    Some(gee::gee_group_count(&refs, input_estimate.max(1.0)))
}

/// The sampled case of Algorithm 1: `ρ_n` from the output count, `S_k²` from
/// the `Q_{k,j,n}` counters.
fn estimate_sampled(
    plan: &Plan,
    id: NodeId,
    sample_outcome: &ExecOutcome,
    samples: &SampleCatalog,
) -> SelEstimate {
    let trace = &sample_outcome.traces[id];
    let prov = trace
        .prov
        .as_ref()
        .unwrap_or_else(|| panic!("node {id} has no provenance; was the plan run on samples?"));
    let sizes = leaf_sizes(plan, id, samples);
    let arity = sizes.len();
    assert_eq!(
        prov.arity(),
        arity,
        "provenance arity mismatch at node {id}"
    );

    let denom: f64 = sizes.iter().map(|&n| n as f64).product();
    let count = prov.rows() as f64;
    let rho = if denom > 0.0 { count / denom } else { 0.0 };

    // Zero-output smoothing: an empty sample result does NOT mean the true
    // selectivity is zero with certainty — it means it is below the sample's
    // resolution. Reporting ρ_n = 0 with S_n² = 0 would make the predictor
    // confidently wrong (and break the self-awareness the paper is after).
    // We report half a pseudo-occurrence, ρ = 0.5/∏n_k, with σ = 2ρ: the
    // same ±few-pseudo-occurrences scale the single-occurrence case gets
    // from the Q-map formula (there, σ/ρ = √K). The variance must scale
    // with ρ² — anything coarser (e.g. the binomial ρ(1−ρ)/n_k) is off by
    // ∏_{k'≠k} n_{k'} for joins and explodes through the |R| products of
    // the cost-function coefficients.
    if count == 0.0 && denom > 0.0 {
        let rho = 0.5 / denom;
        let k = sizes.len().max(1) as f64;
        let per_leaf_var: Vec<f64> = sizes.iter().map(|_| (2.0 * rho).powi(2) / k).collect();
        return SelEstimate {
            node: id,
            rho,
            var: per_leaf_var.iter().sum(),
            per_leaf_var,
            leaf_sample_sizes: sizes,
            source: SelSource::Sampled,
        };
    }

    // Q_{k,j,n}: for each leaf k, how many output tuples involve sample step
    // j of that leaf (§3.2.2). The step domain is exactly `0..n_k` (sample
    // table row positions), so the counters live in a dense vector — one
    // strided pass down column k of the flat provenance matrix (indexed
    // loads when the matrix sits behind a selection vector — see
    // `ProvData::for_each_leaf_step`),
    // no hashing, and the Σ_j loop visits steps in index order, keeping the
    // float summation order deterministic (bit-reproducible experiments).
    let mut per_leaf_var = Vec::with_capacity(arity);
    let mut q: Vec<u64> = Vec::new();
    for (k, &n_k) in sizes.iter().enumerate() {
        if n_k < 2 {
            per_leaf_var.push(0.0);
            continue;
        }
        q.clear();
        q.resize(n_k, 0);
        prov.for_each_leaf_step(k, |step| q[step as usize] += 1);
        // D_k = ∏_{k' ≠ k} n_{k'} — the normaliser `n^{K−1}` of Eq. 5.
        let d_k = denom / n_k as f64;
        // Σ_j (Q_j/D_k − ρ)² over all n_k steps (never-seen steps
        // contribute ρ² each).
        let rho_sq = rho * rho;
        let mut sum_sq = 0.0;
        for &qj in &q {
            if qj == 0 {
                sum_sq += rho_sq;
            } else {
                let dev = qj as f64 / d_k - rho;
                sum_sq += dev * dev;
            }
        }
        let s2_k = sum_sq / (n_k as f64 - 1.0);
        per_leaf_var.push(s2_k / n_k as f64);
    }

    SelEstimate {
        node: id,
        rho,
        var: per_leaf_var.iter().sum(),
        per_leaf_var,
        leaf_sample_sizes: sizes,
        source: SelSource::Sampled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_engine::{execute_full, execute_on_samples, PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table, Value};

    fn catalog(rows_t: usize, rows_u: usize) -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..rows_t)
            .map(|i| vec![Value::Int((i % 20) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
        let rows2 = (0..rows_u)
            .map(|i| vec![Value::Int((i % 20) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("u", s2, rows2));
        c
    }

    fn scan_plan(sel: i64, rows: usize) -> Plan {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("b", Value::Int(sel * rows as i64 / 100)));
        b.build(s)
    }

    #[test]
    fn scan_estimate_matches_closed_form() {
        // For a scan the paper derives S_n² ≈ ρ(1 − ρ); our generic Q-map
        // path must reproduce the exact (n−1)-denominator version.
        let c = catalog(5000, 100);
        let mut rng = Rng::new(11);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let plan = scan_plan(30, 5000);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        let e = &est[0];
        assert_eq!(e.source, SelSource::Sampled);
        let n = samples.sample("t", 0).len() as f64;
        let m = out.traces[0].output_rows as f64;
        let rho = m / n;
        assert!((e.rho - rho).abs() < 1e-12);
        let s2_exact = ((n - m) * rho * rho + m * (1.0 - rho) * (1.0 - rho)) / (n - 1.0);
        assert!(
            (e.var - s2_exact / n).abs() < 1e-12,
            "var {} vs closed form {}",
            e.var,
            s2_exact / n
        );
        // And the ρ(1−ρ) approximation is close for large n.
        assert!((e.var - rho * (1.0 - rho) / n).abs() < 1e-4);
    }

    #[test]
    fn scan_estimate_is_consistent() {
        // More samples ⇒ estimate closer to truth and variance shrinking.
        let c = catalog(20_000, 100);
        let plan = scan_plan(30, 20_000);
        let truth = {
            let out = execute_full(&plan, &c);
            out.traces[0].output_rows as f64 / 20_000.0
        };
        let mut rng = Rng::new(12);
        let small = c.draw_samples(0.01, 1, &mut rng);
        let large = c.draw_samples(0.3, 1, &mut rng);
        let est_small = {
            let out = execute_on_samples(&plan, &small);
            estimate_selectivities(&plan, &out, &small, &c)[0].clone()
        };
        let est_large = {
            let out = execute_on_samples(&plan, &large);
            estimate_selectivities(&plan, &out, &large, &c)[0].clone()
        };
        assert!(est_large.var < est_small.var);
        assert!((est_large.rho - truth).abs() < 0.02);
    }

    #[test]
    fn estimated_variance_matches_observed_variance_of_estimator() {
        // Repeat sampling many times; the spread of ρ_n across sample sets
        // should match the average estimated Var[ρ_n] (this is the whole
        // point of S_n²).
        let c = catalog(4000, 100);
        let plan = scan_plan(25, 4000);
        let mut rng = Rng::new(13);
        let mut rhos = Vec::new();
        let mut predicted_vars = Vec::new();
        for _ in 0..300 {
            let samples = c.draw_samples(0.05, 1, &mut rng);
            let out = execute_on_samples(&plan, &samples);
            let e = estimate_selectivities(&plan, &out, &samples, &c)[0].clone();
            rhos.push(e.rho);
            predicted_vars.push(e.var);
        }
        let observed = uaq_stats::sample_variance(&rhos);
        let predicted = uaq_stats::mean(&predicted_vars);
        assert!(
            (observed - predicted).abs() / observed < 0.25,
            "observed {observed} vs predicted {predicted}"
        );
    }

    #[test]
    fn join_estimate_unbiased_and_variance_conservative() {
        // `S_n²/n` estimates `σ²/n`, the *leading* term of Var[ρ_n]
        // (Theorem 3). With uniform join keys the per-relation components
        // σ_k² vanish and the estimator keeps only finite-sample mass, so it
        // over-reports by up to ~2× — the conservative direction. It must
        // stay within a small constant factor and never grossly undershoot.
        let c = catalog(2000, 1000);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let truth = {
            let out = execute_full(&plan, &c);
            out.traces[j].output_rows as f64 / (2000.0 * 1000.0)
        };
        let mut rng = Rng::new(14);
        let mut rhos = Vec::new();
        let mut vars = Vec::new();
        for _ in 0..200 {
            let samples = c.draw_samples(0.05, 1, &mut rng);
            let out = execute_on_samples(&plan, &samples);
            let e = estimate_selectivities(&plan, &out, &samples, &c)[j].clone();
            rhos.push(e.rho);
            vars.push(e.var);
        }
        let mean_rho = uaq_stats::mean(&rhos);
        assert!(
            (mean_rho - truth).abs() / truth < 0.05,
            "mean ρ {mean_rho} vs truth {truth}"
        );
        let observed = uaq_stats::sample_variance(&rhos);
        let predicted = uaq_stats::mean(&vars);
        let ratio = predicted / observed;
        assert!(
            (0.7..3.0).contains(&ratio),
            "predicted/observed variance ratio {ratio} (observed {observed}, predicted {predicted})"
        );
    }

    #[test]
    fn join_variance_estimate_tracks_skewed_keys() {
        // With a skewed key distribution the per-relation components σ_k²
        // dominate and `S_n²/n` is sharp: predicted ≈ observed.
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a")]);
        // t.a: value v appears 2(v+1) times, v ∈ 0..40 (skewed).
        let mut rows = Vec::new();
        for v in 0..40i64 {
            for _ in 0..2 * (v + 1) {
                rows.push(vec![Value::Int(v)]);
            }
        }
        c.add_table(Table::new("t", s, rows));
        // u.x: value v appears (v+1) times.
        let s2 = Schema::new(vec![Column::int("x")]);
        let mut rows2 = Vec::new();
        for v in 0..40i64 {
            for _ in 0..(v + 1) {
                rows2.push(vec![Value::Int(v)]);
            }
        }
        c.add_table(Table::new("u", s2, rows2));

        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let mut rng = Rng::new(19);
        let mut rhos = Vec::new();
        let mut vars = Vec::new();
        for _ in 0..300 {
            let samples = c.draw_samples(0.25, 1, &mut rng);
            let out = execute_on_samples(&plan, &samples);
            let e = estimate_selectivities(&plan, &out, &samples, &c)[j].clone();
            rhos.push(e.rho);
            vars.push(e.var);
        }
        let observed = uaq_stats::sample_variance(&rhos);
        let predicted = uaq_stats::mean(&vars);
        let ratio = predicted / observed;
        assert!(
            (0.7..1.6).contains(&ratio),
            "predicted/observed variance ratio {ratio} (observed {observed}, predicted {predicted})"
        );
    }

    #[test]
    fn join_per_leaf_components_sum_to_var() {
        let c = catalog(1000, 500);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let mut rng = Rng::new(15);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let e = &estimate_selectivities(&plan, &out, &samples, &c)[j];
        assert_eq!(e.per_leaf_var.len(), 2);
        assert!((e.per_leaf_var.iter().sum::<f64>() - e.var).abs() < 1e-15);
        assert!(e.per_leaf_var.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn pass_through_copies_child() {
        let c = catalog(1000, 100);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("b", Value::Int(300)));
        let srt = b.sort(s, vec![("b".into(), uaq_engine::SortOrder::Asc)]);
        let plan = b.build(srt);
        let mut rng = Rng::new(16);
        let samples = c.draw_samples(0.2, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        assert_eq!(est[1].source, SelSource::PassThrough);
        assert_eq!(est[1].rho, est[0].rho);
        assert_eq!(est[1].var, est[0].var);
    }

    #[test]
    fn aggregate_falls_back_to_optimizer() {
        let c = catalog(1000, 100);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let a = b.aggregate(
            s,
            vec!["a".into()],
            vec![("cnt".into(), uaq_engine::AggFunc::CountStar)],
        );
        let plan = b.build(a);
        let mut rng = Rng::new(17);
        let samples = c.draw_samples(0.2, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        assert_eq!(est[a].source, SelSource::OptimizerFallback);
        assert_eq!(est[a].var, 0.0);
        // Optimizer estimates 20 groups out of 1000 rows ⇒ ρ = 0.02.
        assert!((est[a].rho - 0.02).abs() < 1e-9);
        // The scan below is still sampled.
        assert_eq!(est[s].source, SelSource::Sampled);
    }

    #[test]
    fn gee_source_changes_aggregate_estimate_only() {
        let c = catalog(1000, 100);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let a = b.aggregate(
            s,
            vec!["a".into()],
            vec![("cnt".into(), uaq_engine::AggFunc::CountStar)],
        );
        let plan = b.build(a);
        let mut rng = Rng::new(77);
        let samples = c.draw_samples(0.3, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let opt =
            estimate_selectivities_with(&plan, &out, &samples, &c, AggCardinalitySource::Optimizer);
        let gee = estimate_selectivities_with(&plan, &out, &samples, &c, AggCardinalitySource::Gee);
        // The scan estimate is untouched; the aggregate may differ but both
        // must be sane (catalog has 20 distinct `a` values in 1000 rows).
        assert_eq!(opt[s].rho, gee[s].rho);
        let truth = 20.0 / 1000.0;
        for est in [&opt[a], &gee[a]] {
            assert_eq!(est.var, 0.0);
            assert!(
                (est.rho - truth).abs() / truth < 0.6,
                "agg rho {} vs truth {truth}",
                est.rho
            );
        }
    }

    #[test]
    fn empty_sample_output_is_smoothed_not_certain_zero() {
        let c = catalog(1000, 100);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::eq("b", Value::Int(-5)));
        let plan = b.build(s);
        let mut rng = Rng::new(18);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        let n = samples.sample("t", 0).len() as f64;
        // Half a pseudo-occurrence, with uncertainty twice the estimate.
        assert!((est[0].rho - 0.5 / n).abs() < 1e-12);
        assert!(est[0].var > 0.0);
        let std = est[0].var.sqrt();
        assert!(
            (std - 2.0 * est[0].rho).abs() < 1e-12,
            "std {std} vs rho {}",
            est[0].rho
        );
    }

    #[test]
    fn distribution_wraps_estimate() {
        let e = SelEstimate {
            node: 0,
            rho: 0.3,
            var: 0.01,
            per_leaf_var: vec![0.01],
            leaf_sample_sizes: vec![100],
            source: SelSource::Sampled,
        };
        let d = e.distribution();
        assert_eq!(d.mean(), 0.3);
        assert_eq!(d.var(), 0.01);
        assert_eq!(e.restricted_var(&[0]), 0.01);
        assert_eq!(e.restricted_var(&[]), 0.0);
    }
}
