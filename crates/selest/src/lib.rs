//! # uaq-selest
//!
//! Sampling-based selectivity estimation for whole plans in one pass over
//! sample tables (§3.2 / Algorithm 1 of the paper): `ρ_n` estimates, their
//! `S_n²` variance components per leaf relation, and the covariance upper
//! bounds B1/B2/B3 (Theorems 7–8) plus the second-moment bounds
//! (Theorems 9–10) used by the running-time variance computation.

pub mod covariance;
pub mod estimator;
pub mod gee;
pub mod pass;

pub use covariance::{
    cov_bound_square_linear, cov_bound_squares, cov_bounds, shared_leaves, CovBounds, SharedLeaves,
};
pub use estimator::{
    estimate_selectivities, estimate_selectivities_with, AggCardinalitySource, SelEstimate,
    SelSource,
};
pub use gee::{gee_distinct, gee_distinct_for_column, gee_group_count, FrequencyProfile};
pub use pass::SelEstimates;
