//! The GEE distinct-value estimator (Charikar, Chaudhuri, Motwani,
//! Narasayya: "Towards estimation error guarantees for distinct values",
//! PODS 2000) — the estimator the paper names as the way to extend
//! sampling-based selectivity estimation to aggregates ("we are working to
//! incorporate sampling-based estimators for aggregates (e.g., the GEE
//! estimator [11]) into our current framework", §3.2.2).
//!
//! GEE estimates the number of distinct values `D` of a column from a
//! uniform sample of `n` of `N` rows:
//!
//! `D̂ = sqrt(N/n) · f₁ + Σ_{j≥2} f_j`
//!
//! where `f_j` counts the values seen exactly `j` times in the sample.
//! Values seen twice or more are (almost surely) frequent enough to have
//! been counted; each *singleton* stands in for `sqrt(N/n)` unseen values —
//! the geometric mean of the two extreme hypotheses (a singleton is unique
//! in the table vs. a singleton's value fills the unsampled rows), which is
//! what gives GEE its `O(sqrt(N/n))` ratio-error guarantee.

use std::collections::HashMap;
#[cfg(test)]
use uaq_storage::Value;
use uaq_storage::{ColumnData, SampleTable};

/// Frequency-of-frequencies profile of a sample column.
#[derive(Debug, Clone, Default)]
pub struct FrequencyProfile {
    /// `f[j] = f_{j+1}`: number of distinct values seen exactly `j+1` times.
    freq_of_freq: Vec<usize>,
    /// Sample size `n`.
    n: usize,
}

impl FrequencyProfile {
    /// Profiles one column of a sample (by column index). Reads the typed
    /// column directly — materializing the sample's row mirror just to
    /// count one column would undo the columnar draw fast path.
    pub fn from_sample_column(sample: &SampleTable, column_idx: usize) -> Self {
        let counts: Vec<usize> = match sample.table().columns()[column_idx].as_ref() {
            ColumnData::Int(v) => {
                let mut m: HashMap<i64, usize> = HashMap::new();
                for &x in v {
                    *m.entry(x).or_insert(0) += 1;
                }
                m.into_values().collect()
            }
            ColumnData::Float(v) => {
                // Bit equality, matching `Value::eq` on floats.
                let mut m: HashMap<u64, usize> = HashMap::new();
                for &x in v {
                    *m.entry(x.to_bits()).or_insert(0) += 1;
                }
                m.into_values().collect()
            }
            ColumnData::Str(v) => {
                let mut m: HashMap<&str, usize> = HashMap::new();
                for x in v {
                    *m.entry(x).or_insert(0) += 1;
                }
                m.into_values().collect()
            }
        };
        let mut freq_of_freq: Vec<usize> = Vec::new();
        for &c in &counts {
            if c > freq_of_freq.len() {
                freq_of_freq.resize(c, 0);
            }
            freq_of_freq[c - 1] += 1;
        }
        Self {
            freq_of_freq,
            n: sample.len(),
        }
    }

    /// Number of values seen exactly `j` times (`j ≥ 1`).
    pub fn f(&self, j: usize) -> usize {
        if j == 0 {
            0
        } else {
            self.freq_of_freq.get(j - 1).copied().unwrap_or(0)
        }
    }

    /// Distinct values observed in the sample (`Σ_j f_j`).
    pub fn distinct_in_sample(&self) -> usize {
        self.freq_of_freq.iter().sum()
    }

    pub fn sample_size(&self) -> usize {
        self.n
    }
}

/// The GEE estimate of the number of distinct values in a base relation of
/// `base_rows` rows, from a profile of an `n`-row uniform sample.
///
/// Clamped to `[distinct_in_sample, base_rows]` — the estimator can
/// otherwise exceed the table size on pathological profiles.
pub fn gee_distinct(profile: &FrequencyProfile, base_rows: usize) -> f64 {
    if profile.n == 0 || base_rows == 0 {
        return 0.0;
    }
    let scale = (base_rows as f64 / profile.n as f64).sqrt();
    let singletons = profile.f(1) as f64;
    let repeated = (profile.distinct_in_sample() - profile.f(1)) as f64;
    (scale * singletons + repeated)
        .max(profile.distinct_in_sample() as f64)
        .min(base_rows as f64)
}

/// Convenience: GEE distinct estimate for a named column of a sample table.
pub fn gee_distinct_for_column(sample: &SampleTable, column: &str) -> f64 {
    let idx = sample.table().schema().expect_index(column);
    let profile = FrequencyProfile::from_sample_column(sample, idx);
    gee_distinct(&profile, sample.base_rows())
}

/// GEE-based output-cardinality estimate for a group-by over the given
/// columns: the product of per-column GEE distinct estimates (independence
/// across grouping columns, as the optimizer assumes), capped by the
/// estimated input cardinality.
pub fn gee_group_count(samples: &[(&SampleTable, &str)], input_cardinality_estimate: f64) -> f64 {
    let product: f64 = samples
        .iter()
        .map(|(s, col)| gee_distinct_for_column(s, col))
        .product();
    product.min(input_cardinality_estimate).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table};

    fn table_with_distinct(d: usize, rows: usize, skewed: bool, seed: u64) -> Table {
        let mut rng = Rng::new(seed);
        let schema = Schema::new(vec![Column::int("v")]);
        let zipf = uaq_stats::Zipf::new(d, if skewed { 1.0 } else { 0.0 });
        let data = (0..rows)
            .map(|_| vec![Value::Int(zipf.sample(&mut rng) as i64)])
            .collect();
        Table::new("t", schema, data)
    }

    fn true_distinct(t: &Table) -> usize {
        let mut seen = std::collections::HashSet::new();
        for row in t.rows() {
            seen.insert(row[0].as_int());
        }
        seen.len()
    }

    #[test]
    fn frequency_profile_counts() {
        // Values: 1,1,1,2,2,3 → f1=1 (the 3), f2=1 (the 2), f3=1 (the 1).
        let schema = Schema::new(vec![Column::int("v")]);
        let rows = [1, 1, 1, 2, 2, 3]
            .iter()
            .map(|&v| vec![Value::Int(v)])
            .collect();
        let base = Table::new("t", schema, rows);
        let mut rng = Rng::new(1);
        // Sample the whole table (n = |R| by the floor rule).
        let s = SampleTable::draw(&base, 6, 0, &mut rng);
        let p = FrequencyProfile::from_sample_column(&s, 0);
        assert_eq!(p.sample_size(), 6);
        assert_eq!(
            p.distinct_in_sample(),
            p.f(1) + p.f(2) + p.f(3) + p.f(4) + p.f(5) + p.f(6)
        );
        assert_eq!(p.f(0), 0);
    }

    #[test]
    fn gee_is_exact_when_sample_is_the_table() {
        // With n = N the scale factor is 1 and GEE returns the exact count.
        let t = table_with_distinct(50, 400, false, 7);
        let truth = true_distinct(&t);
        let mut rng = Rng::new(8);
        let s = SampleTable::draw(&t, 400, 0, &mut rng);
        let p = FrequencyProfile::from_sample_column(&s, 0);
        let est = gee_distinct(&p, 400);
        // Sampling with replacement may miss a few values even at n = N.
        assert!(
            (est - truth as f64).abs() / truth as f64 <= 0.25,
            "est {est} vs truth {truth}"
        );
    }

    #[test]
    fn gee_beats_naive_sample_distinct_on_uniform_data() {
        // Classic failure of the naive estimator: with many distinct values
        // and a small sample, "distinct in sample" under-counts badly; GEE's
        // sqrt(N/n) singleton scaling recovers most of it.
        let t = table_with_distinct(2000, 8000, false, 9);
        let truth = true_distinct(&t) as f64;
        let mut rng = Rng::new(10);
        let s = SampleTable::draw(&t, 800, 0, &mut rng);
        let p = FrequencyProfile::from_sample_column(&s, 0);
        let naive = p.distinct_in_sample() as f64;
        let gee = gee_distinct(&p, 8000);
        assert!(
            (gee - truth).abs() < (naive - truth).abs(),
            "gee {gee} vs naive {naive}, truth {truth}"
        );
        assert!(
            (gee - truth).abs() / truth < 0.5,
            "gee {gee} vs truth {truth}"
        );
    }

    #[test]
    fn gee_is_clamped() {
        let t = table_with_distinct(10, 100, false, 11);
        let mut rng = Rng::new(12);
        let s = SampleTable::draw(&t, 30, 0, &mut rng);
        let p = FrequencyProfile::from_sample_column(&s, 0);
        let est = gee_distinct(&p, 100);
        assert!(est >= p.distinct_in_sample() as f64);
        assert!(est <= 100.0);
    }

    #[test]
    fn gee_handles_skew() {
        // Zipf data: a few heavy values plus a long tail of rare ones.
        let t = table_with_distinct(500, 5000, true, 13);
        let truth = true_distinct(&t) as f64;
        let mut rng = Rng::new(14);
        let s = SampleTable::draw(&t, 500, 0, &mut rng);
        let p = FrequencyProfile::from_sample_column(&s, 0);
        let est = gee_distinct(&p, 5000);
        // GEE's guarantee is a ratio error of O(sqrt(N/n)) ≈ 3.2 here; in
        // practice it lands much closer.
        let ratio = (est / truth).max(truth / est);
        assert!(
            ratio < 3.2,
            "ratio error {ratio} (est {est}, truth {truth})"
        );
    }

    #[test]
    fn group_count_caps_at_input() {
        let t = table_with_distinct(40, 1000, false, 15);
        let mut rng = Rng::new(16);
        let s = SampleTable::draw(&t, 200, 0, &mut rng);
        let est = gee_group_count(&[(&s, "v"), (&s, "v")], 100.0);
        assert!(est <= 100.0);
        assert!(est >= 1.0);
    }

    #[test]
    fn empty_inputs() {
        let p = FrequencyProfile::default();
        assert_eq!(gee_distinct(&p, 0), 0.0);
        assert_eq!(gee_distinct(&p, 100), 0.0);
    }
}
