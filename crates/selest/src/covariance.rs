//! Covariance bounds between selectivity estimates (§5.3.2, Appendix A.7/A.8).
//!
//! Two operators' estimates are correlated iff one is a descendant of the
//! other (Lemma 3 — they then share sample tables). The covariances cannot
//! be computed exactly, so the paper derives three upper bounds for
//! `|Cov(ρ_n, ρ'_n)|` and companion bounds for the second-moment covariances
//! `|Cov(ρ_n², ρ'_n²)|` and `|Cov(ρ_n², ρ'_n)|` needed by quadratic/product
//! cost-function terms:
//!
//! * **B1** (Theorem 7): `sqrt(S_ρ²(m,n) · S_ρ'²(m,n))` with the variances
//!   *restricted to the m shared relations* — the tightest, and directly
//!   computable from the per-leaf components of [`SelEstimate`].
//! * **B2** (Theorem 7): plain Cauchy–Schwarz `sqrt(Var[ρ_n] Var[ρ'_n])`.
//! * **B3** (Theorem 8): `f(n,m)·g(ρ)g(ρ')` with `f = 1 − (1 − 1/n)^m`,
//!   `g(ρ) = sqrt(ρ(1−ρ))`.

use crate::estimator::SelEstimate;
use uaq_engine::{NodeId, Plan};

/// `g(ρ) = sqrt(ρ(1−ρ))` (Theorem 8).
pub fn g(rho: f64) -> f64 {
    let r = rho.clamp(0.0, 1.0);
    (r * (1.0 - r)).sqrt()
}

/// `h(ρ) = sqrt(ρ(1−ρ)(ρ − ρ² + 1))` (Theorem 9).
pub fn h(rho: f64) -> f64 {
    let r = rho.clamp(0.0, 1.0);
    (r * (1.0 - r) * (r - r * r + 1.0)).sqrt()
}

/// The shared-leaf structure between a descendant operator and an ancestor.
#[derive(Debug, Clone)]
pub struct SharedLeaves {
    /// Leaf indices in the descendant's `leaf_tables` (all of them: for an
    /// ancestor-descendant pair the descendant's leaves are a subset).
    pub in_descendant: Vec<usize>,
    /// Matching leaf indices in the ancestor's `leaf_tables`.
    pub in_ancestor: Vec<usize>,
    /// `m = |R ∩ R'|`.
    pub m: usize,
}

/// Matches the descendant's leaf refs inside the ancestor's leaf list.
/// Returns `None` when the operators share no relations (⇒ independent, by
/// Lemma 1) or are not in an ancestor-descendant relationship.
pub fn shared_leaves(plan: &Plan, a: NodeId, b: NodeId) -> Option<SharedLeaves> {
    let (desc, anc) = if plan.is_descendant(a, b) {
        (a, b)
    } else if plan.is_descendant(b, a) {
        (b, a)
    } else {
        return None;
    };
    let desc_leaves = &plan.meta(desc).leaf_tables;
    let anc_leaves = &plan.meta(anc).leaf_tables;
    let mut in_descendant = Vec::with_capacity(desc_leaves.len());
    let mut in_ancestor = Vec::with_capacity(desc_leaves.len());
    for (i, leaf) in desc_leaves.iter().enumerate() {
        let j = anc_leaves
            .iter()
            .position(|l| l == leaf)
            .expect("descendant leaves are a subset of ancestor leaves");
        in_descendant.push(i);
        in_ancestor.push(j);
    }
    if in_descendant.is_empty() {
        return None;
    }
    Some(SharedLeaves {
        m: in_descendant.len(),
        in_descendant,
        in_ancestor,
    })
}

/// All three bounds for `|Cov(ρ_n, ρ'_n)|`, for inspection/ablation.
#[derive(Debug, Clone, Copy)]
pub struct CovBounds {
    pub b1: f64,
    pub b2: f64,
    pub b3: f64,
}

impl CovBounds {
    /// The bound actually used: B1, which Theorem 7 proves ≤ B2 and which
    /// Appendix A.8 shows is also ≤ B3.
    pub fn tightest(&self) -> f64 {
        self.b1.min(self.b2).min(self.b3)
    }
}

/// Computes B1/B2/B3 for a descendant-ancestor pair of estimates.
///
/// `desc`/`anc` must be oriented (use [`shared_leaves`] to discover the
/// orientation). Operators estimated via the optimizer fallback have zero
/// variance components and therefore zero bounds — matching the paper's
/// `S_n² = 0` convention for aggregates.
pub fn cov_bounds(desc: &SelEstimate, anc: &SelEstimate, shared: &SharedLeaves) -> CovBounds {
    // B1: restricted variances over the shared leaves.
    let s2_desc = desc.restricted_var(&shared.in_descendant);
    let s2_anc = anc.restricted_var(&shared.in_ancestor);
    let b1 = (s2_desc * s2_anc).sqrt();

    // B2: full Cauchy–Schwarz.
    let b2 = (desc.var.max(0.0) * anc.var.max(0.0)).sqrt();

    // B3: f(n, m)·g(ρ)g(ρ') with n = the smallest shared sample size
    // (conservative: f grows as n shrinks).
    let n = shared
        .in_descendant
        .iter()
        .map(|&i| desc.leaf_sample_sizes.get(i).copied().unwrap_or(usize::MAX))
        .min()
        .unwrap_or(usize::MAX);
    let b3 = if n == usize::MAX || n == 0 {
        f64::INFINITY
    } else {
        let f = 1.0 - (1.0 - 1.0 / n as f64).powi(shared.m as i32);
        f * g(desc.rho) * g(anc.rho)
    };

    CovBounds { b1, b2, b3 }
}

/// Theorem 9 bound for `|Cov(ρ_n², (ρ'_n)²)|`, using the large-`n`
/// approximation `f(n,m) ≈ (K + K' + 4m)·sqrt(K K')/n²`.
pub fn cov_bound_squares(desc: &SelEstimate, anc: &SelEstimate, shared: &SharedLeaves) -> f64 {
    let k = desc.leaf_sample_sizes.len() as f64;
    let k2 = anc.leaf_sample_sizes.len() as f64;
    let m = shared.m as f64;
    let n = min_shared_n(desc, shared);
    if n == 0.0 {
        return f64::INFINITY;
    }
    let f = (k + k2 + 4.0 * m) * (k * k2).sqrt() / (n * n);
    f * h(desc.rho) * h(anc.rho)
}

/// Theorem 10 bound for `|Cov(ρ_n², ρ'_n)|` where `ρ_n` is the squared one,
/// using `f(n,m) ≈ (K + 2m)·sqrt(K K')/n²`.
pub fn cov_bound_square_linear(
    squared: &SelEstimate,
    linear: &SelEstimate,
    shared_m: usize,
    n: usize,
) -> f64 {
    let k = squared.leaf_sample_sizes.len() as f64;
    let k2 = linear.leaf_sample_sizes.len() as f64;
    if n == 0 {
        return f64::INFINITY;
    }
    let nf = n as f64;
    let f = (k + 2.0 * shared_m as f64) * (k * k2).sqrt() / (nf * nf);
    f * h(squared.rho) * g(linear.rho)
}

fn min_shared_n(desc: &SelEstimate, shared: &SharedLeaves) -> f64 {
    shared
        .in_descendant
        .iter()
        .map(|&i| desc.leaf_sample_sizes.get(i).copied().unwrap_or(0))
        .min()
        .unwrap_or(0) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::estimate_selectivities;
    use uaq_engine::{execute_on_samples, PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Catalog, Column, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..2000)
            .map(|i| vec![Value::Int((i % 40) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
        let rows2 = (0..1000)
            .map(|i| vec![Value::Int((i % 40) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("u", s2, rows2));
        let s3 = Schema::new(vec![Column::int("p"), Column::int("q")]);
        let rows3 = (0..500)
            .map(|i| vec![Value::Int((i % 40) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("v", s3, rows3));
        c
    }

    /// (R1 ⋈ R2) ⋈ R3 — Figure 1 / Example 5 of the paper.
    fn three_way_plan() -> uaq_engine::Plan {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::True);
        let u = b.seq_scan("u", Pred::True);
        let j1 = b.hash_join(t, u, "a", "x");
        let v = b.seq_scan("v", Pred::True);
        let j2 = b.hash_join(j1, v, "a", "p");
        b.build(j2)
    }

    #[test]
    fn shared_leaves_for_nested_joins() {
        let plan = three_way_plan();
        // j1 (node 2) is a descendant of j2 (node 4); shares t and u.
        let s = shared_leaves(&plan, 2, 4).expect("ancestor-descendant");
        assert_eq!(s.m, 2);
        assert_eq!(s.in_descendant, vec![0, 1]);
        assert_eq!(s.in_ancestor, vec![0, 1]);
        // Scan of t (node 0) under j2 shares one relation.
        let s2 = shared_leaves(&plan, 0, 4).expect("scan under join");
        assert_eq!(s2.m, 1);
    }

    #[test]
    fn siblings_are_independent() {
        let plan = three_way_plan();
        // Scan t (0) and scan u (1) are not ancestor-descendant.
        assert!(shared_leaves(&plan, 0, 1).is_none());
        // j1 (2) and scan v (3) neither (Lemma 3 / Example 5:
        // Cov(X4, X3) = 0).
        assert!(shared_leaves(&plan, 2, 3).is_none());
    }

    #[test]
    fn b1_is_tightest_bound() {
        let c = catalog();
        let plan = three_way_plan();
        let mut rng = Rng::new(21);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        let shared = shared_leaves(&plan, 2, 4).expect("shared");
        let bounds = cov_bounds(&est[2], &est[4], &shared);
        assert!(
            bounds.b1 <= bounds.b2 + 1e-15,
            "B1 {} > B2 {}",
            bounds.b1,
            bounds.b2
        );
        assert!(bounds.b1 > 0.0);
        assert_eq!(bounds.tightest(), bounds.b1.min(bounds.b2).min(bounds.b3));
    }

    #[test]
    fn empirical_covariance_respects_b1() {
        // Monte Carlo over independent sample sets: the observed covariance
        // between a join's estimate and its descendant scan's estimate must
        // not exceed the average B1 bound (up to statistical noise).
        let c = catalog();
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(1000)));
        let u = b.seq_scan("u", Pred::True);
        let j = b.hash_join(t, u, "a", "x");
        let plan = b.build(j);
        let mut rng = Rng::new(22);
        let mut scan_rhos = Vec::new();
        let mut join_rhos = Vec::new();
        let mut b1s = Vec::new();
        for _ in 0..250 {
            let samples = c.draw_samples(0.08, 1, &mut rng);
            let out = execute_on_samples(&plan, &samples);
            let est = estimate_selectivities(&plan, &out, &samples, &c);
            scan_rhos.push(est[t].rho);
            join_rhos.push(est[j].rho);
            let shared = shared_leaves(&plan, t, j).expect("shared");
            b1s.push(cov_bounds(&est[t], &est[j], &shared).b1);
        }
        let n = scan_rhos.len() as f64;
        let ms = uaq_stats::mean(&scan_rhos);
        let mj = uaq_stats::mean(&join_rhos);
        let cov = scan_rhos
            .iter()
            .zip(&join_rhos)
            .map(|(a, b)| (a - ms) * (b - mj))
            .sum::<f64>()
            / (n - 1.0);
        let avg_b1 = uaq_stats::mean(&b1s);
        assert!(
            cov.abs() <= avg_b1 * 1.3,
            "empirical |cov| {} exceeds B1 {}",
            cov.abs(),
            avg_b1
        );
        // The estimates really are positively correlated (shared samples).
        assert!(cov > 0.0, "expected positive correlation, got {cov}");
    }

    #[test]
    fn g_and_h_shapes() {
        assert_eq!(g(0.0), 0.0);
        assert_eq!(g(1.0), 0.0);
        assert!((g(0.5) - 0.5).abs() < 1e-12);
        // h(ρ) ≥ g(ρ): the second-moment envelope is wider.
        for r in [0.1, 0.3, 0.5, 0.9] {
            assert!(h(r) >= g(r));
        }
        // Out-of-range inputs are clamped, not NaN.
        assert_eq!(g(-0.1), 0.0);
        assert_eq!(g(1.1), 0.0);
    }

    #[test]
    fn optimizer_fallback_gives_zero_bounds() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::True);
        let agg = b.aggregate(
            t,
            vec!["a".into()],
            vec![("cnt".into(), uaq_engine::AggFunc::CountStar)],
        );
        let f = b.filter(agg, Pred::gt("cnt", Value::Int(0)));
        let plan = b.build(f);
        let mut rng = Rng::new(23);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let out = execute_on_samples(&plan, &samples);
        let est = estimate_selectivities(&plan, &out, &samples, &c);
        let shared = shared_leaves(&plan, t, f).expect("scan under filter");
        let bounds = cov_bounds(&est[t], &est[f], &shared);
        assert_eq!(bounds.b1, 0.0);
        assert_eq!(bounds.b2, 0.0);
    }

    #[test]
    fn square_bounds_shrink_with_sample_size() {
        let mk = |n: usize| crate::estimator::SelEstimate {
            node: 0,
            rho: 0.4,
            var: 0.001,
            per_leaf_var: vec![0.001],
            leaf_sample_sizes: vec![n],
            source: crate::estimator::SelSource::Sampled,
        };
        let shared = SharedLeaves {
            in_descendant: vec![0],
            in_ancestor: vec![0],
            m: 1,
        };
        let small = cov_bound_squares(&mk(100), &mk(100), &shared);
        let large = cov_bound_squares(&mk(1000), &mk(1000), &shared);
        assert!(large < small);
        let sq_lin = cov_bound_square_linear(&mk(100), &mk(100), 1, 100);
        assert!(sq_lin > 0.0 && sq_lin < 1.0);
    }
}
