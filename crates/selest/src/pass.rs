//! The sample pass factored behind a cacheable value object.
//!
//! A prediction's selectivity estimates are a pure function of
//! `(plan, samples, catalog, aggregate-cardinality source)`: the
//! provenance-tracked execution over the sample tables is deterministic,
//! and Algorithm 1's `ρ_n`/`S_n²` arithmetic visits provenance in index
//! order. [`SelEstimates`] packages the result of that pass as an
//! immutable, `Arc`-backed value that can be stored in a cache, cloned in
//! O(1), and re-fed to the rest of the prediction pipeline **bit-exactly**
//! — the foundation of the serving layer's selectivity-estimate cache,
//! which skips the sample pass entirely for repeated query instances.

use crate::estimator::{estimate_selectivities_with, AggCardinalitySource, SelEstimate, SelSource};
use std::ops::Deref;
use std::sync::Arc;
use uaq_engine::{execute_on_samples, Plan};
use uaq_stats::Normal;
use uaq_storage::{Catalog, SampleCatalog};

/// All per-operator selectivity estimates of one plan, shareable and
/// immutable. Derefs to `[SelEstimate]`, so consumers index and iterate it
/// like the plain vector it replaces.
#[derive(Debug, Clone)]
pub struct SelEstimates {
    estimates: Arc<Vec<SelEstimate>>,
}

impl SelEstimates {
    /// Runs the provenance-tracked sample pass (`execute_on_samples`) and
    /// Algorithm 1 end-to-end. Pure: this crate never reads the clock, so
    /// the result is a function of its inputs alone. Wall-clock cost of
    /// the stage — the numerator of the paper's relative-overhead metric —
    /// is captured by callers through `uaq_telemetry::span` when a
    /// recorder is active.
    pub fn compute(
        plan: &Plan,
        samples: &SampleCatalog,
        catalog: &Catalog,
        agg_source: AggCardinalitySource,
    ) -> Self {
        let outcome = execute_on_samples(plan, samples);
        let estimates = estimate_selectivities_with(plan, &outcome, samples, catalog, agg_source);
        Self::from_vec(estimates)
    }

    /// Wraps an already-computed estimate vector.
    pub fn from_vec(estimates: Vec<SelEstimate>) -> Self {
        Self {
            estimates: Arc::new(estimates),
        }
    }

    /// The per-node selectivity distributions `X ~ N(ρ_n, σ_n²)` in node
    /// order — the input of the fitting stage and the fit-cache signature.
    pub fn distributions(&self) -> Vec<Normal> {
        self.estimates.iter().map(|e| e.distribution()).collect()
    }

    /// A copy with every variance component zeroed (the predictor's
    /// "No Var[X]" ablation). Deep-copies the vector: the ablation must not
    /// contaminate a cached value other predictions share.
    pub fn with_zero_variance(&self) -> Self {
        let mut estimates = (*self.estimates).clone();
        for e in &mut estimates {
            e.var = 0.0;
            for v in &mut e.per_leaf_var {
                *v = 0.0;
            }
        }
        Self::from_vec(estimates)
    }

    /// True if both values share one allocation — the property a cache hit
    /// guarantees (stronger than equality; used by tests to prove the
    /// sample pass was actually skipped, not recomputed equal).
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.estimates, &other.estimates)
    }

    /// Canonical byte encoding of every field of every estimate, floats as
    /// IEEE-754 bit patterns. Two values with equal bytes are bit-identical
    /// inputs to the rest of the pipeline; the differential test harness
    /// compares these directly.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.estimates.len() * 64);
        for e in self.estimates.iter() {
            out.extend_from_slice(&(e.node as u64).to_le_bytes());
            out.extend_from_slice(&e.rho.to_bits().to_le_bytes());
            out.extend_from_slice(&e.var.to_bits().to_le_bytes());
            out.extend_from_slice(&(e.per_leaf_var.len() as u64).to_le_bytes());
            for v in &e.per_leaf_var {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            out.extend_from_slice(&(e.leaf_sample_sizes.len() as u64).to_le_bytes());
            for &n in &e.leaf_sample_sizes {
                out.extend_from_slice(&(n as u64).to_le_bytes());
            }
            out.push(match e.source {
                SelSource::Sampled => 0,
                SelSource::PassThrough => 1,
                SelSource::OptimizerFallback => 2,
            });
        }
        out
    }
}

impl Deref for SelEstimates {
    type Target = [SelEstimate];

    fn deref(&self) -> &[SelEstimate] {
        &self.estimates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_engine::{PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table, Value};

    fn setup() -> (Catalog, SampleCatalog, Plan) {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..2000)
            .map(|i| vec![Value::Int((i % 20) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let mut rng = Rng::new(3);
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(600)));
        let plan = b.build(t);
        (c, samples, plan)
    }

    #[test]
    fn compute_matches_direct_estimation() {
        let (c, samples, plan) = setup();
        let est = SelEstimates::compute(&plan, &samples, &c, AggCardinalitySource::Optimizer);
        let outcome = execute_on_samples(&plan, &samples);
        let direct = estimate_selectivities_with(
            &plan,
            &outcome,
            &samples,
            &c,
            AggCardinalitySource::Optimizer,
        );
        assert_eq!(est.len(), direct.len());
        for (a, b) in est.iter().zip(&direct) {
            assert_eq!(a.rho.to_bits(), b.rho.to_bits());
            assert_eq!(a.var.to_bits(), b.var.to_bits());
        }
        // Recomputing is deterministic down to the bytes.
        let again = SelEstimates::compute(&plan, &samples, &c, AggCardinalitySource::Optimizer);
        assert_eq!(est.canonical_bytes(), again.canonical_bytes());
        assert!(!est.ptr_eq(&again));
    }

    #[test]
    fn clones_share_the_allocation() {
        let (c, samples, plan) = setup();
        let est = SelEstimates::compute(&plan, &samples, &c, AggCardinalitySource::Optimizer);
        let clone = est.clone();
        assert!(est.ptr_eq(&clone));
        assert_eq!(est.canonical_bytes(), clone.canonical_bytes());
    }

    #[test]
    fn zero_variance_copy_leaves_original_untouched() {
        let (c, samples, plan) = setup();
        let est = SelEstimates::compute(&plan, &samples, &c, AggCardinalitySource::Optimizer);
        assert!(est[0].var > 0.0);
        let zeroed = est.with_zero_variance();
        assert!(!est.ptr_eq(&zeroed));
        assert_eq!(zeroed[0].var, 0.0);
        assert!(zeroed[0].per_leaf_var.iter().all(|&v| v == 0.0));
        assert!(est[0].var > 0.0, "original must be unchanged");
        assert_eq!(est[0].rho.to_bits(), zeroed[0].rho.to_bits());
    }

    #[test]
    fn canonical_bytes_reflect_every_field() {
        let base = SelEstimates::from_vec(vec![SelEstimate {
            node: 0,
            rho: 0.5,
            var: 0.01,
            per_leaf_var: vec![0.01],
            leaf_sample_sizes: vec![100],
            source: SelSource::Sampled,
        }]);
        let tweak = |f: &mut dyn FnMut(&mut SelEstimate)| {
            let mut e = base[0].clone();
            f(&mut e);
            SelEstimates::from_vec(vec![e]).canonical_bytes()
        };
        let b = base.canonical_bytes();
        assert_ne!(b, tweak(&mut |e| e.rho = 0.6));
        assert_ne!(b, tweak(&mut |e| e.var = 0.02));
        assert_ne!(b, tweak(&mut |e| e.per_leaf_var[0] = 0.02));
        assert_ne!(b, tweak(&mut |e| e.leaf_sample_sizes[0] = 99));
        assert_ne!(b, tweak(&mut |e| e.source = SelSource::PassThrough));
        // -0.0 vs 0.0 rho: distinct bit patterns are distinct bytes.
        assert_ne!(tweak(&mut |e| e.rho = 0.0), tweak(&mut |e| e.rho = -0.0));
    }
}
