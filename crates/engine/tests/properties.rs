//! Property-based tests for the execution engine: algebraic equivalences
//! that must hold for every input.

use proptest::prelude::*;
use uaq_engine::{execute_full, AggFunc, CmpOp, Plan, PlanBuilder, Pred, SortOrder};
use uaq_storage::{Catalog, Column, Row, Schema, Table, Value};

/// Builds a two-table catalog from generated data.
fn catalog(t_rows: &[(i64, i64)], u_rows: &[(i64, i64)]) -> Catalog {
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a"), Column::int("b")]);
    c.add_table(Table::new(
        "t",
        ts,
        t_rows
            .iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect(),
    ));
    let us = Schema::new(vec![Column::int("x"), Column::int("y")]);
    c.add_table(Table::new(
        "u",
        us,
        u_rows
            .iter()
            .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
            .collect(),
    ));
    c
}

fn sorted_rows(rows: &[Row]) -> Vec<String> {
    let mut out: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
    out.sort();
    out
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    prop::collection::vec((0i64..8, -20i64..20), 0..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn hash_join_equals_nested_loop(t in rows_strategy(60), u in rows_strategy(40)) {
        let c = catalog(&t, &u);
        let hash = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t", Pred::True);
            let r = b.seq_scan("u", Pred::True);
            let j = b.hash_join(l, r, "a", "x");
            b.build(j)
        };
        let nl = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t", Pred::True);
            let r = b.seq_scan("u", Pred::True);
            let j = b.nl_join(l, r, "a", "x");
            b.build(j)
        };
        let h = execute_full(&hash, &c);
        let n = execute_full(&nl, &c);
        prop_assert_eq!(sorted_rows(h.rows()), sorted_rows(n.rows()));
    }

    #[test]
    fn filter_over_scan_equals_conjunctive_scan(t in rows_strategy(80), cut in -20i64..20) {
        let c = catalog(&t, &[]);
        let p1 = Pred::ge("a", Value::Int(2));
        let p2 = Pred::lt("b", Value::Int(cut));
        let split = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", p1.clone());
            let f = b.filter(s, p2.clone());
            b.build(f)
        };
        let fused = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", Pred::and(vec![p1, p2]));
            b.build(s)
        };
        prop_assert_eq!(
            sorted_rows(execute_full(&split, &c).rows()),
            sorted_rows(execute_full(&fused, &c).rows())
        );
    }

    #[test]
    fn sort_is_a_permutation_and_ordered(t in rows_strategy(80)) {
        let c = catalog(&t, &[]);
        let plan = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", Pred::True);
            let srt = b.sort(s, vec![("b".into(), SortOrder::Asc), ("a".into(), SortOrder::Desc)]);
            b.build(srt)
        };
        let base = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", Pred::True);
            b.build(s)
        };
        let sorted = execute_full(&plan, &c);
        let unsorted = execute_full(&base, &c);
        prop_assert_eq!(sorted_rows(sorted.rows()), sorted_rows(unsorted.rows()));
        for w in sorted.rows().windows(2) {
            let (b0, b1) = (w[0][1].as_int(), w[1][1].as_int());
            prop_assert!(b0 <= b1);
            if b0 == b1 {
                prop_assert!(w[0][0].as_int() >= w[1][0].as_int());
            }
        }
    }

    #[test]
    fn aggregate_counts_partition_the_input(t in rows_strategy(100)) {
        let c = catalog(&t, &[]);
        let plan = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", Pred::True);
            let a = b.aggregate(s, vec!["a".into()], vec![("cnt".into(), AggFunc::CountStar)]);
            b.build(a)
        };
        let out = execute_full(&plan, &c);
        let total: i64 = out.rows().iter().map(|r| r[1].as_int()).sum();
        prop_assert_eq!(total as usize, t.len());
        // One row per distinct group key.
        let mut keys: Vec<i64> = t.iter().map(|&(a, _)| a).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(out.num_rows(), keys.len());
    }

    #[test]
    fn col_cmp_predicate_matches_manual_filter(t in rows_strategy(80)) {
        let c = catalog(&t, &[]);
        let plan = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", Pred::col_cmp("a", CmpOp::Lt, "b"));
            b.build(s)
        };
        let got = execute_full(&plan, &c).num_rows();
        let expected = t.iter().filter(|&&(a, b)| a < b).count();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn traces_are_consistent_with_outputs(t in rows_strategy(60), u in rows_strategy(40)) {
        let c = catalog(&t, &u);
        let plan: Plan = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t", Pred::ge("b", Value::Int(0)));
            let r = b.seq_scan("u", Pred::True);
            let j = b.hash_join(l, r, "a", "x");
            b.build(j)
        };
        let out = execute_full(&plan, &c);
        // Join inputs must equal child outputs; root output equals rows.
        prop_assert_eq!(out.traces[2].left_input_rows, out.traces[0].output_rows);
        prop_assert_eq!(out.traces[2].right_input_rows, out.traces[1].output_rows);
        prop_assert_eq!(out.traces[2].output_rows, out.num_rows());
        // Scan inputs are the base tables.
        prop_assert_eq!(out.traces[0].left_input_rows, t.len());
        prop_assert_eq!(out.traces[1].left_input_rows, u.len());
    }

    #[test]
    fn cardinality_estimates_are_nonnegative_and_bounded_for_scans(
        t in rows_strategy(100),
        cut in -25i64..25,
    ) {
        let c = catalog(&t, &[]);
        let plan = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t", Pred::le("b", Value::Int(cut)));
            b.build(s)
        };
        let est = uaq_engine::estimate_cardinalities(&plan, &c);
        prop_assert!(est[0] >= 0.0);
        prop_assert!(est[0] <= t.len() as f64 + 1e-9);
    }
}
