//! Stage-two zero-copy data plane: selection vectors, deferred gathers,
//! and the paged result edge.
//!
//! Three layers of evidence:
//!
//! 1. **Equivalence** (proptest): random filter chains — including
//!    selection-over-selection past the flatten bound — with optional join
//!    and sort, executed by the selection-vector engine, must match the
//!    row-at-a-time reference executor bit-identically: rows, traces, and
//!    provenance, in full and sample mode.
//! 2. **Deferral** (deterministic): selective operators must *share* — one
//!    selection `Arc` across a batch's columns, base payloads `ptr_eq` to
//!    the table's, chain depth capped at [`MAX_SELECTION_DEPTH`].
//! 3. **Paging**: [`ExecOutcome::row_pages`] streams exactly `rows()` in
//!    bounded pages without ever building the full row mirror.

use proptest::prelude::*;
use uaq_engine::{
    execute_full, execute_full_rows, execute_on_samples, execute_on_samples_rows, ExecOutcome,
    Plan, PlanBuilder, Pred, SortOrder,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Column, Schema, Table, Value, MAX_SELECTION_DEPTH};

fn catalog(t_rows: &[(i64, i64)], u_rows: &[(i64, i64)]) -> Catalog {
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a"), Column::int("b")]);
    c.add_table(Table::new(
        "t",
        ts,
        t_rows
            .iter()
            .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)])
            .collect(),
    ));
    let us = Schema::new(vec![Column::int("x"), Column::int("y")]);
    c.add_table(Table::new(
        "u",
        us,
        u_rows
            .iter()
            .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)])
            .collect(),
    ));
    c
}

/// Scan → filter chain (arbitrary depth, so chains cross the flatten
/// bound) → optional join → optional sort.
fn chain_plan(chain: &[(usize, i64)], join: bool, sort: bool) -> Plan {
    let mut b = PlanBuilder::new();
    let mut n = b.seq_scan("t", Pred::True);
    for &(which, cut) in chain {
        let pred = match which % 4 {
            0 => Pred::le("a", Value::Int(cut.rem_euclid(8))),
            1 => Pred::ge("a", Value::Int(cut.rem_euclid(8))),
            2 => Pred::lt("b", Value::Int(cut)),
            _ => Pred::ge("b", Value::Int(cut)),
        };
        n = b.filter(n, pred);
    }
    if join {
        let r = b.seq_scan("u", Pred::lt("y", Value::Int(10)));
        n = b.hash_join(n, r, "a", "x");
    }
    if sort {
        n = b.sort(n, vec![("b".into(), SortOrder::Asc)]);
    }
    b.build(n)
}

/// The golden contract: everything observable about the selection-vector
/// outcome — rows, per-node cardinalities, provenance — is bit-identical
/// to the eager row-at-a-time reference. Plus the representation
/// invariant: no slice's chain ever exceeds the flatten bound.
fn assert_equiv(lazy: &ExecOutcome, eager: &ExecOutcome, label: &str) {
    assert_eq!(lazy.num_rows(), eager.num_rows(), "{label}: row count");
    for s in lazy.slices().expect("columnar outcome has slices") {
        assert!(
            s.selection_depth() <= MAX_SELECTION_DEPTH,
            "{label}: selection chain depth {} exceeds the flatten bound",
            s.selection_depth()
        );
    }
    assert_eq!(lazy.rows(), eager.rows(), "{label}: rows");
    assert_eq!(lazy.traces.len(), eager.traces.len(), "{label}: traces");
    for (id, (a, b)) in lazy.traces.iter().zip(&eager.traces).enumerate() {
        assert_eq!(a.output_rows, b.output_rows, "{label}: node {id} out");
        assert_eq!(a.left_input_rows, b.left_input_rows, "{label}: node {id}");
        assert_eq!(a.right_input_rows, b.right_input_rows, "{label}: node {id}");
        assert_eq!(a.prov, b.prov, "{label}: node {id} prov");
    }
}

fn rows_strategy(max: usize) -> impl Strategy<Value = Vec<(i64, i64)>> {
    // Non-empty: `draw_samples` materializes no sample table for an empty
    // relation, and sample-mode scans require one.
    prop::collection::vec((0i64..8, -20i64..20), 1..max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn selection_vector_execution_matches_eager_reference(
        t in rows_strategy(60),
        u in rows_strategy(40),
        chain in prop::collection::vec((0usize..4, -20i64..20), 0..6),
        join in any::<bool>(),
        sort in any::<bool>(),
    ) {
        let c = catalog(&t, &u);
        let plan = chain_plan(&chain, join, sort);

        let full_lazy = execute_full(&plan, &c);
        let full_eager = execute_full_rows(&plan, &c);
        assert_equiv(&full_lazy, &full_eager, "full");

        let samples = c.draw_samples(0.7, 1, &mut Rng::new(11));
        let samp_lazy = execute_on_samples(&plan, &samples);
        let samp_eager = execute_on_samples_rows(&plan, &samples);
        assert_equiv(&samp_lazy, &samp_eager, "sample");
    }
}

fn wide_catalog(n: i64) -> Catalog {
    let mut c = Catalog::new();
    let s = Schema::new(vec![Column::int("a"), Column::int("b"), Column::int("k")]);
    let rows = (0..n)
        .map(|i| vec![Value::Int(i % 10), Value::Int(i), Value::Int(i % 7)])
        .collect();
    c.add_table(Table::new("t", s, rows));
    c
}

#[test]
fn selective_filter_defers_gathers_and_shares_one_selection() {
    let c = wide_catalog(100);
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::lt("b", Value::Int(50)));
    let plan = b.build(s);
    let out = execute_full(&plan, &c);
    assert_eq!(out.num_rows(), 50);

    let slices = out.slices().expect("columnar outcome");
    let table_cols = c.table("t").columns();
    let top = slices[0].top_selection().expect("selective scan");
    for (slice, table_col) in slices.iter().zip(table_cols) {
        // Zero payload copies: the base is the table's own allocation …
        assert!(
            slice.base().ptr_eq(table_col),
            "selective scan must not gather payloads"
        );
        // … and all columns read through the *same* selection vector.
        assert!(
            std::sync::Arc::ptr_eq(slice.top_selection().expect("selected"), top),
            "one shared selection per batch"
        );
    }
    // Densifying at the edge detaches (fresh payloads), as stage one did.
    for (col, table_col) in out.columns().iter().zip(table_cols) {
        assert!(!col.ptr_eq(table_col));
    }
}

#[test]
fn stacked_filters_flatten_past_the_depth_bound() {
    let c = wide_catalog(200);
    let mut b = PlanBuilder::new();
    // Scan + 5 selective filters: 6 selection layers requested, so the
    // chain must have been flattened at least once — and the result must
    // still be exactly what the reference executor computes.
    let mut n = b.seq_scan("t", Pred::lt("b", Value::Int(160)));
    for cut in [140, 110, 80, 50, 20] {
        n = b.filter(n, Pred::lt("b", Value::Int(cut)));
    }
    let plan = b.build(n);
    let out = execute_full(&plan, &c);
    assert_eq!(out.num_rows(), 20);
    for s in out.slices().expect("columnar outcome") {
        let depth = s.selection_depth();
        assert!(
            (1..=MAX_SELECTION_DEPTH).contains(&depth),
            "expected a flattened, still-selective chain, got depth {depth}"
        );
    }
    assert_eq!(out.rows(), execute_full_rows(&plan, &c).rows());
}

#[test]
fn row_pages_concatenate_to_rows_exactly() {
    let c = wide_catalog(103);
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::ge("b", Value::Int(3)));
    let plan = b.build(s);
    let out = execute_full(&plan, &c);
    assert_eq!(out.num_rows(), 100);

    for page_size in [1, 7, 32, 100] {
        let pages: Vec<Vec<_>> = out.row_pages(page_size).collect();
        assert_eq!(pages.len(), out.num_rows().div_ceil(page_size));
        assert!(pages.iter().all(|p| p.len() <= page_size));
        let concat: Vec<_> = pages.into_iter().flatten().collect();
        assert_eq!(concat, out.rows());
    }
}

#[test]
fn row_pages_never_materialize_the_full_mirror() {
    let c = wide_catalog(64);
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::lt("b", Value::Int(48)));
    let plan = b.build(s);
    let out = execute_full(&plan, &c);
    let total: usize = out.row_pages(10).map(|p| p.len()).sum();
    assert_eq!(total, 48);
    assert!(
        !out.rows_materialized(),
        "paged consumption must not build the row cache"
    );
}

#[test]
fn row_pages_edge_cases() {
    let c = wide_catalog(20);

    // Empty result: zero pages.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::lt("b", Value::Int(-1)));
    let plan = b.build(s);
    let out = execute_full(&plan, &c);
    assert_eq!(out.row_pages(8).count(), 0);

    // page_size >= len: one page holding everything.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let plan = b.build(s);
    let out = execute_full(&plan, &c);
    let pages: Vec<Vec<_>> = out.row_pages(1000).collect();
    assert_eq!(pages.len(), 1);
    assert_eq!(pages[0].as_slice(), out.rows());

    // page_size 0 is clamped to 1, not an infinite loop.
    assert_eq!(out.row_pages(0).count(), out.num_rows());

    // A rows-seeded outcome (the reference executor) pages identically.
    let out_ref = execute_full_rows(&plan, &c);
    let ref_pages: Vec<Vec<_>> = out_ref.row_pages(7).collect();
    let concat: Vec<_> = ref_pages.into_iter().flatten().collect();
    assert_eq!(concat, out_ref.rows());
}

#[test]
fn row_pages_serve_the_sample_mode_path() {
    let c = wide_catalog(80);
    let samples = c.draw_samples(0.5, 1, &mut Rng::new(3));
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::lt("b", Value::Int(40)));
    let plan = b.build(s);
    let out = execute_on_samples(&plan, &samples);
    let concat: Vec<_> = out.row_pages(6).flatten().collect();
    assert_eq!(concat, out.rows());
    // Paging must not disturb what the prediction path reads.
    assert!(out.traces[0].prov.is_some());
}

/// Paged consumption of a large TPC-H join result with bounded peak
/// resident rows: run with `cargo test -- --ignored`.
#[test]
#[ignore = "large TPCH result; run explicitly"]
fn row_pages_bound_peak_resident_rows_on_large_tpch_result() {
    use uaq_datagen::GenConfig;
    use uaq_engine::{plan_query, JoinStep, QuerySpec, TableRef};

    let catalog = GenConfig::new(0.01, 0.0, 42).build();
    let plan = plan_query(
        &QuerySpec::scan("stress", TableRef::new("orders", Pred::True)).with_joins(vec![
            JoinStep::new(
                TableRef::new("lineitem", Pred::True),
                "o_orderkey",
                "l_orderkey",
            ),
        ]),
        &catalog,
    );
    let out = execute_full(&plan, &catalog);
    assert!(
        out.num_rows() > 50_000,
        "stress result too small: {}",
        out.num_rows()
    );

    const PAGE: usize = 4096;
    let mut total = 0usize;
    let mut max_page = 0usize;
    for page in out.row_pages(PAGE) {
        max_page = max_page.max(page.len());
        total += page.len();
        // Each page is dropped before the next is built: peak resident
        // row memory is one page.
        drop(page);
    }
    assert_eq!(total, out.num_rows());
    assert!(max_page <= PAGE);
    assert!(
        !out.rows_materialized(),
        "the full {}-row mirror must never exist",
        out.num_rows()
    );
}
