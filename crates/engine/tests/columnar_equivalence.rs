//! Golden equivalence tests: the columnar executor must produce *identical*
//! `ExecOutcome`s — rows, schemas, per-node traces, and flat provenance
//! matrices — to the row-based reference executor (`exec_row`, the seed
//! semantics) on the paper's MICRO, SELJOIN, and TPC-H-like workloads, in
//! both full and sample mode.
//!
//! Because all estimator math (`ρ_n`, `S_n²`, covariance bounds) consumes
//! only `ExecOutcome`, equality here proves the columnar refactor cannot
//! change any prediction.

use uaq_datagen::GenConfig;
use uaq_engine::{
    execute_full, execute_full_rows, execute_on_samples, execute_on_samples_rows, plan_query,
    AggFunc, ExecOutcome, Plan, PlanBuilder, Pred, QuerySpec, SortOrder,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, SampleCatalog, Value};
use uaq_workloads::Benchmark;

/// Asserts two outcomes agree cell-for-cell and trace-for-trace.
fn assert_outcomes_equal(cols: &ExecOutcome, rows: &ExecOutcome, label: &str) {
    assert_eq!(
        cols.schema.len(),
        rows.schema.len(),
        "{label}: schema arity"
    );
    for (a, b) in cols.schema.columns().iter().zip(rows.schema.columns()) {
        assert_eq!(a.name, b.name, "{label}: column name");
        assert_eq!(a.ty, b.ty, "{label}: column type");
    }
    assert_eq!(cols.num_rows(), rows.num_rows(), "{label}: row count");
    for (i, (a, b)) in cols.rows().iter().zip(rows.rows()).enumerate() {
        assert_eq!(a, b, "{label}: row {i}");
    }
    assert_eq!(cols.traces.len(), rows.traces.len(), "{label}: trace count");
    for (id, (a, b)) in cols.traces.iter().zip(&rows.traces).enumerate() {
        assert_eq!(a.output_rows, b.output_rows, "{label}: node {id} output");
        assert_eq!(
            a.left_input_rows, b.left_input_rows,
            "{label}: node {id} left input"
        );
        assert_eq!(
            a.right_input_rows, b.right_input_rows,
            "{label}: node {id} right input"
        );
        match (&a.prov, &b.prov) {
            (None, None) => {}
            (Some(pa), Some(pb)) => {
                assert_eq!(pa.arity(), pb.arity(), "{label}: node {id} prov arity");
                // Logical equality: `ProvData::eq` reads row-by-row through
                // any selection indirection, so a selection-backed matrix
                // must carry bit-identical step indices to the dense one.
                assert_eq!(pa, pb, "{label}: node {id} prov data");
            }
            _ => panic!("{label}: node {id} prov presence mismatch"),
        }
    }
}

fn check_plan(plan: &Plan, catalog: &Catalog, samples: &SampleCatalog, label: &str) {
    let full_col = execute_full(plan, catalog);
    let full_row = execute_full_rows(plan, catalog);
    assert_outcomes_equal(&full_col, &full_row, &format!("{label} [full]"));

    let samp_col = execute_on_samples(plan, samples);
    let samp_row = execute_on_samples_rows(plan, samples);
    assert_outcomes_equal(&samp_col, &samp_row, &format!("{label} [sample]"));
}

fn check_benchmark(benchmark: Benchmark, instances: usize, seed: u64) {
    let catalog = GenConfig::new(0.001, 0.3, seed).build();
    let mut rng = Rng::new(seed ^ 0xC0FFEE);
    let samples = catalog.draw_samples(0.1, 2, &mut rng);
    let specs = benchmark.queries(&catalog, instances, &mut rng);
    assert!(!specs.is_empty());
    for spec in &specs {
        let plan = plan_query(spec, &catalog);
        check_plan(&plan, &catalog, &samples, &spec.name);
    }
}

#[test]
fn micro_workload_is_equivalent() {
    check_benchmark(Benchmark::Micro, 1, 11);
}

#[test]
fn seljoin_workload_is_equivalent() {
    check_benchmark(Benchmark::SelJoin, 2, 12);
}

#[test]
fn tpch_workload_is_equivalent() {
    check_benchmark(Benchmark::Tpch, 1, 13);
}

/// Hand-built plans covering shapes the generated workloads may miss:
/// NULL-free aggregates over every function, outer provenance drop above
/// aggregates, nested-loop joins, sorts above joins, and empty results.
#[test]
fn edge_shapes_are_equivalent() {
    let catalog = GenConfig::new(0.001, 0.0, 21).build();
    let mut rng = Rng::new(99);
    let samples = catalog.draw_samples(0.08, 2, &mut rng);

    // Aggregate with all functions, then filter above it (prov dropped).
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("lineitem", Pred::gt("l_quantity", Value::Float(10.0)));
    let a = b.aggregate(
        s,
        vec!["l_returnflag".into()],
        vec![
            ("cnt".into(), AggFunc::CountStar),
            ("s".into(), AggFunc::Sum("l_quantity".into())),
            ("av".into(), AggFunc::Avg("l_extendedprice".into())),
            ("mn".into(), AggFunc::Min("l_quantity".into())),
            ("mx".into(), AggFunc::Max("l_quantity".into())),
        ],
    );
    let f = b.filter(a, Pred::gt("cnt", Value::Int(0)));
    let srt = b.sort(f, vec![("s".into(), SortOrder::Desc)]);
    check_plan(&b.build(srt), &catalog, &samples, "agg-filter-sort");

    // Empty result: predicate nothing matches, under a join.
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("orders", Pred::lt("o_orderdate", Value::Int(-1)));
    let r = b.seq_scan("lineitem", Pred::True);
    let j = b.hash_join(l, r, "o_orderkey", "l_orderkey");
    check_plan(&b.build(j), &catalog, &samples, "empty-join");

    // Nested-loop join with materialized inner and residual ColCmp filter.
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("supplier", Pred::True);
    let r = b.seq_scan("nation", Pred::True);
    let m = b.materialize(r);
    let j = b.nl_join(l, m, "s_nationkey", "n_nationkey");
    check_plan(&b.build(j), &catalog, &samples, "nl-join");

    // Scalar aggregate over empty input (one output row from zero input),
    // including MIN/MAX over every column type — the empty-input default
    // must be typed (Int 0 / Float 0.0 / Str "") in both executors.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("customer", Pred::lt("c_acctbal", Value::Float(-1e18)));
    let a = b.aggregate(
        s,
        vec![],
        vec![
            ("cnt".into(), AggFunc::CountStar),
            ("s".into(), AggFunc::Sum("c_acctbal".into())),
            ("min_f".into(), AggFunc::Min("c_acctbal".into())),
            ("max_i".into(), AggFunc::Max("c_custkey".into())),
            ("min_s".into(), AggFunc::Min("c_mktsegment".into())),
        ],
    );
    check_plan(&b.build(a), &catalog, &samples, "empty-scalar-agg");
}

/// String and mixed Int/Float join keys exercise the generic (non-i64) hash
/// path, including `Value`'s cross-type numeric equality; a repeated
/// relation checks independent sample copies per occurrence.
#[test]
fn generic_join_keys_are_equivalent() {
    use uaq_storage::{Column, Schema, Table};
    let mut catalog = Catalog::new();
    let s1 = Schema::new(vec![Column::int("ka"), Column::str("ta")]);
    let rows1 = (0..200)
        .map(|i| vec![Value::Int(i % 13), Value::str(format!("tag{}", i % 7))])
        .collect();
    catalog.add_table(Table::new("ta_rel", s1, rows1));
    let s2 = Schema::new(vec![Column::float("kb"), Column::str("tb")]);
    let rows2 = (0..150)
        .map(|i| {
            vec![
                Value::Float((i % 11) as f64),
                Value::str(format!("tag{}", i % 5)),
            ]
        })
        .collect();
    catalog.add_table(Table::new("tb_rel", s2, rows2));
    let mut rng = Rng::new(41);
    let samples = catalog.draw_samples(0.3, 2, &mut rng);

    // Int ⋈ Float key: Value::Int(3) joins Value::Float(3.0).
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("ta_rel", Pred::True);
    let r = b.seq_scan("tb_rel", Pred::True);
    let j = b.hash_join(l, r, "ka", "kb");
    check_plan(&b.build(j), &catalog, &samples, "int-float-join");

    // Str ⋈ Str key.
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("ta_rel", Pred::True);
    let r = b.seq_scan("tb_rel", Pred::True);
    let j = b.hash_join(l, r, "ta", "tb");
    check_plan(&b.build(j), &catalog, &samples, "str-join");

    // Same shapes through the nested-loop join.
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("ta_rel", Pred::True);
    let r = b.seq_scan("tb_rel", Pred::True);
    let j = b.nl_join(l, r, "ka", "kb");
    check_plan(&b.build(j), &catalog, &samples, "int-float-nl-join");
}

/// The planner's own output over randomized specs (belt and braces: catches
/// operator combinations the fixed benchmarks do not emit).
#[test]
fn randomized_planned_queries_are_equivalent() {
    let catalog = GenConfig::new(0.001, 0.5, 31).build();
    let mut rng = Rng::new(7);
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    for i in 0..5 {
        let d = 500 + 300 * i as i64;
        let spec = QuerySpec::scan(
            format!("rand-{i}"),
            uaq_engine::TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(d))),
        )
        .with_joins(vec![uaq_engine::JoinStep::new(
            uaq_engine::TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(d / 2))),
            "o_orderkey",
            "l_orderkey",
        )]);
        let plan = plan_query(&spec, &catalog);
        check_plan(&plan, &catalog, &samples, &spec.name);
    }
}
