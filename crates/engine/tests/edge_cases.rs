//! Edge-case integration tests for the executor: empty inputs, degenerate
//! joins, and operators stacked in unusual ways.

use uaq_engine::{execute_full, execute_on_samples, AggFunc, PlanBuilder, Pred, SortOrder};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Column, Schema, Table, Value};

fn catalog_with(t_rows: usize, u_rows: usize) -> Catalog {
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a"), Column::int("b")]);
    c.add_table(Table::new(
        "t",
        ts,
        (0..t_rows)
            .map(|i| vec![Value::Int((i % 5) as i64), Value::Int(i as i64)])
            .collect(),
    ));
    let us = Schema::new(vec![Column::int("x"), Column::int("y")]);
    c.add_table(Table::new(
        "u",
        us,
        (0..u_rows)
            .map(|i| vec![Value::Int((i % 5) as i64), Value::Int(i as i64)])
            .collect(),
    ));
    c
}

#[test]
fn empty_table_scans_and_joins() {
    let c = catalog_with(0, 10);
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("t", Pred::True);
    let r = b.seq_scan("u", Pred::True);
    let j = b.hash_join(l, r, "a", "x");
    let plan = b.build(j);
    let out = execute_full(&plan, &c);
    assert!(out.is_empty());
    assert_eq!(out.traces[j].left_input_rows, 0);
    assert_eq!(out.traces[j].right_input_rows, 10);
}

#[test]
fn join_with_no_matches() {
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a")]);
    c.add_table(Table::new(
        "t",
        ts,
        (0..20).map(|i| vec![Value::Int(i)]).collect(),
    ));
    let us = Schema::new(vec![Column::int("x")]);
    c.add_table(Table::new(
        "u",
        us,
        (100..120).map(|i| vec![Value::Int(i)]).collect(),
    ));
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("t", Pred::True);
    let r = b.seq_scan("u", Pred::True);
    let j = b.hash_join(l, r, "a", "x");
    let plan = b.build(j);
    assert!(execute_full(&plan, &c).is_empty());
}

#[test]
fn sort_of_empty_and_single_row() {
    let c = catalog_with(1, 0);
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let srt = b.sort(s, vec![("b".into(), SortOrder::Desc)]);
    let plan = b.build(srt);
    assert_eq!(execute_full(&plan, &c).num_rows(), 1);

    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::eq("b", Value::Int(-1)));
    let srt = b.sort(s, vec![("b".into(), SortOrder::Asc)]);
    let plan = b.build(srt);
    assert!(execute_full(&plan, &c).is_empty());
}

#[test]
fn aggregate_above_aggregate_uses_optimizer_path() {
    // Group, then filter the groups, then aggregate again — the second
    // aggregate sits above a provenance-free region and must still execute.
    let c = catalog_with(100, 0);
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let a1 = b.aggregate(
        s,
        vec!["a".into()],
        vec![("cnt".into(), AggFunc::CountStar)],
    );
    let f = b.filter(a1, Pred::gt("cnt", Value::Int(10)));
    let a2 = b.aggregate(f, vec![], vec![("groups".into(), AggFunc::CountStar)]);
    let plan = b.build(a2);
    let out = execute_full(&plan, &c);
    assert_eq!(out.num_rows(), 1);
    // 5 groups of 20 rows each, all > 10.
    assert_eq!(out.rows()[0][0], Value::Int(5));

    // The same plan must run over samples without provenance panics.
    let mut rng = Rng::new(3);
    let samples = c.draw_samples(0.5, 1, &mut rng);
    let sout = execute_on_samples(&plan, &samples);
    assert_eq!(sout.num_rows(), 1);
}

#[test]
fn nested_loop_join_with_empty_inner() {
    let c = catalog_with(10, 0);
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("t", Pred::True);
    let r = b.seq_scan("u", Pred::True);
    let m = b.materialize(r);
    let j = b.nl_join(l, m, "a", "x");
    let plan = b.build(j);
    assert!(execute_full(&plan, &c).is_empty());
}

#[test]
fn min_max_aggregates_on_strings() {
    let mut c = Catalog::new();
    let s = Schema::new(vec![Column::str("name")]);
    c.add_table(Table::new(
        "t",
        s,
        ["delta", "alpha", "charlie"]
            .iter()
            .map(|&n| vec![Value::str(n)])
            .collect(),
    ));
    let mut b = PlanBuilder::new();
    let scan = b.seq_scan("t", Pred::True);
    let a = b.aggregate(
        scan,
        vec![],
        vec![
            ("lo".into(), AggFunc::Min("name".into())),
            ("hi".into(), AggFunc::Max("name".into())),
        ],
    );
    let plan = b.build(a);
    let out = execute_full(&plan, &c);
    assert_eq!(out.rows()[0][0], Value::str("alpha"));
    assert_eq!(out.rows()[0][1], Value::str("delta"));
}

#[test]
fn deep_filter_stack_keeps_provenance() {
    let c = catalog_with(200, 0);
    let mut b = PlanBuilder::new();
    let mut node = b.seq_scan("t", Pred::True);
    for i in 0..5 {
        node = b.filter(node, Pred::ge("b", Value::Int(i * 10)));
    }
    let plan = b.build(node);
    let mut rng = Rng::new(4);
    let samples = c.draw_samples(0.5, 1, &mut rng);
    let out = execute_on_samples(&plan, &samples);
    let prov = out.traces[node]
        .prov
        .as_ref()
        .expect("provenance survives filters");
    assert_eq!(prov.rows(), out.num_rows());
    // The surviving rows really satisfy the stacked predicate.
    for row in out.rows() {
        assert!(row[1].as_int() >= 40);
    }
}

#[test]
fn duplicate_key_join_produces_cross_products_per_key() {
    // 3 copies of key 7 on each side ⇒ 9 output rows.
    let mut c = Catalog::new();
    let ts = Schema::new(vec![Column::int("a")]);
    c.add_table(Table::new("t", ts, vec![vec![Value::Int(7)]; 3]));
    let us = Schema::new(vec![Column::int("x")]);
    c.add_table(Table::new("u", us, vec![vec![Value::Int(7)]; 3]));
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("t", Pred::True);
    let r = b.seq_scan("u", Pred::True);
    let j = b.hash_join(l, r, "a", "x");
    let plan = b.build(j);
    assert_eq!(execute_full(&plan, &c).num_rows(), 9);
}
