//! A small heuristic planner.
//!
//! The paper takes PostgreSQL's plans as given — plan *choice* is not under
//! test — so this planner only has to produce reasonable physical plans from
//! declarative query specs: access-path selection (seq vs index scan by
//! estimated selectivity), join algorithm selection (hash vs nested-loop by
//! estimated inner size), plus sort/aggregate placement.

use crate::cardest::predicate_selectivity;
use crate::expr::Pred;
use crate::plan::{AggFunc, NodeId, Plan, PlanBuilder, SortOrder};
use uaq_storage::{Catalog, ColumnType};

/// Estimated-selectivity threshold below which an index scan wins.
const INDEX_SCAN_SEL_THRESHOLD: f64 = 0.05;
/// Tables smaller than this many pages are always scanned sequentially.
const INDEX_SCAN_MIN_PAGES: usize = 4;
/// Estimated inner cardinality below which a nested-loop join is chosen.
const NL_JOIN_INNER_THRESHOLD: f64 = 24.0;

/// A base relation with a pushed-down predicate.
#[derive(Debug, Clone)]
pub struct TableRef {
    pub table: String,
    pub predicate: Pred,
}

impl TableRef {
    pub fn new(table: impl Into<String>, predicate: Pred) -> Self {
        Self {
            table: table.into(),
            predicate,
        }
    }

    pub fn plain(table: impl Into<String>) -> Self {
        Self::new(table, Pred::True)
    }
}

/// One step of a left-deep join chain: join the accumulated left side with
/// `table` on `left_key = right_key`.
#[derive(Debug, Clone)]
pub struct JoinStep {
    pub table: TableRef,
    pub left_key: String,
    pub right_key: String,
}

impl JoinStep {
    pub fn new(table: TableRef, left_key: impl Into<String>, right_key: impl Into<String>) -> Self {
        Self {
            table,
            left_key: left_key.into(),
            right_key: right_key.into(),
        }
    }
}

/// A declarative select-join-aggregate query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Human-readable label (benchmark bookkeeping).
    pub name: String,
    pub base: TableRef,
    pub joins: Vec<JoinStep>,
    /// Residual predicate applied above the final join.
    pub residual: Pred,
    pub group_by: Vec<String>,
    pub aggs: Vec<(String, AggFunc)>,
    pub order_by: Vec<(String, SortOrder)>,
}

impl QuerySpec {
    /// A bare single-table query.
    pub fn scan(name: impl Into<String>, base: TableRef) -> Self {
        Self {
            name: name.into(),
            base,
            joins: vec![],
            residual: Pred::True,
            group_by: vec![],
            aggs: vec![],
            order_by: vec![],
        }
    }

    pub fn with_joins(mut self, joins: Vec<JoinStep>) -> Self {
        self.joins = joins;
        self
    }

    pub fn with_residual(mut self, residual: Pred) -> Self {
        self.residual = residual;
        self
    }

    pub fn with_aggregates(mut self, group_by: Vec<String>, aggs: Vec<(String, AggFunc)>) -> Self {
        self.group_by = group_by;
        self.aggs = aggs;
        self
    }

    pub fn with_order_by(mut self, order_by: Vec<(String, SortOrder)>) -> Self {
        self.order_by = order_by;
        self
    }

    /// True if the query has an aggregate stage.
    pub fn has_aggregate(&self) -> bool {
        !self.aggs.is_empty() || !self.group_by.is_empty()
    }
}

/// Chooses an access path for a base relation and emits the scan node.
fn plan_scan(b: &mut PlanBuilder, catalog: &Catalog, tref: &TableRef) -> (NodeId, f64) {
    let table = catalog.table(&tref.table);
    let stats = catalog.stats(&tref.table);
    let sel = predicate_selectivity(&tref.predicate, stats);
    let est_rows = table.len() as f64 * sel;

    // Candidate index column: an Int column referenced by the predicate (the
    // substrate indexes every integer key column).
    let index_col = tref.predicate.columns().into_iter().find(|c| {
        table
            .schema()
            .index_of(c)
            .is_some_and(|i| table.schema().column(i).ty == ColumnType::Int)
    });

    let use_index = sel < INDEX_SCAN_SEL_THRESHOLD
        && table.pages() >= INDEX_SCAN_MIN_PAGES
        && index_col.is_some();

    let id = if use_index {
        b.index_scan(
            &tref.table,
            index_col.expect("checked").to_string(),
            tref.predicate.clone(),
        )
    } else {
        b.seq_scan(&tref.table, tref.predicate.clone())
    };
    (id, est_rows)
}

/// Builds a physical plan for a query spec.
pub fn plan_query(spec: &QuerySpec, catalog: &Catalog) -> Plan {
    let mut b = PlanBuilder::new();
    let (mut current, mut current_est) = plan_scan(&mut b, catalog, &spec.base);

    for step in &spec.joins {
        let (right, right_est) = plan_scan(&mut b, catalog, &step.table);
        // Join-size estimate for subsequent decisions (System R style).
        let stats = catalog.stats(&step.table.table);
        let d = stats.distinct(&step.right_key).max(1) as f64;
        if right_est <= NL_JOIN_INNER_THRESHOLD {
            // Materialize the tiny inner, then nested-loop over it.
            let mat = b.materialize(right);
            current = b.nl_join(current, mat, step.left_key.clone(), step.right_key.clone());
        } else {
            current = b.hash_join(
                current,
                right,
                step.left_key.clone(),
                step.right_key.clone(),
            );
        }
        current_est = (current_est * right_est / d).max(1.0);
    }
    let _ = current_est;

    if !spec.residual.is_true() {
        current = b.filter(current, spec.residual.clone());
    }
    if spec.has_aggregate() {
        current = b.aggregate(current, spec.group_by.clone(), spec.aggs.clone());
    }
    if !spec.order_by.is_empty() {
        current = b.sort(current, spec.order_by.clone());
    }
    b.build(current)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Op;
    use uaq_storage::{Column, Schema, Table, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..10_000)
            .map(|i| vec![Value::Int(i), Value::Int(i % 100)])
            .collect();
        c.add_table(Table::new("big", s, rows));
        let s2 = Schema::new(vec![Column::int("k"), Column::int("v")]);
        let rows2 = (0..10)
            .map(|i| vec![Value::Int(i), Value::Int(i)])
            .collect();
        c.add_table(Table::new("tiny", s2, rows2));
        c
    }

    #[test]
    fn selective_predicate_gets_index_scan() {
        let c = catalog();
        let spec = QuerySpec::scan(
            "q",
            TableRef::new("big", Pred::between("a", Value::Int(0), Value::Int(50))),
        );
        let plan = plan_query(&spec, &c);
        assert!(matches!(plan.op(plan.root()), Op::IndexScan { .. }));
    }

    #[test]
    fn wide_predicate_gets_seq_scan() {
        let c = catalog();
        let spec = QuerySpec::scan("q", TableRef::new("big", Pred::lt("a", Value::Int(9000))));
        let plan = plan_query(&spec, &c);
        assert!(matches!(plan.op(plan.root()), Op::SeqScan { .. }));
    }

    #[test]
    fn small_table_gets_seq_scan_despite_selectivity() {
        let c = catalog();
        let spec = QuerySpec::scan("q", TableRef::new("tiny", Pred::eq("k", Value::Int(1))));
        let plan = plan_query(&spec, &c);
        assert!(matches!(plan.op(plan.root()), Op::SeqScan { .. }));
    }

    #[test]
    fn tiny_inner_uses_nested_loop_with_materialize() {
        let c = catalog();
        let spec = QuerySpec::scan("q", TableRef::plain("big")).with_joins(vec![JoinStep::new(
            TableRef::plain("tiny"),
            "b",
            "k",
        )]);
        let plan = plan_query(&spec, &c);
        let root = plan.op(plan.root());
        assert!(
            matches!(root, Op::NestedLoopJoin { .. }),
            "{}",
            plan.explain()
        );
        // The NL inner is materialized.
        let Op::NestedLoopJoin { right, .. } = root else {
            unreachable!()
        };
        assert!(matches!(plan.op(*right), Op::Materialize { .. }));
    }

    #[test]
    fn large_inner_uses_hash_join() {
        let c = catalog();
        let spec = QuerySpec::scan("q", TableRef::plain("tiny")).with_joins(vec![JoinStep::new(
            TableRef::plain("big"),
            "k",
            "b",
        )]);
        let plan = plan_query(&spec, &c);
        assert!(matches!(plan.op(plan.root()), Op::HashJoin { .. }));
    }

    #[test]
    fn full_pipeline_shape() {
        let c = catalog();
        let spec = QuerySpec::scan("q", TableRef::plain("big"))
            .with_joins(vec![JoinStep::new(TableRef::plain("tiny"), "b", "k")])
            .with_residual(Pred::gt("v", Value::Int(2)))
            .with_aggregates(vec!["v".into()], vec![("cnt".into(), AggFunc::CountStar)])
            .with_order_by(vec![("cnt".into(), SortOrder::Desc)]);
        let plan = plan_query(&spec, &c);
        // Root is the sort; below it aggregate; below it filter; below join.
        let Op::Sort { input, .. } = plan.op(plan.root()) else {
            panic!("expected sort root: {}", plan.explain())
        };
        let Op::HashAggregate { input, .. } = plan.op(*input) else {
            panic!("expected aggregate")
        };
        assert!(matches!(plan.op(*input), Op::Filter { .. }));
    }

    #[test]
    fn planned_query_executes() {
        let c = catalog();
        let spec = QuerySpec::scan("q", TableRef::plain("big"))
            .with_joins(vec![JoinStep::new(TableRef::plain("tiny"), "b", "k")])
            .with_aggregates(vec![], vec![("cnt".into(), AggFunc::CountStar)]);
        let plan = plan_query(&spec, &c);
        let out = crate::exec::execute_full(&plan, &c);
        // big.b ∈ 0..100, tiny.k ∈ 0..10 → 10% of big matches once.
        assert_eq!(out.rows()[0][0], Value::Int(1000));
    }
}
