//! # uaq-engine
//!
//! The relational execution substrate: physical plans (Table 2 of the
//! paper), an executor that runs the same plan against base tables (ground
//! truth) or provenance-annotated samples (§3.2.2), histogram-based
//! cardinality estimation (the optimizer-estimate fallback of Algorithm 1),
//! and a small heuristic planner for the benchmark workloads.

pub mod cardest;
pub mod exec;
pub mod exec_row;
pub mod expr;
pub mod fault;
pub mod plan;
pub mod planner;
pub mod validate;

pub use cardest::{estimate_cardinalities, predicate_selectivity};
pub use exec::{execute_full, execute_on_samples, ExecOutcome, NodeTrace, ProvData, RowPages};
pub use exec_row::{execute_full_rows, execute_on_samples_rows};
pub use expr::{BoundPred, CmpOp, Pred};
pub use plan::{AggFunc, LeafRef, NodeId, NodeMeta, Op, Plan, PlanBuilder, SelKind, SortOrder};
pub use planner::{plan_query, JoinStep, QuerySpec, TableRef};
pub use validate::{
    validate, validate_cached, validate_cached_on_samples, validate_on_samples, PlanError,
    MAX_PLAN_DEPTH,
};
