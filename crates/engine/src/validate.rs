//! Static semantic validation of [`Plan`] trees.
//!
//! The executor trusts its input: `output_schema` panics on unknown
//! columns, `Schema::concat` asserts away duplicate join outputs, and
//! `Value`'s ordering panics when a string is ordered against a number.
//! Those panics are fine for plans produced by [`crate::plan_query`] — the
//! planner only lowers well-formed specs — but the service edge accepts
//! `Arc<Plan>`s from callers, and ROADMAP item 1's SQL frontend will lower
//! arbitrary query text into this IR. This module is the binder's backstop:
//! a full semantic pass that rejects malformed plans with a typed
//! [`PlanError`] *before* they reach a worker, so the service answers with
//! a diagnostic instead of burning a `catch_unwind` (see
//! `uaq_service`'s `ServedTier::Invalid`).
//!
//! Checked invariants, in order:
//! - arena sanity: every node reachable from the root (no orphan subtrees),
//!   tree depth bounded by [`MAX_PLAN_DEPTH`] (a stack overflow in the
//!   recursive executor is *not* catchable by `catch_unwind`);
//! - schema resolution: scan tables exist in the catalog, every column
//!   referenced by predicates, sort keys, join keys, group-bys and
//!   aggregates resolves in its node's input schema;
//! - join keys: both sides resolve, with join-compatible types (an Int⋈Str
//!   equi-join can only ever produce the empty — and silently wrong —
//!   result), and the joined output has no duplicate column names;
//! - predicate typing: ordering comparisons (`<`, `<=`, `>`, `>=`,
//!   `BETWEEN`) never mix strings with numerics — the executor's `Value`
//!   ordering panics on exactly that; equality across those types is
//!   well-defined (always false) and allowed;
//! - index scans: the key column exists, is typed, and is actually
//!   constrained by the scan predicate (the documented `IndexScan`
//!   contract);
//! - aggregates: `Sum`/`Avg` read numeric columns;
//! - sample-mode provenance shape ([`validate_on_samples`]): every leaf
//!   relation has sample tables drawn (empty relations are skipped at draw
//!   time and would panic at scan time).
//!
//! All checks run in one bottom-up pass over the arena with an explicit
//! worklist — validation of a hostile plan must not itself recurse.

use crate::expr::{CmpOp, Pred};
use crate::plan::{AggFunc, NodeId, Op, Plan};
use std::fmt;
use uaq_storage::{Catalog, ColumnType, SampleCatalog, Schema};

/// Maximum operator-tree depth the executors will recurse into. Plans are
/// binary trees, so 128 levels is far beyond any real optimizer output
/// while staying well inside worker stack budgets.
pub const MAX_PLAN_DEPTH: usize = 128;

/// A semantic defect in a plan, attributed to the node that owns it.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// A scan references a table the catalog does not have.
    UnknownTable { node: NodeId, table: String },
    /// A column reference does not resolve in the node's input schema.
    UnknownColumn {
        node: NodeId,
        column: String,
        /// Where the reference appears: "predicate", "sort key", …
        context: &'static str,
    },
    /// An ordering comparison mixes a string with a numeric operand.
    OrderingTypeMismatch {
        node: NodeId,
        column: String,
        column_ty: ColumnType,
        other: String,
    },
    /// Join keys resolve to types that can never compare equal.
    JoinKeyTypeMismatch {
        node: NodeId,
        left_key: String,
        left_ty: ColumnType,
        right_key: String,
        right_ty: ColumnType,
    },
    /// Joining these inputs would produce duplicate output column names.
    DuplicateJoinColumn { node: NodeId, column: String },
    /// An index scan whose predicate never constrains its key column.
    IndexKeyUnconstrained { node: NodeId, key_col: String },
    /// `Sum`/`Avg` over a non-numeric column.
    AggregateTypeMismatch {
        node: NodeId,
        column: String,
        column_ty: ColumnType,
        func: &'static str,
    },
    /// Arena nodes not reachable from the root (orphan subtrees).
    UnreachableNodes { nodes: Vec<NodeId> },
    /// Tree depth exceeds [`MAX_PLAN_DEPTH`].
    ExcessiveDepth { depth: usize, max: usize },
    /// A leaf relation has no sample tables (sample-mode execution only).
    MissingSamples { node: NodeId, table: String },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownTable { node, table } => {
                write!(f, "node #{node}: unknown table {table:?}")
            }
            PlanError::UnknownColumn {
                node,
                column,
                context,
            } => write!(f, "node #{node}: unknown column {column:?} in {context}"),
            PlanError::OrderingTypeMismatch {
                node,
                column,
                column_ty,
                other,
            } => write!(
                f,
                "node #{node}: ordering comparison between {column:?} ({column_ty:?}) and \
                 {other} can never be evaluated"
            ),
            PlanError::JoinKeyTypeMismatch {
                node,
                left_key,
                left_ty,
                right_key,
                right_ty,
            } => write!(
                f,
                "node #{node}: join keys {left_key:?} ({left_ty:?}) and {right_key:?} \
                 ({right_ty:?}) are not join-compatible"
            ),
            PlanError::DuplicateJoinColumn { node, column } => write!(
                f,
                "node #{node}: join output would contain column {column:?} twice"
            ),
            PlanError::IndexKeyUnconstrained { node, key_col } => write!(
                f,
                "node #{node}: index scan key {key_col:?} is not constrained by the predicate"
            ),
            PlanError::AggregateTypeMismatch {
                node,
                column,
                column_ty,
                func,
            } => write!(
                f,
                "node #{node}: {func} over non-numeric column {column:?} ({column_ty:?})"
            ),
            PlanError::UnreachableNodes { nodes } => {
                write!(f, "arena nodes {nodes:?} are unreachable from the root")
            }
            PlanError::ExcessiveDepth { depth, max } => {
                write!(f, "plan depth {depth} exceeds the executor budget of {max}")
            }
            PlanError::MissingSamples { node, table } => write!(
                f,
                "node #{node}: relation {table:?} has no sample tables (empty at draw time?)"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// Stable machine-readable tag for telemetry labels and service responses.
impl PlanError {
    pub fn code(&self) -> &'static str {
        match self {
            PlanError::UnknownTable { .. } => "unknown_table",
            PlanError::UnknownColumn { .. } => "unknown_column",
            PlanError::OrderingTypeMismatch { .. } => "ordering_type_mismatch",
            PlanError::JoinKeyTypeMismatch { .. } => "join_key_type_mismatch",
            PlanError::DuplicateJoinColumn { .. } => "duplicate_join_column",
            PlanError::IndexKeyUnconstrained { .. } => "index_key_unconstrained",
            PlanError::AggregateTypeMismatch { .. } => "aggregate_type_mismatch",
            PlanError::UnreachableNodes { .. } => "unreachable_nodes",
            PlanError::ExcessiveDepth { .. } => "excessive_depth",
            PlanError::MissingSamples { .. } => "missing_samples",
        }
    }
}

/// Validates a plan against full base tables. Returns the first defect in
/// bottom-up node order.
pub fn validate(plan: &Plan, catalog: &Catalog) -> Result<(), PlanError> {
    validate_inner(plan, Some(catalog), None)
}

/// Validates a plan for sample-mode execution: everything [`validate`]
/// checks, plus per-leaf sample availability (the provenance-shape
/// invariant — a scan of an unsampled relation panics at execution).
pub fn validate_on_samples(
    plan: &Plan,
    catalog: &Catalog,
    samples: &SampleCatalog,
) -> Result<(), PlanError> {
    validate_inner(plan, Some(catalog), Some(samples))
}

/// [`validate`] with the verdict interned on the plan, keyed by the
/// catalog's content fingerprint. The service edge calls this per request
/// on shared `Arc<Plan>`s: after the first request, re-validating a warm
/// plan against an unchanged catalog is one `OnceLock` load plus a `u64`
/// compare. A catalog swap (fingerprint mismatch) falls back to a fresh
/// uncached pass — correct, just not interned, since `OnceLock` is
/// write-once.
pub fn validate_cached(plan: &Plan, catalog: &Catalog) -> Result<(), PlanError> {
    let fp = catalog.fingerprint();
    let (memo_fp, verdict) = plan
        .validation_memo()
        .get_or_init(|| (fp, validate(plan, catalog).err()));
    if *memo_fp == fp {
        match verdict {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    } else {
        validate(plan, catalog)
    }
}

/// [`validate_on_samples`] with the verdict interned on the plan, keyed by
/// the combined catalog + sample fingerprints (the plan shares one memo
/// slot with [`validate_cached`]; a caller mixing both against the same
/// plan gets correctness either way, interning only for whichever keyed it
/// first).
pub fn validate_cached_on_samples(
    plan: &Plan,
    catalog: &Catalog,
    samples: &SampleCatalog,
) -> Result<(), PlanError> {
    let fp = catalog.fingerprint() ^ samples.fingerprint().rotate_left(32);
    let (memo_fp, verdict) = plan
        .validation_memo()
        .get_or_init(|| (fp, validate_on_samples(plan, catalog, samples).err()));
    if *memo_fp == fp {
        match verdict {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    } else {
        validate_on_samples(plan, catalog, samples)
    }
}

/// Debug-build tripwire for the executor entry points: malformed plans
/// panic with the typed diagnostic *before* the executor's less articulate
/// panics fire. Either source may be absent (the sample-mode executor has
/// no base catalog in scope); scan schemas resolve from whichever is
/// present. Release builds skip the pass entirely.
#[inline]
pub fn debug_check(plan: &Plan, catalog: Option<&Catalog>, samples: Option<&SampleCatalog>) {
    #[cfg(debug_assertions)]
    {
        debug_assert!(
            catalog.is_some() || samples.is_some(),
            "debug_check needs at least one schema source"
        );
        if let Err(e) = validate_inner(plan, catalog, samples) {
            panic!("invalid plan reached the executor: {e}");
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = (plan, catalog, samples);
    }
}

fn validate_inner(
    plan: &Plan,
    catalog: Option<&Catalog>,
    samples: Option<&SampleCatalog>,
) -> Result<(), PlanError> {
    let n = plan.len();
    let root = plan.root();

    // Reachability and depth, with an explicit stack: validation must not
    // recurse over a hostile tree. `Plan::new` guarantees tree-ness (every
    // node has at most one parent, children in range), so a DFS from the
    // root terminates.
    let mut depth_of = vec![0usize; n];
    let mut seen = vec![false; n];
    let mut stack = vec![(root, 1usize)];
    let mut max_depth = 0usize;
    while let Some((id, depth)) = stack.pop() {
        seen[id] = true;
        depth_of[id] = depth;
        max_depth = max_depth.max(depth);
        if depth > MAX_PLAN_DEPTH {
            return Err(PlanError::ExcessiveDepth {
                depth,
                max: MAX_PLAN_DEPTH,
            });
        }
        for c in plan.op(id).children() {
            stack.push((c, depth + 1));
        }
    }
    let orphans: Vec<NodeId> = (0..n).filter(|&id| !seen[id]).collect();
    if !orphans.is_empty() {
        return Err(PlanError::UnreachableNodes { nodes: orphans });
    }

    // Bottom-up schema resolution over the same worklist discipline:
    // `postorder` on a validated-tree-shape plan is safe only up to depth,
    // which we just bounded.
    let mut schemas: Vec<Option<Schema>> = vec![None; n];
    for id in postorder_iterative(plan) {
        let schema = check_node(plan, catalog, samples, id, &schemas)?;
        schemas[id] = Some(schema);
    }
    Ok(())
}

/// Post-order traversal with an explicit stack (children before parents).
fn postorder_iterative(plan: &Plan) -> Vec<NodeId> {
    let mut out = Vec::with_capacity(plan.len());
    let mut stack = vec![(plan.root(), false)];
    while let Some((id, expanded)) = stack.pop() {
        if expanded {
            out.push(id);
        } else {
            stack.push((id, true));
            for c in plan.op(id).children().into_iter().rev() {
                stack.push((c, false));
            }
        }
    }
    out
}

/// Validates one node against its children's (already computed) output
/// schemas and returns its own output schema.
fn check_node(
    plan: &Plan,
    catalog: Option<&Catalog>,
    samples: Option<&SampleCatalog>,
    id: NodeId,
    schemas: &[Option<Schema>],
) -> Result<Schema, PlanError> {
    let input = |child: NodeId| -> &Schema {
        schemas[child]
            .as_ref()
            .expect("postorder resolves children first")
    };
    // Resolves a scanned table's schema from the base catalog when one is
    // in scope, else from the sample set, and enforces the provenance-shape
    // invariant: when samples are a source, every leaf relation must have
    // sample tables drawn (empty relations are skipped at draw time and
    // panic at scan time).
    let scan_schema = |node: NodeId, table: &String| -> Result<Schema, PlanError> {
        let schema = match (catalog, samples) {
            (Some(c), _) => c
                .try_table(table)
                .map(|t| t.schema().clone())
                .ok_or_else(|| PlanError::UnknownTable {
                    node,
                    table: table.clone(),
                })?,
            (None, Some(s)) => {
                if !s.has_relation(table) {
                    return Err(PlanError::UnknownTable {
                        node,
                        table: table.clone(),
                    });
                }
                s.sample(table, 0).table().schema().clone()
            }
            (None, None) => unreachable!("validate_inner callers supply a schema source"),
        };
        if let Some(s) = samples {
            if !s.has_relation(table) {
                return Err(PlanError::MissingSamples {
                    node,
                    table: table.clone(),
                });
            }
        }
        Ok(schema)
    };
    match plan.op(id) {
        Op::SeqScan { table, predicate } => {
            let schema = scan_schema(id, table)?;
            check_predicate(id, predicate, &schema)?;
            Ok(schema)
        }
        Op::IndexScan {
            table,
            key_col,
            predicate,
        } => {
            let schema = scan_schema(id, table)?;
            if schema.index_of(key_col).is_none() {
                return Err(PlanError::UnknownColumn {
                    node: id,
                    column: key_col.clone(),
                    context: "index key",
                });
            }
            check_predicate(id, predicate, &schema)?;
            // The documented IndexScan contract: the predicate must
            // constrain the key column, otherwise the lookup has no key.
            if !predicate.columns().contains(&key_col.as_str()) {
                return Err(PlanError::IndexKeyUnconstrained {
                    node: id,
                    key_col: key_col.clone(),
                });
            }
            Ok(schema)
        }
        Op::Filter {
            input: child,
            predicate,
        } => {
            let schema = input(*child).clone();
            check_predicate(id, predicate, &schema)?;
            Ok(schema)
        }
        Op::Sort { input: child, keys } => {
            let schema = input(*child).clone();
            for (key, _) in keys {
                if schema.index_of(key).is_none() {
                    return Err(PlanError::UnknownColumn {
                        node: id,
                        column: key.clone(),
                        context: "sort key",
                    });
                }
            }
            Ok(schema)
        }
        Op::Materialize { input: child } => Ok(input(*child).clone()),
        Op::HashJoin {
            left,
            right,
            left_key,
            right_key,
        }
        | Op::NestedLoopJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let ls = input(*left);
            let rs = input(*right);
            let li = ls
                .index_of(left_key)
                .ok_or_else(|| PlanError::UnknownColumn {
                    node: id,
                    column: left_key.clone(),
                    context: "left join key",
                })?;
            let ri = rs
                .index_of(right_key)
                .ok_or_else(|| PlanError::UnknownColumn {
                    node: id,
                    column: right_key.clone(),
                    context: "right join key",
                })?;
            let (lt, rt) = (ls.column(li).ty, rs.column(ri).ty);
            // Int and Float keys hash/compare as numbers; Str only equals
            // Str. A Str⋈numeric equi-join is always empty — reject it as
            // the type error it is.
            if (lt == ColumnType::Str) != (rt == ColumnType::Str) {
                return Err(PlanError::JoinKeyTypeMismatch {
                    node: id,
                    left_key: left_key.clone(),
                    left_ty: lt,
                    right_key: right_key.clone(),
                    right_ty: rt,
                });
            }
            // `Schema::concat` asserts on duplicates; pre-empt it here.
            for col in rs.columns() {
                if ls.index_of(&col.name).is_some() {
                    return Err(PlanError::DuplicateJoinColumn {
                        node: id,
                        column: col.name.clone(),
                    });
                }
            }
            Ok(ls.concat(rs))
        }
        Op::HashAggregate {
            input: child,
            group_by,
            aggs,
        } => {
            let in_schema = input(*child);
            let mut out_cols = Vec::with_capacity(group_by.len() + aggs.len());
            for g in group_by {
                let idx = in_schema
                    .index_of(g)
                    .ok_or_else(|| PlanError::UnknownColumn {
                        node: id,
                        column: g.clone(),
                        context: "group-by key",
                    })?;
                out_cols.push(in_schema.column(idx).clone());
            }
            for (name, func) in aggs {
                let ty = match func {
                    AggFunc::CountStar => ColumnType::Int,
                    AggFunc::Sum(c) | AggFunc::Avg(c) => {
                        let idx =
                            in_schema
                                .index_of(c)
                                .ok_or_else(|| PlanError::UnknownColumn {
                                    node: id,
                                    column: c.clone(),
                                    context: "aggregate input",
                                })?;
                        let cty = in_schema.column(idx).ty;
                        if cty == ColumnType::Str {
                            return Err(PlanError::AggregateTypeMismatch {
                                node: id,
                                column: c.clone(),
                                column_ty: cty,
                                func: if matches!(func, AggFunc::Sum(_)) {
                                    "Sum"
                                } else {
                                    "Avg"
                                },
                            });
                        }
                        ColumnType::Float
                    }
                    AggFunc::Min(c) | AggFunc::Max(c) => {
                        let idx =
                            in_schema
                                .index_of(c)
                                .ok_or_else(|| PlanError::UnknownColumn {
                                    node: id,
                                    column: c.clone(),
                                    context: "aggregate input",
                                })?;
                        in_schema.column(idx).ty
                    }
                };
                out_cols.push(uaq_storage::Column::new(name.clone(), ty));
            }
            // Aggregate output names may still collide (e.g. a group-by key
            // reused as an aggregate name) — `Schema::new` would assert.
            for (i, a) in out_cols.iter().enumerate() {
                for b in &out_cols[..i] {
                    if a.name == b.name {
                        return Err(PlanError::DuplicateJoinColumn {
                            node: id,
                            column: a.name.clone(),
                        });
                    }
                }
            }
            Ok(Schema::new(out_cols))
        }
    }
}

/// Type-checks one predicate against its input schema: every referenced
/// column resolves, and ordering comparisons never mix Str with numerics
/// (the executor's `Value` ordering panics on exactly that pair).
fn check_predicate(node: NodeId, pred: &Pred, schema: &Schema) -> Result<(), PlanError> {
    let resolve = |col: &str| -> Result<ColumnType, PlanError> {
        schema
            .index_of(col)
            .map(|i| schema.column(i).ty)
            .ok_or_else(|| PlanError::UnknownColumn {
                node,
                column: col.to_string(),
                context: "predicate",
            })
    };
    let is_ordering = |op: &CmpOp| !matches!(op, CmpOp::Eq | CmpOp::Ne);
    let value_is_str = |v: &uaq_storage::Value| matches!(v, uaq_storage::Value::Str(_));
    // Explicit worklist: And/Or trees nest arbitrarily deep in untrusted
    // plans, same threat as operator-tree depth.
    let mut work = vec![pred];
    while let Some(p) = work.pop() {
        match p {
            Pred::True => {}
            Pred::Cmp { col, op, value } => {
                let ty = resolve(col)?;
                if is_ordering(op) && ((ty == ColumnType::Str) != value_is_str(value)) {
                    return Err(PlanError::OrderingTypeMismatch {
                        node,
                        column: col.clone(),
                        column_ty: ty,
                        other: format!("literal {value}"),
                    });
                }
            }
            Pred::ColCmp { left, op, right } => {
                let lt = resolve(left)?;
                let rt = resolve(right)?;
                if is_ordering(op) && ((lt == ColumnType::Str) != (rt == ColumnType::Str)) {
                    return Err(PlanError::OrderingTypeMismatch {
                        node,
                        column: left.clone(),
                        column_ty: lt,
                        other: format!("column {right:?} ({rt:?})"),
                    });
                }
            }
            Pred::Between { col, lo, hi } => {
                let ty = resolve(col)?;
                for bound in [lo, hi] {
                    if (ty == ColumnType::Str) != value_is_str(bound) {
                        return Err(PlanError::OrderingTypeMismatch {
                            node,
                            column: col.clone(),
                            column_ty: ty,
                            other: format!("literal {bound}"),
                        });
                    }
                }
            }
            Pred::InList { col, .. } => {
                // IN uses equality, which is total across types.
                resolve(col)?;
            }
            Pred::And(ps) | Pred::Or(ps) => work.extend(ps.iter()),
        }
    }
    Ok(())
}
