//! Physical query plans.
//!
//! A plan is a rooted binary tree of operators (Table 2 of the paper) stored
//! in an arena; node ids are arena indices, which gives every operator `O` a
//! stable identity for selectivity estimates, cost functions, and the
//! covariance analysis over root-to-leaf paths (Algorithm 3).

use crate::expr::Pred;
use std::fmt;
use uaq_storage::{Catalog, Column, ColumnType, Schema};

/// Operator identifier within one plan (arena index).
pub type NodeId = usize;

/// Aggregate functions supported by [`Op::HashAggregate`].
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    CountStar,
    Sum(String),
    Avg(String),
    Min(String),
    Max(String),
}

impl AggFunc {
    /// Column the aggregate reads, if any.
    pub fn input_column(&self) -> Option<&str> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Sum(c) | AggFunc::Avg(c) | AggFunc::Min(c) | AggFunc::Max(c) => Some(c),
        }
    }
}

/// Sort direction per key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    Asc,
    Desc,
}

/// A physical operator.
#[derive(Debug, Clone)]
pub enum Op {
    /// Full scan with an optional pushed-down filter.
    SeqScan { table: String, predicate: Pred },
    /// Index lookup: random page fetches proportional to matching tuples.
    /// `key_col` is the indexed column; `predicate` must constrain it.
    IndexScan {
        table: String,
        key_col: String,
        predicate: Pred,
    },
    /// Residual filter above another operator.
    Filter { input: NodeId, predicate: Pred },
    /// In-memory sort (`N log N` CPU operations — the paper's C4 example).
    Sort {
        input: NodeId,
        keys: Vec<(String, SortOrder)>,
    },
    /// Buffers its input (linear pass; the paper's C3 example).
    Materialize { input: NodeId },
    /// Hash equi-join; cost linear in both inputs (the paper's C5 example).
    HashJoin {
        left: NodeId,
        right: NodeId,
        left_key: String,
        right_key: String,
    },
    /// Nested-loop equi-join; cost includes the `N_l · N_r` product term
    /// (the paper's C6 example).
    NestedLoopJoin {
        left: NodeId,
        right: NodeId,
        left_key: String,
        right_key: String,
    },
    /// Hash aggregation with optional grouping.
    HashAggregate {
        input: NodeId,
        group_by: Vec<String>,
        aggs: Vec<(String, AggFunc)>,
    },
}

impl Op {
    /// Child node ids, in (left, right) order.
    pub fn children(&self) -> Vec<NodeId> {
        match self {
            Op::SeqScan { .. } | Op::IndexScan { .. } => vec![],
            Op::Filter { input, .. }
            | Op::Sort { input, .. }
            | Op::Materialize { input }
            | Op::HashAggregate { input, .. } => vec![*input],
            Op::HashJoin { left, right, .. } | Op::NestedLoopJoin { left, right, .. } => {
                vec![*left, *right]
            }
        }
    }

    pub fn is_scan(&self) -> bool {
        matches!(self, Op::SeqScan { .. } | Op::IndexScan { .. })
    }

    pub fn is_join(&self) -> bool {
        matches!(self, Op::HashJoin { .. } | Op::NestedLoopJoin { .. })
    }

    pub fn is_aggregate(&self) -> bool {
        matches!(self, Op::HashAggregate { .. })
    }

    /// Operator name for display / reports.
    pub fn name(&self) -> &'static str {
        match self {
            Op::SeqScan { .. } => "SeqScan",
            Op::IndexScan { .. } => "IndexScan",
            Op::Filter { .. } => "Filter",
            Op::Sort { .. } => "Sort",
            Op::Materialize { .. } => "Materialize",
            Op::HashJoin { .. } => "HashJoin",
            Op::NestedLoopJoin { .. } => "NestedLoopJoin",
            Op::HashAggregate { .. } => "HashAggregate",
        }
    }
}

/// How an operator's selectivity is obtained (Algorithm 1's case split).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelKind {
    /// Scan or join: directly estimable from samples (own `ρ_n`, `S_n²`).
    Estimable,
    /// Sort / materialize: passes its child's selectivity through
    /// (Algorithm 1, line 16: `ρ_n ← μ̂_l`, `S_n² ← σ̂_l²`).
    PassThrough,
    /// Aggregate: uses the optimizer's cardinality estimate with `S_n² = 0`
    /// (Algorithm 1, lines 2–5).
    Aggregate,
}

/// A base-relation occurrence at a plan leaf. The occurrence index selects an
/// independent sample copy so that repeated uses of one relation stay
/// independent (the paper's multi-sample-table workaround, §5.1.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeafRef {
    pub relation: String,
    pub occurrence: usize,
}

/// Static per-node metadata derived from the tree shape.
#[derive(Debug, Clone)]
pub struct NodeMeta {
    pub id: NodeId,
    pub parent: Option<NodeId>,
    /// Leaf relations of the subtree rooted here, in leaf order. This is the
    /// paper's `R` (with multiplicity).
    pub leaf_tables: Vec<LeafRef>,
    pub sel_kind: SelKind,
    /// True if this node or any descendant is an aggregate — above that
    /// point sampling-based estimation is unavailable (the `Agg` flag of
    /// Algorithm 1).
    pub agg_at_or_below: bool,
}

/// An immutable physical plan.
///
/// Immutability is structural: [`PlanBuilder::build`] (via [`Plan::new`])
/// finalizes the arena, and no `&mut` accessor to nodes, root, or metadata
/// exists afterwards. That is what makes the interned cache keys below
/// ([`Plan::shape_signature`], [`Plan::literal_key`], [`Plan::shape_hash`])
/// safe to compute once per plan instead of once per request; debug builds
/// additionally assert the memos against a fresh recomputation on every
/// access, so any future mutation path trips an assertion instead of
/// serving stale keys.
#[derive(Debug)]
pub struct Plan {
    nodes: Vec<Op>,
    root: NodeId,
    meta: Vec<NodeMeta>,
    /// Interned serving-layer keys, computed on first use.
    keys: PlanKeys,
}

/// Lazily interned cache-key strings for one plan. A separate struct so
/// `Plan`'s manual `Clone` can carry already-computed memos over instead of
/// re-deriving them on the clone.
#[derive(Debug, Default)]
struct PlanKeys {
    shape_signature: std::sync::OnceLock<String>,
    literal_key: std::sync::OnceLock<String>,
    shape_hash: std::sync::OnceLock<u64>,
    /// Memoized [`crate::validate`] verdict, keyed by the catalog
    /// fingerprint it was computed against. `None` in the payload means
    /// the plan validated clean.
    validation: std::sync::OnceLock<(u64, Option<crate::validate::PlanError>)>,
}

impl Clone for Plan {
    fn clone(&self) -> Self {
        // Seed the clone's memos with whatever is already computed: cloning
        // a served plan must not reset its interned keys.
        let seed = |lock: &std::sync::OnceLock<String>| match lock.get() {
            Some(v) => std::sync::OnceLock::from(v.clone()),
            None => std::sync::OnceLock::new(),
        };
        Self {
            nodes: self.nodes.clone(),
            root: self.root,
            meta: self.meta.clone(),
            keys: PlanKeys {
                shape_signature: seed(&self.keys.shape_signature),
                literal_key: seed(&self.keys.literal_key),
                shape_hash: match self.keys.shape_hash.get() {
                    Some(&v) => std::sync::OnceLock::from(v),
                    None => std::sync::OnceLock::new(),
                },
                validation: match self.keys.validation.get() {
                    Some(v) => std::sync::OnceLock::from(v.clone()),
                    None => std::sync::OnceLock::new(),
                },
            },
        }
    }
}

impl Plan {
    /// Wraps an arena + root into a plan, deriving metadata.
    pub fn new(nodes: Vec<Op>, root: NodeId) -> Self {
        assert!(root < nodes.len(), "root out of range");
        let n = nodes.len();
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        for (id, op) in nodes.iter().enumerate() {
            for c in op.children() {
                assert!(c < n, "child id out of range");
                assert!(parent[c].is_none(), "node {c} has two parents");
                parent[c] = Some(id);
            }
        }

        // leaf_tables and agg flags, computed bottom-up by recursion.
        let mut leaf_tables: Vec<Option<Vec<LeafRef>>> = vec![None; n];
        let mut agg: Vec<bool> = vec![false; n];
        let mut occurrence_counter: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        Self::derive(
            &nodes,
            root,
            &mut leaf_tables,
            &mut agg,
            &mut occurrence_counter,
        );

        let meta = (0..n)
            .map(|id| NodeMeta {
                id,
                parent: parent[id],
                leaf_tables: leaf_tables[id].clone().unwrap_or_default(),
                sel_kind: match &nodes[id] {
                    Op::SeqScan { .. }
                    | Op::IndexScan { .. }
                    | Op::Filter { .. }
                    | Op::HashJoin { .. }
                    | Op::NestedLoopJoin { .. } => SelKind::Estimable,
                    Op::Sort { .. } | Op::Materialize { .. } => SelKind::PassThrough,
                    Op::HashAggregate { .. } => SelKind::Aggregate,
                },
                agg_at_or_below: agg[id],
            })
            .collect();

        Self {
            nodes,
            root,
            meta,
            keys: PlanKeys::default(),
        }
    }

    fn derive(
        nodes: &[Op],
        id: NodeId,
        leaf_tables: &mut Vec<Option<Vec<LeafRef>>>,
        agg: &mut Vec<bool>,
        occ: &mut std::collections::HashMap<String, usize>,
    ) {
        let children = nodes[id].children();
        let mut tables = Vec::new();
        let mut has_agg = nodes[id].is_aggregate();
        for &c in &children {
            Self::derive(nodes, c, leaf_tables, agg, occ);
            tables.extend(leaf_tables[c].clone().expect("child derived first"));
            has_agg |= agg[c];
        }
        if children.is_empty() {
            let relation = match &nodes[id] {
                Op::SeqScan { table, .. } | Op::IndexScan { table, .. } => table.clone(),
                other => panic!("leaf operator without table: {other:?}"),
            };
            let counter = occ.entry(relation.clone()).or_insert(0);
            tables.push(LeafRef {
                relation,
                occurrence: *counter,
            });
            *counter += 1;
        }
        leaf_tables[id] = Some(tables);
        agg[id] = has_agg;
    }

    pub fn root(&self) -> NodeId {
        self.root
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn op(&self, id: NodeId) -> &Op {
        &self.nodes[id]
    }

    pub fn meta(&self, id: NodeId) -> &NodeMeta {
        &self.meta[id]
    }

    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len()
    }

    /// Operators in bottom-up (post-order) sequence from the root.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        self.postorder_into(self.root, &mut out);
        out
    }

    fn postorder_into(&self, id: NodeId, out: &mut Vec<NodeId>) {
        for c in self.nodes[id].children() {
            self.postorder_into(c, out);
        }
        out.push(id);
    }

    /// `|R|` — the product of base-table cardinalities under node `id`
    /// (denominator of the selectivity definition, Eq. 3).
    pub fn leaf_cardinality_product(&self, id: NodeId, catalog: &Catalog) -> f64 {
        self.meta[id]
            .leaf_tables
            .iter()
            .map(|l| catalog.table(&l.relation).len() as f64)
            .product()
    }

    /// True if `descendant` lies in the subtree of `ancestor` (strictly).
    pub fn is_descendant(&self, descendant: NodeId, ancestor: NodeId) -> bool {
        let mut cur = self.meta[descendant].parent;
        while let Some(p) = cur {
            if p == ancestor {
                return true;
            }
            cur = self.meta[p].parent;
        }
        false
    }

    /// Output schema of a node, resolved against base-table schemas.
    pub fn output_schema(&self, id: NodeId, catalog: &Catalog) -> Schema {
        match &self.nodes[id] {
            Op::SeqScan { table, .. } | Op::IndexScan { table, .. } => {
                catalog.table(table).schema().clone()
            }
            Op::Filter { input, .. } | Op::Sort { input, .. } | Op::Materialize { input } => {
                self.output_schema(*input, catalog)
            }
            Op::HashJoin { left, right, .. } | Op::NestedLoopJoin { left, right, .. } => self
                .output_schema(*left, catalog)
                .concat(&self.output_schema(*right, catalog)),
            Op::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let in_schema = self.output_schema(*input, catalog);
                let mut cols: Vec<Column> = group_by
                    .iter()
                    .map(|g| in_schema.column(in_schema.expect_index(g)).clone())
                    .collect();
                for (name, func) in aggs {
                    let ty = match func {
                        AggFunc::CountStar => ColumnType::Int,
                        AggFunc::Sum(_) | AggFunc::Avg(_) => ColumnType::Float,
                        AggFunc::Min(c) | AggFunc::Max(c) => {
                            in_schema.column(in_schema.expect_index(c)).ty
                        }
                    };
                    cols.push(Column::new(name.clone(), ty));
                }
                Schema::new(cols)
            }
        }
    }

    /// Canonical encoding of the plan's *shape*: operators, child wiring,
    /// table and column names, and predicate structure — but **not** the
    /// literal constants inside predicates. Two plans with equal signatures
    /// probe the oracle cost model identically (same `NodeCostContext`s
    /// against the same catalog), so the signature is the key of the
    /// serving-layer fit cache: literal-perturbed instances of one query
    /// template collapse onto one entry.
    ///
    /// The encoding is injective over everything that feeds
    /// `NodeCostContext::build` — signature equality (not merely hash
    /// equality) is safe to treat as shape equality for one catalog.
    ///
    /// Interned: computed once per plan (the builder finalizes the plan, so
    /// the signature can never change) and returned as a borrowed `&str`,
    /// so the warm serving path stops re-deriving and re-formatting it per
    /// request. Debug builds re-derive and compare on every access as the
    /// mutation tripwire.
    pub fn shape_signature(&self) -> &str {
        let sig = self
            .keys
            .shape_signature
            .get_or_init(|| self.compute_shape_signature());
        debug_assert_eq!(
            *sig,
            self.compute_shape_signature(),
            "interned shape_signature is stale — Plan mutated after build"
        );
        sig
    }

    fn compute_shape_signature(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(self.nodes.len() * 24);
        let _ = write!(out, "r{};", self.root);
        for (id, op) in self.nodes.iter().enumerate() {
            let _ = write!(out, "{id}:{}", op.name());
            match op {
                Op::SeqScan { table, predicate } => {
                    let _ = write!(out, "[{table}|");
                    predicate.shape_into(&mut out);
                    out.push(']');
                }
                Op::IndexScan {
                    table,
                    key_col,
                    predicate,
                } => {
                    let _ = write!(out, "[{table}@{key_col}|");
                    predicate.shape_into(&mut out);
                    out.push(']');
                }
                Op::Filter { input, predicate } => {
                    let _ = write!(out, "[{input}|");
                    predicate.shape_into(&mut out);
                    out.push(']');
                }
                Op::Sort { input, keys } => {
                    let _ = write!(out, "[{input}|");
                    for (k, o) in keys {
                        let _ = write!(out, "{k}{}", if *o == SortOrder::Asc { '^' } else { 'v' });
                    }
                    out.push(']');
                }
                Op::Materialize { input } => {
                    let _ = write!(out, "[{input}]");
                }
                Op::HashJoin {
                    left,
                    right,
                    left_key,
                    right_key,
                }
                | Op::NestedLoopJoin {
                    left,
                    right,
                    left_key,
                    right_key,
                } => {
                    let _ = write!(out, "[{left},{right}|{left_key}={right_key}]");
                }
                Op::HashAggregate {
                    input,
                    group_by,
                    aggs,
                } => {
                    let _ = write!(out, "[{input}|{}|", group_by.join(","));
                    for (_, func) in aggs {
                        match func {
                            AggFunc::CountStar => out.push_str("n;"),
                            AggFunc::Sum(c) => {
                                let _ = write!(out, "s{c};");
                            }
                            AggFunc::Avg(c) => {
                                let _ = write!(out, "a{c};");
                            }
                            AggFunc::Min(c) => {
                                let _ = write!(out, "m{c};");
                            }
                            AggFunc::Max(c) => {
                                let _ = write!(out, "M{c};");
                            }
                        }
                    }
                    out.push(']');
                }
            }
            out.push(';');
        }
        out
    }

    /// Canonical encoding of the plan's *literal constants* — exactly the
    /// complement of [`Plan::shape_signature`]: for each node in id order,
    /// the predicate literals in [`Pred::literals_into`]'s injective
    /// encoding. For a fixed shape, `(shape_signature, literal_key)`
    /// identifies a query *instance*: equal pairs execute identically over
    /// any fixed sample set and therefore produce bit-identical
    /// selectivity estimates — the contract the serving-layer
    /// selectivity-estimate cache is built on. Operators without literals
    /// (joins, sorts, aggregates) contribute only their node separator, so
    /// the key stays aligned with the shape.
    ///
    /// Interned exactly like [`Plan::shape_signature`], with the same
    /// debug-build staleness assertion.
    pub fn literal_key(&self) -> &str {
        let key = self
            .keys
            .literal_key
            .get_or_init(|| self.compute_literal_key());
        debug_assert_eq!(
            *key,
            self.compute_literal_key(),
            "interned literal_key is stale — Plan mutated after build"
        );
        key
    }

    fn compute_literal_key(&self) -> String {
        let mut out = String::with_capacity(self.nodes.len() * 8);
        for op in &self.nodes {
            match op {
                Op::SeqScan { predicate, .. }
                | Op::IndexScan { predicate, .. }
                | Op::Filter { predicate, .. } => predicate.literals_into(&mut out),
                Op::Sort { .. }
                | Op::Materialize { .. }
                | Op::HashJoin { .. }
                | Op::NestedLoopJoin { .. }
                | Op::HashAggregate { .. } => {}
            }
            out.push('/');
        }
        out
    }

    /// FNV-1a hash of [`Plan::shape_signature`] — a compact shape id for
    /// logs, reports, and property tests. Cache lookups key on the full
    /// signature, not this hash, so hash collisions cannot alias entries.
    /// Interned alongside the signature it digests.
    pub fn shape_hash(&self) -> u64 {
        *self.keys.shape_hash.get_or_init(|| {
            const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
            const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
            let mut h = FNV_OFFSET;
            for b in self.shape_signature().bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        })
    }

    /// The interned [`crate::validate`] verdict slot. Owned by
    /// [`crate::validate::validate_cached`]; lives in [`PlanKeys`] so the
    /// manual `Clone` carries a served plan's verdict over with its other
    /// memos.
    pub(crate) fn validation_memo(
        &self,
    ) -> &std::sync::OnceLock<(u64, Option<crate::validate::PlanError>)> {
        &self.keys.validation
    }

    /// Multi-line indented plan rendering (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(self.root, 0, &mut out);
        out
    }

    fn explain_into(&self, id: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let op = &self.nodes[id];
        let detail = match op {
            Op::SeqScan { table, predicate } => {
                if predicate.is_true() {
                    table.to_string()
                } else {
                    format!("{table} [{predicate}]")
                }
            }
            Op::IndexScan {
                table,
                key_col,
                predicate,
            } => format!("{table} via {key_col} [{predicate}]"),
            Op::Filter { predicate, .. } => format!("[{predicate}]"),
            Op::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(k, o)| {
                        format!("{k} {}", if *o == SortOrder::Asc { "asc" } else { "desc" })
                    })
                    .collect();
                ks.join(", ")
            }
            Op::Materialize { .. } => String::new(),
            Op::HashJoin {
                left_key,
                right_key,
                ..
            }
            | Op::NestedLoopJoin {
                left_key,
                right_key,
                ..
            } => format!("{left_key} = {right_key}"),
            Op::HashAggregate { group_by, aggs, .. } => {
                let ag: Vec<String> = aggs.iter().map(|(n, _)| n.clone()).collect();
                format!("by [{}] -> [{}]", group_by.join(", "), ag.join(", "))
            }
        };
        let _ = writeln!(out, "{pad}#{id} {} {detail}", op.name());
        for c in op.children() {
            self.explain_into(c, depth + 1, out);
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.explain())
    }
}

/// Convenience builder for plan arenas.
#[derive(Debug, Default)]
pub struct PlanBuilder {
    nodes: Vec<Op>,
}

impl PlanBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, op: Op) -> NodeId {
        self.nodes.push(op);
        self.nodes.len() - 1
    }

    pub fn seq_scan(&mut self, table: impl Into<String>, predicate: Pred) -> NodeId {
        self.add(Op::SeqScan {
            table: table.into(),
            predicate,
        })
    }

    pub fn index_scan(
        &mut self,
        table: impl Into<String>,
        key_col: impl Into<String>,
        predicate: Pred,
    ) -> NodeId {
        self.add(Op::IndexScan {
            table: table.into(),
            key_col: key_col.into(),
            predicate,
        })
    }

    pub fn filter(&mut self, input: NodeId, predicate: Pred) -> NodeId {
        self.add(Op::Filter { input, predicate })
    }

    pub fn sort(&mut self, input: NodeId, keys: Vec<(String, SortOrder)>) -> NodeId {
        self.add(Op::Sort { input, keys })
    }

    pub fn materialize(&mut self, input: NodeId) -> NodeId {
        self.add(Op::Materialize { input })
    }

    pub fn hash_join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> NodeId {
        self.add(Op::HashJoin {
            left,
            right,
            left_key: left_key.into(),
            right_key: right_key.into(),
        })
    }

    pub fn nl_join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_key: impl Into<String>,
        right_key: impl Into<String>,
    ) -> NodeId {
        self.add(Op::NestedLoopJoin {
            left,
            right,
            left_key: left_key.into(),
            right_key: right_key.into(),
        })
    }

    pub fn aggregate(
        &mut self,
        input: NodeId,
        group_by: Vec<String>,
        aggs: Vec<(String, AggFunc)>,
    ) -> NodeId {
        self.add(Op::HashAggregate {
            input,
            group_by,
            aggs,
        })
    }

    pub fn build(self, root: NodeId) -> Plan {
        Plan::new(self.nodes, root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_storage::Value;

    /// Builds the paper's Figure 1 plan: (R1 ⋈ R2) ⋈ R3.
    fn figure1_plan() -> Plan {
        let mut b = PlanBuilder::new();
        let o1 = b.seq_scan("r1", Pred::True);
        let o2 = b.seq_scan("r2", Pred::True);
        let o4 = b.hash_join(o1, o2, "a", "a");
        let o3 = b.seq_scan("r3", Pred::True);
        let o5 = b.hash_join(o4, o3, "b", "b");
        b.build(o5)
    }

    #[test]
    fn figure1_leaf_tables() {
        let p = figure1_plan();
        // O4 joins R1, R2; O5 joins all three (Example 2 of the paper).
        let names = |id: NodeId| -> Vec<String> {
            p.meta(id)
                .leaf_tables
                .iter()
                .map(|l| l.relation.clone())
                .collect()
        };
        assert_eq!(names(2), vec!["r1", "r2"]);
        assert_eq!(names(4), vec!["r1", "r2", "r3"]);
        assert_eq!(names(0), vec!["r1"]);
    }

    #[test]
    fn parents_and_descendants() {
        let p = figure1_plan();
        assert_eq!(p.meta(0).parent, Some(2));
        assert_eq!(p.meta(2).parent, Some(4));
        assert_eq!(p.meta(4).parent, None);
        assert!(p.is_descendant(0, 4));
        assert!(p.is_descendant(2, 4));
        assert!(!p.is_descendant(4, 2));
        assert!(!p.is_descendant(3, 2));
    }

    #[test]
    fn postorder_visits_children_first() {
        let p = figure1_plan();
        let order = p.postorder();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sel_kinds() {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("r1", Pred::True);
        let srt = b.sort(s, vec![("a".into(), SortOrder::Asc)]);
        let agg = b.aggregate(srt, vec![], vec![("cnt".into(), AggFunc::CountStar)]);
        let p = b.build(agg);
        assert_eq!(p.meta(0).sel_kind, SelKind::Estimable);
        assert_eq!(p.meta(1).sel_kind, SelKind::PassThrough);
        assert_eq!(p.meta(2).sel_kind, SelKind::Aggregate);
        assert!(!p.meta(0).agg_at_or_below);
        assert!(!p.meta(1).agg_at_or_below);
        assert!(p.meta(2).agg_at_or_below);
    }

    #[test]
    fn agg_flag_propagates_upward() {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("r1", Pred::True);
        let agg = b.aggregate(s, vec![], vec![("cnt".into(), AggFunc::CountStar)]);
        let f = b.filter(agg, Pred::gt("cnt", Value::Int(10)));
        let p = b.build(f);
        assert!(p.meta(f).agg_at_or_below);
    }

    #[test]
    fn repeated_relation_gets_distinct_occurrences() {
        let mut b = PlanBuilder::new();
        let a = b.seq_scan("r1", Pred::True);
        let c = b.seq_scan("r1", Pred::True);
        let j = b.hash_join(a, c, "a", "a");
        let p = b.build(j);
        let leafs = &p.meta(j).leaf_tables;
        assert_eq!(leafs[0].occurrence, 0);
        assert_eq!(leafs[1].occurrence, 1);
    }

    #[test]
    fn explain_renders_tree() {
        let p = figure1_plan();
        let text = p.explain();
        assert!(text.contains("HashJoin"));
        assert!(text.contains("SeqScan r1"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn shape_signature_ignores_literals() {
        let build = |cut: i64| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
            let u = b.seq_scan("u", Pred::True);
            let j = b.hash_join(t, u, "a", "x");
            b.build(j)
        };
        let p1 = build(100);
        let p2 = build(9000);
        assert_eq!(p1.shape_signature(), p2.shape_signature());
        assert_eq!(p1.shape_hash(), p2.shape_hash());
    }

    #[test]
    fn shape_signature_distinguishes_structure() {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(5)));
        let base = b.build(t);

        // Different table.
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("u", Pred::lt("b", Value::Int(5)));
        assert_ne!(base.shape_signature(), b.build(t).shape_signature());

        // Different predicate column.
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("a", Value::Int(5)));
        assert_ne!(base.shape_signature(), b.build(t).shape_signature());

        // Different comparison operator (same op_count, still distinct).
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::ge("b", Value::Int(5)));
        assert_ne!(base.shape_signature(), b.build(t).shape_signature());

        // IN-list length changes op_count and therefore the shape.
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::in_list("b", vec![Value::Int(1)]));
        let one = b.build(t).shape_signature().to_string();
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::in_list("b", vec![Value::Int(1), Value::Int(2)]));
        assert_ne!(one, b.build(t).shape_signature());

        // Join algorithm matters (hash vs nested loop).
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::True);
        let u = b.seq_scan("u", Pred::True);
        let hj = b.hash_join(t, u, "a", "x");
        let hash = b.build(hj).shape_signature().to_string();
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::True);
        let u = b.seq_scan("u", Pred::True);
        let nl = b.nl_join(t, u, "a", "x");
        assert_ne!(hash, b.build(nl).shape_signature());
    }

    #[test]
    fn shape_signature_keeps_in_list_literal_free() {
        let build = |v: Vec<Value>, lo: Value, hi: Value| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan(
                "t",
                Pred::and(vec![Pred::in_list("b", v), Pred::between("a", lo, hi)]),
            );
            b.build(t).shape_signature().to_string()
        };
        let sig = build(
            vec![Value::Int(3), Value::Int(7)],
            Value::Int(0),
            Value::Int(9),
        );
        assert!(sig.contains("in(b#2)"), "{sig}");
        assert!(sig.contains("bw(a)"), "{sig}");
        assert_eq!(
            sig,
            build(
                vec![Value::Int(-5), Value::Int(123)],
                Value::Int(4),
                Value::Int(40),
            )
        );
    }

    #[test]
    fn literal_key_separates_instances_of_one_shape() {
        let build = |cut: i64| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
            let u = b.seq_scan("u", Pred::True);
            let j = b.hash_join(t, u, "a", "x");
            b.build(j)
        };
        let p1 = build(100);
        let p2 = build(9000);
        assert_eq!(p1.shape_signature(), p2.shape_signature());
        assert_ne!(p1.literal_key(), p2.literal_key());
        assert_eq!(p1.literal_key(), build(100).literal_key());
    }

    #[test]
    fn literal_key_is_injective_on_tricky_values() {
        let key = |p: Pred| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", p);
            b.build(t).literal_key().to_string()
        };
        // -0.0 vs 0.0: distinct bit patterns, distinct sample-pass results
        // under Value's bit-equality semantics.
        assert_ne!(
            key(Pred::eq("a", Value::Float(0.0))),
            key(Pred::eq("a", Value::Float(-0.0)))
        );
        // Int 1 vs Float 1.0 behave differently for Eq on Int columns.
        assert_ne!(
            key(Pred::eq("a", Value::Int(1))),
            key(Pred::eq("a", Value::Float(1.0)))
        );
        // Length-prefixed strings: no concatenation ambiguity across an
        // IN-list ("ab","c" vs "a","bc").
        assert_ne!(
            key(Pred::in_list("a", vec![Value::str("ab"), Value::str("c")])),
            key(Pred::in_list("a", vec![Value::str("a"), Value::str("bc")]))
        );
        // BETWEEN bounds are positional.
        assert_ne!(
            key(Pred::between("a", Value::Int(1), Value::Int(5))),
            key(Pred::between("a", Value::Int(5), Value::Int(1)))
        );
    }

    #[test]
    fn literal_key_aligns_per_node() {
        // Literals on different nodes of one shape land in different
        // segments: swapping them changes the key.
        let build = |t_cut: i64, u_cut: i64| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", Pred::lt("a", Value::Int(t_cut)));
            let u = b.seq_scan("u", Pred::lt("x", Value::Int(u_cut)));
            let j = b.hash_join(t, u, "a", "x");
            b.build(j)
        };
        assert_ne!(build(1, 2).literal_key(), build(2, 1).literal_key());
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn sharing_a_node_is_rejected() {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("r1", Pred::True);
        let j = b.hash_join(s, s, "a", "a");
        b.build(j);
    }
}
