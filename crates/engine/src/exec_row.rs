//! The original row-at-a-time executor, kept verbatim as the **reference
//! semantics** for the columnar data plane in [`crate::exec`].
//!
//! Every operator materializes `Vec<Row>` and (in sample mode) one
//! provenance vector per row. It is deliberately simple and slow; the golden
//! equivalence tests (`tests/columnar_equivalence.rs`) assert that the
//! columnar executor produces identical rows, traces, and provenance
//! matrices on the benchmark workloads. Do not optimise this module — its
//! value is being an independently-written oracle.

use crate::exec::{ExecOutcome, NodeTrace, ProvData};
use crate::plan::{AggFunc, NodeId, Op, Plan, SortOrder};
use std::collections::HashMap;
use uaq_storage::{Catalog, Row, SampleCatalog, Schema, Value};

/// Intermediate batch flowing between operators.
struct Batch {
    schema: Schema,
    rows: Vec<Row>,
    /// One provenance vector per row (sample mode only; dropped above
    /// aggregates because grouped rows have no single lineage).
    prov: Option<Vec<Vec<u32>>>,
}

enum Source<'a> {
    Full(&'a Catalog),
    Samples(&'a SampleCatalog),
}

struct Executor<'a> {
    plan: &'a Plan,
    source: Source<'a>,
    traces: Vec<NodeTrace>,
}

/// Row-based reference: executes a plan against the base tables.
pub fn execute_full_rows(plan: &Plan, catalog: &Catalog) -> ExecOutcome {
    crate::validate::debug_check(plan, Some(catalog), None);
    let mut ex = Executor {
        plan,
        source: Source::Full(catalog),
        traces: vec![NodeTrace::default(); plan.len()],
    };
    let batch = ex.exec(plan.root());
    ExecOutcome::from_rows(batch.schema, batch.rows, ex.traces)
}

/// Row-based reference: executes a plan against sample tables, tracking
/// provenance.
pub fn execute_on_samples_rows(plan: &Plan, samples: &SampleCatalog) -> ExecOutcome {
    crate::validate::debug_check(plan, None, Some(samples));
    let mut ex = Executor {
        plan,
        source: Source::Samples(samples),
        traces: vec![NodeTrace::default(); plan.len()],
    };
    let batch = ex.exec(plan.root());
    ExecOutcome::from_rows(batch.schema, batch.rows, ex.traces)
}

impl<'a> Executor<'a> {
    fn exec(&mut self, id: NodeId) -> Batch {
        let batch = match self.plan.op(id).clone() {
            Op::SeqScan { table, predicate } => self.scan(id, &table, &predicate),
            Op::IndexScan {
                table, predicate, ..
            } => self.scan(id, &table, &predicate),
            Op::Filter { input, predicate } => {
                let child = self.exec(input);
                self.filter(id, child, &predicate)
            }
            Op::Sort { input, keys } => {
                let child = self.exec(input);
                self.sort(id, child, &keys)
            }
            Op::Materialize { input } => {
                let child = self.exec(input);
                self.traces[id].left_input_rows = child.rows.len();
                self.traces[id].output_rows = child.rows.len();
                child
            }
            Op::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.exec(left);
                let r = self.exec(right);
                self.hash_join(id, l, r, &left_key, &right_key)
            }
            Op::NestedLoopJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.exec(left);
                let r = self.exec(right);
                self.nl_join(id, l, r, &left_key, &right_key)
            }
            Op::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let child = self.exec(input);
                self.aggregate(id, child, &group_by, &aggs)
            }
        };
        self.traces[id].output_rows = batch.rows.len();
        if let Some(prov) = &batch.prov {
            let arity = self.plan.meta(id).leaf_tables.len();
            let mut data = Vec::with_capacity(prov.len() * arity);
            for p in prov {
                debug_assert_eq!(p.len(), arity);
                data.extend_from_slice(p);
            }
            self.traces[id].prov = Some(ProvData::new(arity, data));
        }
        batch
    }

    fn scan(&mut self, id: NodeId, table: &str, predicate: &crate::expr::Pred) -> Batch {
        let (schema, rows, with_prov): (Schema, &[Row], bool) = match &self.source {
            Source::Full(catalog) => {
                let t = catalog.table(table);
                (t.schema().clone(), t.rows(), false)
            }
            Source::Samples(samples) => {
                let occurrence = self.plan.meta(id).leaf_tables[0].occurrence;
                let s = samples.sample(table, occurrence);
                (s.table().schema().clone(), s.table().rows(), true)
            }
        };
        self.traces[id].left_input_rows = rows.len();
        let bound = predicate.bind(&schema);
        let mut out_rows = Vec::new();
        let mut out_prov = if with_prov { Some(Vec::new()) } else { None };
        for (j, row) in rows.iter().enumerate() {
            if bound.eval(row) {
                out_rows.push(row.clone());
                if let Some(p) = &mut out_prov {
                    p.push(vec![j as u32]);
                }
            }
        }
        Batch {
            schema,
            rows: out_rows,
            prov: out_prov,
        }
    }

    fn filter(&mut self, id: NodeId, child: Batch, predicate: &crate::expr::Pred) -> Batch {
        self.traces[id].left_input_rows = child.rows.len();
        let bound = predicate.bind(&child.schema);
        match child.prov {
            Some(prov) => {
                let mut rows = Vec::new();
                let mut out_prov = Vec::new();
                for (row, p) in child.rows.into_iter().zip(prov) {
                    if bound.eval(&row) {
                        rows.push(row);
                        out_prov.push(p);
                    }
                }
                Batch {
                    schema: child.schema,
                    rows,
                    prov: Some(out_prov),
                }
            }
            None => {
                let rows = child.rows.into_iter().filter(|r| bound.eval(r)).collect();
                Batch {
                    schema: child.schema,
                    rows,
                    prov: None,
                }
            }
        }
    }

    fn sort(&mut self, id: NodeId, child: Batch, keys: &[(String, SortOrder)]) -> Batch {
        self.traces[id].left_input_rows = child.rows.len();
        let key_idx: Vec<(usize, SortOrder)> = keys
            .iter()
            .map(|(k, o)| (child.schema.expect_index(k), *o))
            .collect();
        let mut order: Vec<usize> = (0..child.rows.len()).collect();
        order.sort_by(|&a, &b| {
            for &(idx, dir) in &key_idx {
                let cmp = child.rows[a][idx].cmp(&child.rows[b][idx]);
                let cmp = if dir == SortOrder::Desc {
                    cmp.reverse()
                } else {
                    cmp
                };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
        let rows: Vec<Row> = order.iter().map(|&i| child.rows[i].clone()).collect();
        let prov = child
            .prov
            .map(|p| order.iter().map(|&i| p[i].clone()).collect());
        Batch {
            schema: child.schema,
            rows,
            prov,
        }
    }

    fn hash_join(
        &mut self,
        id: NodeId,
        left: Batch,
        right: Batch,
        left_key: &str,
        right_key: &str,
    ) -> Batch {
        self.traces[id].left_input_rows = left.rows.len();
        self.traces[id].right_input_rows = right.rows.len();
        let lk = left.schema.expect_index(left_key);
        let rk = right.schema.expect_index(right_key);
        let schema = left.schema.concat(&right.schema);
        let track = left.prov.is_some() && right.prov.is_some();

        // Build on the right input (the "inner"), probe with the left.
        let mut table: HashMap<Value, Vec<usize>> = HashMap::with_capacity(right.rows.len());
        for (i, row) in right.rows.iter().enumerate() {
            table.entry(row[rk].clone()).or_default().push(i);
        }

        let mut rows = Vec::new();
        let mut prov = if track { Some(Vec::new()) } else { None };
        for (li, lrow) in left.rows.iter().enumerate() {
            if let Some(matches) = table.get(&lrow[lk]) {
                for &ri in matches {
                    let mut row = lrow.clone();
                    row.extend_from_slice(&right.rows[ri]);
                    rows.push(row);
                    if let Some(p) = &mut prov {
                        let mut pr = left.prov.as_ref().expect("tracked")[li].clone();
                        pr.extend_from_slice(&right.prov.as_ref().expect("tracked")[ri]);
                        p.push(pr);
                    }
                }
            }
        }
        Batch { schema, rows, prov }
    }

    fn nl_join(
        &mut self,
        id: NodeId,
        left: Batch,
        right: Batch,
        left_key: &str,
        right_key: &str,
    ) -> Batch {
        self.traces[id].left_input_rows = left.rows.len();
        self.traces[id].right_input_rows = right.rows.len();
        let lk = left.schema.expect_index(left_key);
        let rk = right.schema.expect_index(right_key);
        let schema = left.schema.concat(&right.schema);
        let track = left.prov.is_some() && right.prov.is_some();

        let mut rows = Vec::new();
        let mut prov = if track { Some(Vec::new()) } else { None };
        for (li, lrow) in left.rows.iter().enumerate() {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if lrow[lk] == rrow[rk] {
                    let mut row = lrow.clone();
                    row.extend_from_slice(rrow);
                    rows.push(row);
                    if let Some(p) = &mut prov {
                        let mut pr = left.prov.as_ref().expect("tracked")[li].clone();
                        pr.extend_from_slice(&right.prov.as_ref().expect("tracked")[ri]);
                        p.push(pr);
                    }
                }
            }
        }
        Batch { schema, rows, prov }
    }

    fn aggregate(
        &mut self,
        id: NodeId,
        child: Batch,
        group_by: &[String],
        aggs: &[(String, AggFunc)],
    ) -> Batch {
        self.traces[id].left_input_rows = child.rows.len();
        let group_idx: Vec<usize> = group_by
            .iter()
            .map(|g| child.schema.expect_index(g))
            .collect();
        let agg_idx: Vec<Option<usize>> = aggs
            .iter()
            .map(|(_, f)| f.input_column().map(|c| child.schema.expect_index(c)))
            .collect();

        #[derive(Clone)]
        struct State {
            count: u64,
            sums: Vec<f64>,
            mins: Vec<Option<Value>>,
            maxs: Vec<Option<Value>>,
        }
        let fresh = State {
            count: 0,
            sums: vec![0.0; aggs.len()],
            mins: vec![None; aggs.len()],
            maxs: vec![None; aggs.len()],
        };

        let mut groups: HashMap<Vec<Value>, State> = HashMap::new();
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        for row in &child.rows {
            let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
            let state = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                fresh.clone()
            });
            state.count += 1;
            for (k, (_, func)) in aggs.iter().enumerate() {
                if let Some(idx) = agg_idx[k] {
                    let v = &row[idx];
                    match func {
                        AggFunc::Sum(_) | AggFunc::Avg(_) => state.sums[k] += v.as_float(),
                        AggFunc::Min(_) => {
                            if state.mins[k].as_ref().is_none_or(|m| v < m) {
                                state.mins[k] = Some(v.clone());
                            }
                        }
                        AggFunc::Max(_) => {
                            if state.maxs[k].as_ref().is_none_or(|m| v > m) {
                                state.maxs[k] = Some(v.clone());
                            }
                        }
                        AggFunc::CountStar => unreachable!("CountStar has no input column"),
                    }
                }
            }
        }

        // Scalar aggregate over empty input still yields one row.
        if group_by.is_empty() && order.is_empty() {
            order.push(vec![]);
            groups.insert(vec![], fresh);
        }

        let mut out_schema_cols = Vec::new();
        for (g, &gi) in group_by.iter().zip(&group_idx) {
            let col = child.schema.column(gi);
            out_schema_cols.push(uaq_storage::Column::new(g.clone(), col.ty));
        }
        for (name, func) in aggs {
            let ty = match func {
                AggFunc::CountStar => uaq_storage::ColumnType::Int,
                AggFunc::Sum(_) | AggFunc::Avg(_) => uaq_storage::ColumnType::Float,
                AggFunc::Min(c) | AggFunc::Max(c) => {
                    child.schema.column(child.schema.expect_index(c)).ty
                }
            };
            out_schema_cols.push(uaq_storage::Column::new(name.clone(), ty));
        }
        let schema = Schema::new(out_schema_cols);

        let rows: Vec<Row> = order
            .into_iter()
            .map(|key| {
                let state = &groups[&key];
                let mut row = key;
                for (k, (_, func)) in aggs.iter().enumerate() {
                    // Empty-input MIN/MAX defaults to a zero value of the
                    // declared output type (the seed returned Value::Int(0)
                    // unconditionally, which violated the output schema for
                    // Float/Str columns; both executors now share the typed
                    // default so the equivalence contract holds).
                    let out_ty = schema.column(group_idx.len() + k).ty;
                    let zero = || match out_ty {
                        uaq_storage::ColumnType::Int => Value::Int(0),
                        uaq_storage::ColumnType::Float => Value::Float(0.0),
                        uaq_storage::ColumnType::Str => Value::str(""),
                    };
                    row.push(match func {
                        AggFunc::CountStar => Value::Int(state.count as i64),
                        AggFunc::Sum(_) => Value::Float(state.sums[k]),
                        AggFunc::Avg(_) => Value::Float(if state.count == 0 {
                            0.0
                        } else {
                            state.sums[k] / state.count as f64
                        }),
                        AggFunc::Min(_) => state.mins[k].clone().unwrap_or_else(zero),
                        AggFunc::Max(_) => state.maxs[k].clone().unwrap_or_else(zero),
                    });
                }
                row
            })
            .collect();

        // Provenance cannot flow through grouping (Algorithm 1's Agg case).
        Batch {
            schema,
            rows,
            prov: None,
        }
    }
}
