//! Predicate expressions.
//!
//! Predicates are conjunctions/disjunctions of comparisons between a column
//! and a constant (plus closed ranges and IN-lists) — exactly the shape of
//! every predicate in the paper's MICRO / SELJOIN / TPCH benchmarks. Join
//! conditions are expressed separately as key-column equalities on the join
//! operators.

use std::fmt;
use uaq_storage::{Row, Schema, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn eval(&self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate over one relation's (or join result's) schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true (scan without filter).
    True,
    /// `col <op> value`.
    Cmp {
        col: String,
        op: CmpOp,
        value: Value,
    },
    /// `left_col <op> right_col` (e.g. TPC-H's `l_commitdate < l_receiptdate`).
    ColCmp {
        left: String,
        op: CmpOp,
        right: String,
    },
    /// `lo <= col <= hi` (closed range).
    Between { col: String, lo: Value, hi: Value },
    /// `col IN (values)`.
    InList { col: String, values: Vec<Value> },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
}

impl Pred {
    pub fn cmp(col: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Pred::Cmp {
            col: col.into(),
            op,
            value,
        }
    }

    pub fn col_cmp(left: impl Into<String>, op: CmpOp, right: impl Into<String>) -> Self {
        Pred::ColCmp {
            left: left.into(),
            op,
            right: right.into(),
        }
    }

    pub fn eq(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Eq, value)
    }

    pub fn le(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Le, value)
    }

    pub fn lt(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Lt, value)
    }

    pub fn ge(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Ge, value)
    }

    pub fn gt(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Gt, value)
    }

    pub fn between(col: impl Into<String>, lo: Value, hi: Value) -> Self {
        Pred::Between {
            col: col.into(),
            lo,
            hi,
        }
    }

    pub fn in_list(col: impl Into<String>, values: Vec<Value>) -> Self {
        Pred::InList {
            col: col.into(),
            values,
        }
    }

    pub fn and(preds: Vec<Pred>) -> Self {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Pred::True => {}
                Pred::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Pred::True,
            1 => flat.pop().expect("len checked"),
            _ => Pred::And(flat),
        }
    }

    pub fn or(preds: Vec<Pred>) -> Self {
        assert!(!preds.is_empty(), "empty OR");
        if preds.len() == 1 {
            return preds.into_iter().next().expect("len checked");
        }
        Pred::Or(preds)
    }

    /// Is this the trivial predicate?
    pub fn is_true(&self) -> bool {
        matches!(self, Pred::True)
    }

    /// Column names referenced by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Pred::True => {}
            Pred::Cmp { col, .. } | Pred::Between { col, .. } | Pred::InList { col, .. } => {
                out.push(col)
            }
            Pred::ColCmp { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
        }
    }

    /// Number of primitive comparisons in the predicate (schema-free
    /// counterpart of [`BoundPred::op_count`]; the oracle cost model charges
    /// this many CPU operations per evaluated tuple).
    pub fn op_count(&self) -> usize {
        match self {
            Pred::True => 0,
            Pred::Cmp { .. } | Pred::ColCmp { .. } => 1,
            Pred::Between { .. } => 2,
            Pred::InList { values, .. } => values.len(),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().map(Pred::op_count).sum(),
        }
    }

    /// Compiles the predicate against a schema for fast evaluation.
    pub fn bind(&self, schema: &Schema) -> BoundPred {
        match self {
            Pred::True => BoundPred::True,
            Pred::Cmp { col, op, value } => BoundPred::Cmp {
                idx: schema.expect_index(col),
                op: *op,
                value: value.clone(),
            },
            Pred::ColCmp { left, op, right } => BoundPred::ColCmp {
                left: schema.expect_index(left),
                op: *op,
                right: schema.expect_index(right),
            },
            Pred::Between { col, lo, hi } => BoundPred::Between {
                idx: schema.expect_index(col),
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Pred::InList { col, values } => BoundPred::InList {
                idx: schema.expect_index(col),
                values: values.clone(),
            },
            Pred::And(ps) => BoundPred::And(ps.iter().map(|p| p.bind(schema)).collect()),
            Pred::Or(ps) => BoundPred::Or(ps.iter().map(|p| p.bind(schema)).collect()),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp { col, op, value } => write!(f, "{col} {} {value}", op.symbol()),
            Pred::ColCmp { left, op, right } => write!(f, "{left} {} {right}", op.symbol()),
            Pred::Between { col, lo, hi } => write!(f, "{col} BETWEEN {lo} AND {hi}"),
            Pred::InList { col, values } => {
                let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "{col} IN ({})", vs.join(", "))
            }
            Pred::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            Pred::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" OR "))
            }
        }
    }
}

/// A predicate compiled against a concrete schema (column indices resolved).
#[derive(Debug, Clone)]
pub enum BoundPred {
    True,
    Cmp {
        idx: usize,
        op: CmpOp,
        value: Value,
    },
    ColCmp {
        left: usize,
        op: CmpOp,
        right: usize,
    },
    Between {
        idx: usize,
        lo: Value,
        hi: Value,
    },
    InList {
        idx: usize,
        values: Vec<Value>,
    },
    And(Vec<BoundPred>),
    Or(Vec<BoundPred>),
}

impl BoundPred {
    /// Evaluates the predicate on a row.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            BoundPred::True => true,
            BoundPred::Cmp { idx, op, value } => op.eval(&row[*idx], value),
            BoundPred::ColCmp { left, op, right } => op.eval(&row[*left], &row[*right]),
            BoundPred::Between { idx, lo, hi } => {
                let v = &row[*idx];
                v >= lo && v <= hi
            }
            BoundPred::InList { idx, values } => values.iter().any(|v| v == &row[*idx]),
            BoundPred::And(ps) => ps.iter().all(|p| p.eval(row)),
            BoundPred::Or(ps) => ps.iter().any(|p| p.eval(row)),
        }
    }

    /// Number of primitive comparisons (used by the oracle cost model to
    /// charge CPU operations per evaluated tuple).
    pub fn op_count(&self) -> usize {
        match self {
            BoundPred::True => 0,
            BoundPred::Cmp { .. } | BoundPred::ColCmp { .. } => 1,
            BoundPred::Between { .. } => 2,
            BoundPred::InList { values, .. } => values.len(),
            BoundPred::And(ps) | BoundPred::Or(ps) => ps.iter().map(BoundPred::op_count).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_storage::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::int("a"),
            Column::float("b"),
            Column::str("c"),
        ])
    }

    fn row(a: i64, b: f64, c: &str) -> Row {
        vec![Value::Int(a), Value::Float(b), Value::str(c)]
    }

    #[test]
    fn cmp_ops() {
        let s = schema();
        let r = row(5, 2.5, "x");
        assert!(Pred::eq("a", Value::Int(5)).bind(&s).eval(&r));
        assert!(Pred::lt("b", Value::Float(3.0)).bind(&s).eval(&r));
        assert!(!Pred::gt("b", Value::Float(3.0)).bind(&s).eval(&r));
        assert!(Pred::cmp("c", CmpOp::Ne, Value::str("y")).bind(&s).eval(&r));
        assert!(Pred::ge("a", Value::Int(5)).bind(&s).eval(&r));
        assert!(Pred::le("a", Value::Int(5)).bind(&s).eval(&r));
    }

    #[test]
    fn between_is_closed() {
        let s = schema();
        let p = Pred::between("a", Value::Int(3), Value::Int(5)).bind(&s);
        assert!(p.eval(&row(3, 0.0, "")));
        assert!(p.eval(&row(5, 0.0, "")));
        assert!(!p.eval(&row(6, 0.0, "")));
        assert!(!p.eval(&row(2, 0.0, "")));
    }

    #[test]
    fn in_list() {
        let s = schema();
        let p = Pred::in_list("c", vec![Value::str("x"), Value::str("y")]).bind(&s);
        assert!(p.eval(&row(0, 0.0, "x")));
        assert!(p.eval(&row(0, 0.0, "y")));
        assert!(!p.eval(&row(0, 0.0, "z")));
    }

    #[test]
    fn and_or_combinators() {
        let s = schema();
        let p = Pred::and(vec![
            Pred::ge("a", Value::Int(1)),
            Pred::or(vec![
                Pred::eq("c", Value::str("x")),
                Pred::eq("c", Value::str("y")),
            ]),
        ])
        .bind(&s);
        assert!(p.eval(&row(2, 0.0, "y")));
        assert!(!p.eval(&row(0, 0.0, "y")));
        assert!(!p.eval(&row(2, 0.0, "z")));
    }

    #[test]
    fn and_flattens_and_simplifies() {
        assert!(Pred::and(vec![]).is_true());
        assert!(Pred::and(vec![Pred::True, Pred::True]).is_true());
        let single = Pred::and(vec![Pred::eq("a", Value::Int(1))]);
        assert!(matches!(single, Pred::Cmp { .. }));
        let nested = Pred::and(vec![
            Pred::And(vec![Pred::eq("a", Value::Int(1)), Pred::eq("a", Value::Int(2))]),
            Pred::eq("a", Value::Int(3)),
        ]);
        if let Pred::And(ps) = nested {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened And");
        }
    }

    #[test]
    fn columns_are_collected_and_deduped() {
        let p = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::between("b", Value::Float(0.0), Value::Float(1.0)),
            Pred::eq("a", Value::Int(2)),
        ]);
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn op_count() {
        let s = schema();
        let p = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::between("b", Value::Float(0.0), Value::Float(1.0)),
            Pred::in_list("c", vec![Value::str("x"), Value::str("y"), Value::str("z")]),
        ])
        .bind(&s);
        assert_eq!(p.op_count(), 6);
        assert_eq!(BoundPred::True.op_count(), 0);
    }

    #[test]
    fn display_roundtrip_is_readable() {
        let p = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::between("b", Value::Float(0.0), Value::Float(1.0)),
        ]);
        assert_eq!(p.to_string(), "(a = 1) AND (b BETWEEN 0 AND 1)");
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn binding_unknown_column_panics() {
        Pred::eq("zz", Value::Int(0)).bind(&schema());
    }
}
