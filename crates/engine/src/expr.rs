//! Predicate expressions.
//!
//! Predicates are conjunctions/disjunctions of comparisons between a column
//! and a constant (plus closed ranges and IN-lists) — exactly the shape of
//! every predicate in the paper's MICRO / SELJOIN / TPCH benchmarks. Join
//! conditions are expressed separately as key-column equalities on the join
//! operators.

use std::cmp::Ordering;
use std::fmt;
use uaq_storage::{ColumnData, ColumnSlice, Row, Schema, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn eval(&self, lhs: &Value, rhs: &Value) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// A predicate over one relation's (or join result's) schema.
#[derive(Debug, Clone, PartialEq)]
pub enum Pred {
    /// Always true (scan without filter).
    True,
    /// `col <op> value`.
    Cmp {
        col: String,
        op: CmpOp,
        value: Value,
    },
    /// `left_col <op> right_col` (e.g. TPC-H's `l_commitdate < l_receiptdate`).
    ColCmp {
        left: String,
        op: CmpOp,
        right: String,
    },
    /// `lo <= col <= hi` (closed range).
    Between { col: String, lo: Value, hi: Value },
    /// `col IN (values)`.
    InList { col: String, values: Vec<Value> },
    /// Conjunction.
    And(Vec<Pred>),
    /// Disjunction.
    Or(Vec<Pred>),
}

impl Pred {
    pub fn cmp(col: impl Into<String>, op: CmpOp, value: Value) -> Self {
        Pred::Cmp {
            col: col.into(),
            op,
            value,
        }
    }

    pub fn col_cmp(left: impl Into<String>, op: CmpOp, right: impl Into<String>) -> Self {
        Pred::ColCmp {
            left: left.into(),
            op,
            right: right.into(),
        }
    }

    pub fn eq(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Eq, value)
    }

    pub fn le(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Le, value)
    }

    pub fn lt(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Lt, value)
    }

    pub fn ge(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Ge, value)
    }

    pub fn gt(col: impl Into<String>, value: Value) -> Self {
        Self::cmp(col, CmpOp::Gt, value)
    }

    pub fn between(col: impl Into<String>, lo: Value, hi: Value) -> Self {
        Pred::Between {
            col: col.into(),
            lo,
            hi,
        }
    }

    pub fn in_list(col: impl Into<String>, values: Vec<Value>) -> Self {
        Pred::InList {
            col: col.into(),
            values,
        }
    }

    pub fn and(preds: Vec<Pred>) -> Self {
        let mut flat = Vec::new();
        for p in preds {
            match p {
                Pred::True => {}
                Pred::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Pred::True,
            1 => flat.pop().expect("len checked"),
            _ => Pred::And(flat),
        }
    }

    pub fn or(preds: Vec<Pred>) -> Self {
        assert!(!preds.is_empty(), "empty OR");
        if preds.len() == 1 {
            return preds.into_iter().next().expect("len checked");
        }
        Pred::Or(preds)
    }

    /// Is this the trivial predicate?
    pub fn is_true(&self) -> bool {
        matches!(self, Pred::True)
    }

    /// Column names referenced by the predicate.
    pub fn columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Pred::True => {}
            Pred::Cmp { col, .. } | Pred::Between { col, .. } | Pred::InList { col, .. } => {
                out.push(col)
            }
            Pred::ColCmp { left, right, .. } => {
                out.push(left);
                out.push(right);
            }
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.collect_columns(out);
                }
            }
        }
    }

    /// Writes the predicate's *structure* — columns, comparison operators,
    /// connective shape, and IN-list length, but **not** literal values —
    /// into `out`. Two predicates with equal structure exercise the oracle
    /// cost model identically (same [`Pred::op_count`], same columns), so
    /// this is the predicate component of a plan's shape signature used for
    /// fit caching across literal-perturbed queries.
    pub fn shape_into(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Pred::True => out.push('T'),
            Pred::Cmp { col, op, .. } => {
                let _ = write!(out, "c({col}{})", op.symbol());
            }
            Pred::ColCmp { left, op, right } => {
                let _ = write!(out, "cc({left}{}{right})", op.symbol());
            }
            Pred::Between { col, .. } => {
                let _ = write!(out, "bw({col})");
            }
            Pred::InList { col, values } => {
                let _ = write!(out, "in({col}#{})", values.len());
            }
            Pred::And(ps) => {
                out.push_str("&(");
                for p in ps {
                    p.shape_into(out);
                }
                out.push(')');
            }
            Pred::Or(ps) => {
                out.push_str("|(");
                for p in ps {
                    p.shape_into(out);
                }
                out.push(')');
            }
        }
    }

    /// Writes the predicate's *literal constants* — exactly the part
    /// [`Pred::shape_into`] masks — into `out`, in a canonical encoding
    /// that is injective for a fixed shape: integers in decimal, floats as
    /// their IEEE-754 bit pattern (so `-0.0`, `0.0`, and NaN payloads all
    /// encode distinctly, matching [`uaq_storage::Value`] equality), and
    /// strings length-prefixed (no delimiter ambiguity). Together with the
    /// shape signature this identifies a query *instance*: two plans with
    /// equal shapes and equal literal keys execute identically on any
    /// fixed sample set, which is what the serving-layer
    /// selectivity-estimate cache keys on.
    pub fn literals_into(&self, out: &mut String) {
        use std::fmt::Write;
        fn value_into(v: &Value, out: &mut String) {
            match v {
                Value::Int(x) => {
                    let _ = write!(out, "i{x};");
                }
                Value::Float(x) => {
                    let _ = write!(out, "f{:016x};", x.to_bits());
                }
                Value::Str(s) => {
                    let _ = write!(out, "s{}:{s};", s.len());
                }
            }
        }
        match self {
            Pred::True | Pred::ColCmp { .. } => {}
            Pred::Cmp { value, .. } => value_into(value, out),
            Pred::Between { lo, hi, .. } => {
                value_into(lo, out);
                value_into(hi, out);
            }
            Pred::InList { values, .. } => {
                for v in values {
                    value_into(v, out);
                }
            }
            Pred::And(ps) | Pred::Or(ps) => {
                for p in ps {
                    p.literals_into(out);
                }
            }
        }
    }

    /// Number of primitive comparisons in the predicate (schema-free
    /// counterpart of [`BoundPred::op_count`]; the oracle cost model charges
    /// this many CPU operations per evaluated tuple).
    pub fn op_count(&self) -> usize {
        match self {
            Pred::True => 0,
            Pred::Cmp { .. } | Pred::ColCmp { .. } => 1,
            Pred::Between { .. } => 2,
            Pred::InList { values, .. } => values.len(),
            Pred::And(ps) | Pred::Or(ps) => ps.iter().map(Pred::op_count).sum(),
        }
    }

    /// Compiles the predicate against a schema for fast evaluation.
    pub fn bind(&self, schema: &Schema) -> BoundPred {
        match self {
            Pred::True => BoundPred::True,
            Pred::Cmp { col, op, value } => BoundPred::Cmp {
                idx: schema.expect_index(col),
                op: *op,
                value: value.clone(),
            },
            Pred::ColCmp { left, op, right } => BoundPred::ColCmp {
                left: schema.expect_index(left),
                op: *op,
                right: schema.expect_index(right),
            },
            Pred::Between { col, lo, hi } => BoundPred::Between {
                idx: schema.expect_index(col),
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Pred::InList { col, values } => BoundPred::InList {
                idx: schema.expect_index(col),
                values: values.clone(),
            },
            Pred::And(ps) => BoundPred::And(ps.iter().map(|p| p.bind(schema)).collect()),
            Pred::Or(ps) => BoundPred::Or(ps.iter().map(|p| p.bind(schema)).collect()),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp { col, op, value } => write!(f, "{col} {} {value}", op.symbol()),
            Pred::ColCmp { left, op, right } => write!(f, "{left} {} {right}", op.symbol()),
            Pred::Between { col, lo, hi } => write!(f, "{col} BETWEEN {lo} AND {hi}"),
            Pred::InList { col, values } => {
                let vs: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                write!(f, "{col} IN ({})", vs.join(", "))
            }
            Pred::And(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            Pred::Or(ps) => {
                let parts: Vec<String> = ps.iter().map(|p| format!("({p})")).collect();
                write!(f, "{}", parts.join(" OR "))
            }
        }
    }
}

/// A predicate compiled against a concrete schema (column indices resolved).
#[derive(Debug, Clone)]
pub enum BoundPred {
    True,
    Cmp {
        idx: usize,
        op: CmpOp,
        value: Value,
    },
    ColCmp {
        left: usize,
        op: CmpOp,
        right: usize,
    },
    Between {
        idx: usize,
        lo: Value,
        hi: Value,
    },
    InList {
        idx: usize,
        values: Vec<Value>,
    },
    And(Vec<BoundPred>),
    Or(Vec<BoundPred>),
}

impl BoundPred {
    /// Evaluates the predicate on a row.
    pub fn eval(&self, row: &Row) -> bool {
        match self {
            BoundPred::True => true,
            BoundPred::Cmp { idx, op, value } => op.eval(&row[*idx], value),
            BoundPred::ColCmp { left, op, right } => op.eval(&row[*left], &row[*right]),
            BoundPred::Between { idx, lo, hi } => {
                let v = &row[*idx];
                v >= lo && v <= hi
            }
            BoundPred::InList { idx, values } => values.iter().any(|v| v == &row[*idx]),
            BoundPred::And(ps) => ps.iter().all(|p| p.eval(row)),
            BoundPred::Or(ps) => ps.iter().any(|p| p.eval(row)),
        }
    }

    /// Number of primitive comparisons (used by the oracle cost model to
    /// charge CPU operations per evaluated tuple).
    pub fn op_count(&self) -> usize {
        match self {
            BoundPred::True => 0,
            BoundPred::Cmp { .. } | BoundPred::ColCmp { .. } => 1,
            BoundPred::Between { .. } => 2,
            BoundPred::InList { values, .. } => values.len(),
            BoundPred::And(ps) | BoundPred::Or(ps) => ps.iter().map(BoundPred::op_count).sum(),
        }
    }

    /// Evaluates the predicate on row `i` of a columnar batch. Mirrors
    /// [`BoundPred::eval`] exactly (same equality/ordering semantics as
    /// [`Value`]) without materializing a `Row`.
    pub fn eval_columns<C: AsRef<ColumnData>>(&self, cols: &[C], i: usize) -> bool {
        match self {
            BoundPred::True => true,
            BoundPred::Cmp { idx, op, value } => cmp_cell_value(*op, cols[*idx].as_ref(), i, value),
            BoundPred::ColCmp { left, op, right } => {
                cmp_cell_cell(*op, cols[*left].as_ref(), cols[*right].as_ref(), i)
            }
            BoundPred::Between { idx, lo, hi } => {
                let c = cols[*idx].as_ref();
                cell_value_cmp(c, i, lo) != Ordering::Less
                    && cell_value_cmp(c, i, hi) != Ordering::Greater
            }
            BoundPred::InList { idx, values } => values
                .iter()
                .any(|v| cell_value_eq(cols[*idx].as_ref(), i, v)),
            BoundPred::And(ps) => ps.iter().all(|p| p.eval_columns(cols, i)),
            BoundPred::Or(ps) => ps.iter().any(|p| p.eval_columns(cols, i)),
        }
    }

    /// Vectorized selection: indices of rows in `0..len` satisfying the
    /// predicate, in row order. The common single-comparison shapes run as
    /// tight loops over the typed column; everything else falls back to
    /// row-at-a-time [`Self::eval_columns`].
    pub fn filter_columns<C: AsRef<ColumnData>>(&self, cols: &[C], len: usize) -> Vec<u32> {
        match self {
            BoundPred::True => (0..len as u32).collect(),
            BoundPred::Cmp { idx, op, value } => match (cols[*idx].as_ref(), value) {
                (ColumnData::Int(v), Value::Int(c)) => {
                    let c = *c;
                    match op {
                        CmpOp::Eq => select(v, |x| x == c),
                        CmpOp::Ne => select(v, |x| x != c),
                        CmpOp::Lt => select(v, |x| x < c),
                        CmpOp::Le => select(v, |x| x <= c),
                        CmpOp::Gt => select(v, |x| x > c),
                        CmpOp::Ge => select(v, |x| x >= c),
                    }
                }
                (ColumnData::Float(v), Value::Float(c)) => select_float(v, *op, *c),
                (ColumnData::Float(v), Value::Int(c)) => select_float(v, *op, *c as f64),
                _ => self.select_generic(cols, len),
            },
            BoundPred::Between { idx, lo, hi } => match (cols[*idx].as_ref(), lo, hi) {
                (ColumnData::Int(v), Value::Int(lo), Value::Int(hi)) => {
                    let (lo, hi) = (*lo, *hi);
                    select(v, |x| x >= lo && x <= hi)
                }
                (ColumnData::Float(v), Value::Float(lo), Value::Float(hi)) => {
                    let (lo, hi) = (*lo, *hi);
                    select(v, |x| {
                        x.partial_cmp(&lo).expect("NaN in ordered value") != Ordering::Less
                            && x.partial_cmp(&hi).expect("NaN in ordered value")
                                != Ordering::Greater
                    })
                }
                _ => self.select_generic(cols, len),
            },
            BoundPred::And(ps) if !ps.is_empty() => {
                // Filter by the first conjunct vectorized, then refine.
                let mut sel = ps[0].filter_columns(cols, len);
                for p in &ps[1..] {
                    sel.retain(|&i| p.eval_columns(cols, i as usize));
                }
                sel
            }
            _ => self.select_generic(cols, len),
        }
    }

    fn select_generic<C: AsRef<ColumnData>>(&self, cols: &[C], len: usize) -> Vec<u32> {
        (0..len as u32)
            .filter(|&i| self.eval_columns(cols, i as usize))
            .collect()
    }

    /// Evaluates the predicate on logical row `i` of a batch of
    /// [`ColumnSlice`]s, reading through each column's selection chain.
    /// Mirrors [`BoundPred::eval`] exactly; note that with per-column
    /// selection views the *physical* index may differ between columns even
    /// though the logical row is the same.
    pub fn eval_slices(&self, cols: &[ColumnSlice], i: usize) -> bool {
        match self {
            BoundPred::True => true,
            BoundPred::Cmp { idx, op, value } => {
                let s = &cols[*idx];
                cmp_cell_value(*op, s.base().as_ref(), s.physical(i), value)
            }
            BoundPred::ColCmp { left, op, right } => {
                let (l, r) = (&cols[*left], &cols[*right]);
                cmp_cell_pair(
                    *op,
                    l.base().as_ref(),
                    l.physical(i),
                    r.base().as_ref(),
                    r.physical(i),
                )
            }
            BoundPred::Between { idx, lo, hi } => {
                let s = &cols[*idx];
                let (c, p) = (s.base().as_ref(), s.physical(i));
                cell_value_cmp(c, p, lo) != Ordering::Less
                    && cell_value_cmp(c, p, hi) != Ordering::Greater
            }
            BoundPred::InList { idx, values } => {
                let s = &cols[*idx];
                let (c, p) = (s.base().as_ref(), s.physical(i));
                values.iter().any(|v| cell_value_eq(c, p, v))
            }
            BoundPred::And(ps) => ps.iter().all(|p| p.eval_slices(cols, i)),
            BoundPred::Or(ps) => ps.iter().any(|p| p.eval_slices(cols, i)),
        }
    }

    /// Vectorized selection over a batch of [`ColumnSlice`]s: *logical* row
    /// indices in `0..len` satisfying the predicate, in logical order. The
    /// slice counterpart of [`BoundPred::filter_columns`]: the same typed
    /// fast paths, with physical indices streamed through the selection
    /// chain ([`ColumnSlice::for_each_physical`]) instead of enumerated.
    pub fn filter_slices(&self, cols: &[ColumnSlice], len: usize) -> Vec<u32> {
        match self {
            BoundPred::True => (0..len as u32).collect(),
            BoundPred::Cmp { idx, op, value } => {
                let s = &cols[*idx];
                match (s.base().as_ref(), value) {
                    (ColumnData::Int(v), Value::Int(c)) => {
                        let c = *c;
                        match op {
                            CmpOp::Eq => select_slice(v, s, |x| x == c),
                            CmpOp::Ne => select_slice(v, s, |x| x != c),
                            CmpOp::Lt => select_slice(v, s, |x| x < c),
                            CmpOp::Le => select_slice(v, s, |x| x <= c),
                            CmpOp::Gt => select_slice(v, s, |x| x > c),
                            CmpOp::Ge => select_slice(v, s, |x| x >= c),
                        }
                    }
                    (ColumnData::Float(v), Value::Float(c)) => select_slice_float(v, s, *op, *c),
                    (ColumnData::Float(v), Value::Int(c)) => {
                        select_slice_float(v, s, *op, *c as f64)
                    }
                    _ => self.select_generic_slices(cols, len),
                }
            }
            BoundPred::Between { idx, lo, hi } => {
                let s = &cols[*idx];
                match (s.base().as_ref(), lo, hi) {
                    (ColumnData::Int(v), Value::Int(lo), Value::Int(hi)) => {
                        let (lo, hi) = (*lo, *hi);
                        select_slice(v, s, |x| x >= lo && x <= hi)
                    }
                    (ColumnData::Float(v), Value::Float(lo), Value::Float(hi)) => {
                        let (lo, hi) = (*lo, *hi);
                        select_slice(v, s, |x| {
                            x.partial_cmp(&lo).expect("NaN in ordered value") != Ordering::Less
                                && x.partial_cmp(&hi).expect("NaN in ordered value")
                                    != Ordering::Greater
                        })
                    }
                    _ => self.select_generic_slices(cols, len),
                }
            }
            BoundPred::And(ps) if !ps.is_empty() => {
                // Filter by the first conjunct vectorized, then refine.
                let mut sel = ps[0].filter_slices(cols, len);
                for p in &ps[1..] {
                    sel.retain(|&i| p.eval_slices(cols, i as usize));
                }
                sel
            }
            _ => self.select_generic_slices(cols, len),
        }
    }

    fn select_generic_slices(&self, cols: &[ColumnSlice], len: usize) -> Vec<u32> {
        (0..len as u32)
            .filter(|&i| self.eval_slices(cols, i as usize))
            .collect()
    }
}

fn select<T: Copy>(col: &[T], pred: impl Fn(T) -> bool) -> Vec<u32> {
    col.iter()
        .enumerate()
        .filter_map(|(i, &x)| pred(x).then_some(i as u32))
        .collect()
}

/// [`select`] through a slice's selection chain: `pred` sees physical
/// cells, the output indices are logical.
fn select_slice<T: Copy>(v: &[T], slice: &ColumnSlice, pred: impl Fn(T) -> bool) -> Vec<u32> {
    let mut out = Vec::new();
    let mut i = 0u32;
    slice.for_each_physical(|p| {
        if pred(v[p]) {
            out.push(i);
        }
        i += 1;
    });
    out
}

fn select_slice_float(v: &[f64], s: &ColumnSlice, op: CmpOp, c: f64) -> Vec<u32> {
    match op {
        // Float equality is bit equality (Value semantics: NaN == NaN,
        // -0.0 != 0.0), not numeric equality.
        CmpOp::Eq => select_slice(v, s, |x| x.to_bits() == c.to_bits()),
        CmpOp::Ne => select_slice(v, s, |x| x.to_bits() != c.to_bits()),
        CmpOp::Lt => select_slice(v, s, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") == Ordering::Less
        }),
        CmpOp::Le => select_slice(v, s, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") != Ordering::Greater
        }),
        CmpOp::Gt => select_slice(v, s, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") == Ordering::Greater
        }),
        CmpOp::Ge => select_slice(v, s, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") != Ordering::Less
        }),
    }
}

fn select_float(v: &[f64], op: CmpOp, c: f64) -> Vec<u32> {
    match op {
        // Float equality is bit equality (Value semantics: NaN == NaN,
        // -0.0 != 0.0), not numeric equality.
        CmpOp::Eq => select(v, |x| x.to_bits() == c.to_bits()),
        CmpOp::Ne => select(v, |x| x.to_bits() != c.to_bits()),
        CmpOp::Lt => select(v, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") == Ordering::Less
        }),
        CmpOp::Le => select(v, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") != Ordering::Greater
        }),
        CmpOp::Gt => select(v, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") == Ordering::Greater
        }),
        CmpOp::Ge => select(v, |x| {
            x.partial_cmp(&c).expect("NaN in ordered value") != Ordering::Less
        }),
    }
}

fn cmp_cell_value(op: CmpOp, col: &ColumnData, i: usize, v: &Value) -> bool {
    match op {
        CmpOp::Eq => cell_value_eq(col, i, v),
        CmpOp::Ne => !cell_value_eq(col, i, v),
        CmpOp::Lt => cell_value_cmp(col, i, v) == Ordering::Less,
        CmpOp::Le => cell_value_cmp(col, i, v) != Ordering::Greater,
        CmpOp::Gt => cell_value_cmp(col, i, v) == Ordering::Greater,
        CmpOp::Ge => cell_value_cmp(col, i, v) != Ordering::Less,
    }
}

fn cmp_cell_cell(op: CmpOp, l: &ColumnData, r: &ColumnData, i: usize) -> bool {
    cmp_cell_pair(op, l, i, r, i)
}

/// [`cmp_cell_cell`] generalized to independent cell indices — needed when
/// the two columns sit behind different selection chains, so one logical
/// row maps to different physical indices per column.
fn cmp_cell_pair(op: CmpOp, l: &ColumnData, li: usize, r: &ColumnData, ri: usize) -> bool {
    match op {
        CmpOp::Eq => cell_pair_eq(l, li, r, ri),
        CmpOp::Ne => !cell_pair_eq(l, li, r, ri),
        CmpOp::Lt => cell_pair_cmp(l, li, r, ri) == Ordering::Less,
        CmpOp::Le => cell_pair_cmp(l, li, r, ri) != Ordering::Greater,
        CmpOp::Gt => cell_pair_cmp(l, li, r, ri) == Ordering::Greater,
        CmpOp::Ge => cell_pair_cmp(l, li, r, ri) != Ordering::Less,
    }
}

/// Mirrors `Value::eq` for cell `i` of a column against a constant: Int/Int
/// is integer equality, any numeric mix is f64 *bit* equality, Str/Str is
/// string equality, and mixed Str/numeric is false.
fn cell_value_eq(col: &ColumnData, i: usize, v: &Value) -> bool {
    match (col, v) {
        (ColumnData::Int(c), Value::Int(b)) => c[i] == *b,
        (ColumnData::Float(c), Value::Float(b)) => c[i].to_bits() == b.to_bits(),
        (ColumnData::Int(c), Value::Float(b)) => (c[i] as f64).to_bits() == b.to_bits(),
        (ColumnData::Float(c), Value::Int(b)) => c[i].to_bits() == (*b as f64).to_bits(),
        (ColumnData::Str(c), Value::Str(b)) => *c[i] == **b,
        _ => false,
    }
}

/// Mirrors `Value::cmp` for cell `i` of a column against a constant.
fn cell_value_cmp(col: &ColumnData, i: usize, v: &Value) -> Ordering {
    match (col, v) {
        (ColumnData::Int(c), Value::Int(b)) => c[i].cmp(b),
        (ColumnData::Str(c), Value::Str(b)) => (*c[i]).cmp(b),
        (ColumnData::Int(c), Value::Float(b)) => {
            (c[i] as f64).partial_cmp(b).expect("NaN in ordered value")
        }
        (ColumnData::Float(c), Value::Float(b)) => {
            c[i].partial_cmp(b).expect("NaN in ordered value")
        }
        (ColumnData::Float(c), Value::Int(b)) => c[i]
            .partial_cmp(&(*b as f64))
            .expect("NaN in ordered value"),
        (c, v) => panic!("cannot order {:?} cell vs {v:?}", c.ty()),
    }
}

/// Mirrors `Value::eq` between cell `li` of one column and `ri` of another.
pub(crate) fn cell_pair_eq(l: &ColumnData, li: usize, r: &ColumnData, ri: usize) -> bool {
    match (l, r) {
        (ColumnData::Int(a), ColumnData::Int(b)) => a[li] == b[ri],
        (ColumnData::Float(a), ColumnData::Float(b)) => a[li].to_bits() == b[ri].to_bits(),
        (ColumnData::Int(a), ColumnData::Float(b)) => (a[li] as f64).to_bits() == b[ri].to_bits(),
        (ColumnData::Float(a), ColumnData::Int(b)) => a[li].to_bits() == (b[ri] as f64).to_bits(),
        (ColumnData::Str(a), ColumnData::Str(b)) => a[li] == b[ri],
        _ => false,
    }
}

/// Mirrors `Value::cmp` between cell `li` of one column and `ri` of another.
fn cell_pair_cmp(l: &ColumnData, li: usize, r: &ColumnData, ri: usize) -> Ordering {
    match (l, r) {
        (ColumnData::Int(a), ColumnData::Int(b)) => a[li].cmp(&b[ri]),
        (ColumnData::Str(a), ColumnData::Str(b)) => a[li].cmp(&b[ri]),
        (ColumnData::Int(a), ColumnData::Float(b)) => (a[li] as f64)
            .partial_cmp(&b[ri])
            .expect("NaN in ordered value"),
        (ColumnData::Float(a), ColumnData::Float(b)) => {
            a[li].partial_cmp(&b[ri]).expect("NaN in ordered value")
        }
        (ColumnData::Float(a), ColumnData::Int(b)) => a[li]
            .partial_cmp(&(b[ri] as f64))
            .expect("NaN in ordered value"),
        (a, b) => panic!("cannot order {:?} cell vs {:?} cell", a.ty(), b.ty()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_storage::Column;

    fn schema() -> Schema {
        Schema::new(vec![Column::int("a"), Column::float("b"), Column::str("c")])
    }

    fn row(a: i64, b: f64, c: &str) -> Row {
        vec![Value::Int(a), Value::Float(b), Value::str(c)]
    }

    #[test]
    fn cmp_ops() {
        let s = schema();
        let r = row(5, 2.5, "x");
        assert!(Pred::eq("a", Value::Int(5)).bind(&s).eval(&r));
        assert!(Pred::lt("b", Value::Float(3.0)).bind(&s).eval(&r));
        assert!(!Pred::gt("b", Value::Float(3.0)).bind(&s).eval(&r));
        assert!(Pred::cmp("c", CmpOp::Ne, Value::str("y")).bind(&s).eval(&r));
        assert!(Pred::ge("a", Value::Int(5)).bind(&s).eval(&r));
        assert!(Pred::le("a", Value::Int(5)).bind(&s).eval(&r));
    }

    #[test]
    fn between_is_closed() {
        let s = schema();
        let p = Pred::between("a", Value::Int(3), Value::Int(5)).bind(&s);
        assert!(p.eval(&row(3, 0.0, "")));
        assert!(p.eval(&row(5, 0.0, "")));
        assert!(!p.eval(&row(6, 0.0, "")));
        assert!(!p.eval(&row(2, 0.0, "")));
    }

    #[test]
    fn in_list() {
        let s = schema();
        let p = Pred::in_list("c", vec![Value::str("x"), Value::str("y")]).bind(&s);
        assert!(p.eval(&row(0, 0.0, "x")));
        assert!(p.eval(&row(0, 0.0, "y")));
        assert!(!p.eval(&row(0, 0.0, "z")));
    }

    #[test]
    fn and_or_combinators() {
        let s = schema();
        let p = Pred::and(vec![
            Pred::ge("a", Value::Int(1)),
            Pred::or(vec![
                Pred::eq("c", Value::str("x")),
                Pred::eq("c", Value::str("y")),
            ]),
        ])
        .bind(&s);
        assert!(p.eval(&row(2, 0.0, "y")));
        assert!(!p.eval(&row(0, 0.0, "y")));
        assert!(!p.eval(&row(2, 0.0, "z")));
    }

    #[test]
    fn and_flattens_and_simplifies() {
        assert!(Pred::and(vec![]).is_true());
        assert!(Pred::and(vec![Pred::True, Pred::True]).is_true());
        let single = Pred::and(vec![Pred::eq("a", Value::Int(1))]);
        assert!(matches!(single, Pred::Cmp { .. }));
        let nested = Pred::and(vec![
            Pred::And(vec![
                Pred::eq("a", Value::Int(1)),
                Pred::eq("a", Value::Int(2)),
            ]),
            Pred::eq("a", Value::Int(3)),
        ]);
        if let Pred::And(ps) = nested {
            assert_eq!(ps.len(), 3);
        } else {
            panic!("expected flattened And");
        }
    }

    #[test]
    fn columns_are_collected_and_deduped() {
        let p = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::between("b", Value::Float(0.0), Value::Float(1.0)),
            Pred::eq("a", Value::Int(2)),
        ]);
        assert_eq!(p.columns(), vec!["a", "b"]);
    }

    #[test]
    fn op_count() {
        let s = schema();
        let p = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::between("b", Value::Float(0.0), Value::Float(1.0)),
            Pred::in_list("c", vec![Value::str("x"), Value::str("y"), Value::str("z")]),
        ])
        .bind(&s);
        assert_eq!(p.op_count(), 6);
        assert_eq!(BoundPred::True.op_count(), 0);
    }

    #[test]
    fn display_roundtrip_is_readable() {
        let p = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::between("b", Value::Float(0.0), Value::Float(1.0)),
        ]);
        assert_eq!(p.to_string(), "(a = 1) AND (b BETWEEN 0 AND 1)");
    }

    #[test]
    #[should_panic(expected = "no column")]
    fn binding_unknown_column_panics() {
        Pred::eq("zz", Value::Int(0)).bind(&schema());
    }
}
