//! Test-only fault hook for the sample-pass executor.
//!
//! The serving layer's chaos harness needs to inject failures *inside* the
//! engine — a panic mid-sample-pass is the realistic worst case for the
//! prediction pipeline — without the engine depending on the service's
//! `FaultInjector`. The hook is a per-thread callback fired at the top of
//! [`execute_on_samples`](crate::execute_on_samples): service workers
//! install a forwarder to their injector at thread start (thread-locals do
//! not cross threads, so every worker — including respawned ones — must
//! install its own), and production threads pay one thread-local
//! `is_none` check per sample pass, noise against the pass itself.

use std::cell::RefCell;

thread_local! {
    static SAMPLE_PASS_HOOK: RefCell<Option<Box<dyn FnMut()>>> = const { RefCell::new(None) };
}

/// Installs `hook` to run at the top of every sample-pass execution on
/// *this thread*, replacing any previous hook. The hook may panic — that
/// is its purpose.
pub fn install_sample_pass_hook(hook: Box<dyn FnMut()>) {
    SAMPLE_PASS_HOOK.with(|h| *h.borrow_mut() = Some(hook));
}

/// Removes this thread's sample-pass hook, if any.
pub fn clear_sample_pass_hook() {
    SAMPLE_PASS_HOOK.with(|h| *h.borrow_mut() = None);
}

/// Fires this thread's hook, if one is installed. Re-entrant calls (a
/// hook that somehow triggers another sample pass) are ignored rather
/// than deadlocked on the `RefCell`.
pub(crate) fn fire_sample_pass_hook() {
    SAMPLE_PASS_HOOK.with(|h| {
        if let Ok(mut slot) = h.try_borrow_mut() {
            if let Some(hook) = slot.as_mut() {
                hook();
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn hook_fires_only_on_the_installing_thread_and_clears() {
        let count = Rc::new(RefCell::new(0u32));
        let c = Rc::clone(&count);
        install_sample_pass_hook(Box::new(move || *c.borrow_mut() += 1));
        fire_sample_pass_hook();
        fire_sample_pass_hook();
        assert_eq!(*count.borrow(), 2);

        // A fresh thread has no hook.
        std::thread::spawn(fire_sample_pass_hook).join().unwrap();

        clear_sample_pass_hook();
        fire_sample_pass_hook();
        assert_eq!(*count.borrow(), 2, "cleared hook no longer fires");
    }
}
