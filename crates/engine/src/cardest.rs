//! Histogram-based cardinality estimation — the "optimizer estimates" of the
//! substrate.
//!
//! Two uses, both mirroring the paper: (1) the heuristic planner picks access
//! paths / join algorithms from these estimates, and (2) Algorithm 1 (lines
//! 2–5) falls back to the optimizer's cardinality for aggregates and every
//! operator above them, with `S_n² = 0`.

use crate::expr::{CmpOp, Pred};
use crate::plan::{NodeId, Op, Plan};
use uaq_storage::{Catalog, TableStats, Value};

/// Default selectivity when no statistics apply (PostgreSQL's habit).
const DEFAULT_SEL: f64 = 1.0 / 3.0;
/// Default equality selectivity without distinct statistics.
const DEFAULT_EQ_SEL: f64 = 0.005;

/// Estimates the selectivity of a predicate against one relation's stats.
pub fn predicate_selectivity(pred: &Pred, stats: &TableStats) -> f64 {
    match pred {
        Pred::True => 1.0,
        Pred::Cmp { col, op, value } => cmp_selectivity(col, *op, value, stats),
        // Column-vs-column comparisons: PostgreSQL-style default.
        Pred::ColCmp { .. } => DEFAULT_SEL,
        Pred::Between { col, lo, hi } => match (lo.numeric(), hi.numeric()) {
            (Some(l), Some(h)) => stats
                .histogram(col)
                .map_or(DEFAULT_SEL, |hist| hist.range_selectivity(l, h)),
            _ => DEFAULT_SEL,
        },
        Pred::InList { col, values } => {
            let eq = eq_selectivity_for(col, stats);
            (eq * values.len() as f64).min(1.0)
        }
        Pred::And(ps) => ps.iter().map(|p| predicate_selectivity(p, stats)).product(),
        Pred::Or(ps) => {
            let none: f64 = ps
                .iter()
                .map(|p| 1.0 - predicate_selectivity(p, stats))
                .product();
            1.0 - none
        }
    }
}

fn eq_selectivity_for(col: &str, stats: &TableStats) -> f64 {
    let d = stats.distinct(col);
    if d > 0 {
        1.0 / d as f64
    } else {
        DEFAULT_EQ_SEL
    }
}

fn cmp_selectivity(col: &str, op: CmpOp, value: &Value, stats: &TableStats) -> f64 {
    match op {
        CmpOp::Eq => eq_selectivity_for(col, stats),
        CmpOp::Ne => 1.0 - eq_selectivity_for(col, stats),
        CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
            match (value.numeric(), stats.histogram(col)) {
                (Some(x), Some(hist)) => {
                    let below = hist.fraction_below(x);
                    // Closed vs open bounds differ by the equality mass.
                    let eq = if hist.distinct() > 0 {
                        1.0 / hist.distinct() as f64
                    } else {
                        0.0
                    };
                    match op {
                        CmpOp::Lt => below,
                        CmpOp::Le => (below + eq).min(1.0),
                        CmpOp::Gt => (1.0 - below - eq).max(0.0),
                        CmpOp::Ge => 1.0 - below,
                        _ => unreachable!(),
                    }
                }
                _ => DEFAULT_SEL,
            }
        }
    }
}

/// Finds the distinct count of a column by searching the stats of the leaf
/// relations under a node (TPC-H column names are globally unique, so the
/// first hit wins).
fn distinct_under(plan: &Plan, id: NodeId, catalog: &Catalog, column: &str) -> Option<usize> {
    for leaf in &plan.meta(id).leaf_tables {
        let stats = catalog.stats(&leaf.relation);
        let d = stats.distinct(column);
        if d > 0 {
            return Some(d);
        }
    }
    None
}

/// Stats of the leaf relation that owns `column` under `id`, if any.
fn stats_for_column<'a>(
    plan: &Plan,
    id: NodeId,
    catalog: &'a Catalog,
    column: &str,
) -> Option<&'a TableStats> {
    for leaf in &plan.meta(id).leaf_tables {
        let table = catalog.table(&leaf.relation);
        if table.schema().index_of(column).is_some() {
            return Some(catalog.stats(&leaf.relation));
        }
    }
    None
}

/// Selectivity of a predicate evaluated above an arbitrary node: each
/// referenced column is resolved to its owning base relation's statistics,
/// assuming independence across columns.
fn predicate_selectivity_above(plan: &Plan, id: NodeId, catalog: &Catalog, pred: &Pred) -> f64 {
    match pred {
        Pred::True => 1.0,
        Pred::And(ps) => ps
            .iter()
            .map(|p| predicate_selectivity_above(plan, id, catalog, p))
            .product(),
        Pred::Or(ps) => {
            let none: f64 = ps
                .iter()
                .map(|p| 1.0 - predicate_selectivity_above(plan, id, catalog, p))
                .product();
            1.0 - none
        }
        Pred::ColCmp { .. } => DEFAULT_SEL,
        Pred::Cmp { col, .. } | Pred::Between { col, .. } | Pred::InList { col, .. } => {
            match stats_for_column(plan, id, catalog, col) {
                Some(stats) => predicate_selectivity(pred, stats),
                None => DEFAULT_SEL,
            }
        }
    }
}

/// Expected join-output density of an equi-join node: the System R
/// `1 / max(d(left_key), d(right_key))` factor, i.e. the expected fraction
/// of (left, right) input pairs that match. The oracle cost model uses it to
/// charge output-emission work as a product term (`N_l · N_r · density`),
/// which keeps binary cost functions within the C5'/C6' forms of the paper.
pub fn join_key_density(plan: &Plan, id: NodeId, catalog: &Catalog) -> f64 {
    match plan.op(id) {
        Op::HashJoin {
            left,
            right,
            left_key,
            right_key,
        }
        | Op::NestedLoopJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let dl = distinct_under(plan, *left, catalog, left_key).unwrap_or(1);
            let dr = distinct_under(plan, *right, catalog, right_key).unwrap_or(1);
            1.0 / dl.max(dr).max(1) as f64
        }
        other => panic!("join_key_density on non-join operator {}", other.name()),
    }
}

/// Per-node output-cardinality estimates (indexed by `NodeId`).
pub fn estimate_cardinalities(plan: &Plan, catalog: &Catalog) -> Vec<f64> {
    let mut est = vec![0.0; plan.len()];
    for id in plan.postorder() {
        est[id] = match plan.op(id) {
            Op::SeqScan { table, predicate }
            | Op::IndexScan {
                table, predicate, ..
            } => {
                let t = catalog.table(table);
                let sel = predicate_selectivity(predicate, catalog.stats(table));
                t.len() as f64 * sel
            }
            Op::Filter { input, predicate } => {
                est[*input] * predicate_selectivity_above(plan, *input, catalog, predicate)
            }
            Op::Sort { input, .. } | Op::Materialize { input } => est[*input],
            Op::HashJoin {
                left,
                right,
                left_key,
                right_key,
            }
            | Op::NestedLoopJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                // System R: |L| · |R| / max(d(left_key), d(right_key)).
                let dl = distinct_under(plan, *left, catalog, left_key).unwrap_or(1);
                let dr = distinct_under(plan, *right, catalog, right_key).unwrap_or(1);
                let d = dl.max(dr).max(1) as f64;
                est[*left] * est[*right] / d
            }
            Op::HashAggregate {
                input, group_by, ..
            } => {
                if group_by.is_empty() {
                    1.0
                } else {
                    let groups: f64 = group_by
                        .iter()
                        .map(|g| distinct_under(plan, *input, catalog, g).unwrap_or(1) as f64)
                        .product();
                    groups.min(est[*input]).max(1.0)
                }
            }
        };
    }
    est
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanBuilder;
    use uaq_storage::{Column, Schema, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b"), Column::str("tag")]);
        let rows = (0..1000)
            .map(|i| {
                vec![
                    Value::Int(i % 100),
                    Value::Int(i),
                    Value::str(format!("t{}", i % 4)),
                ]
            })
            .collect();
        c.add_table(Table::new("t", s, rows));
        let s2 = Schema::new(vec![Column::int("k"), Column::int("v")]);
        let rows2 = (0..200)
            .map(|i| vec![Value::Int(i % 100), Value::Int(i)])
            .collect();
        c.add_table(Table::new("u", s2, rows2));
        c
    }

    #[test]
    fn scan_estimates_track_truth() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("b", Value::Int(250)));
        let plan = b.build(s);
        let est = estimate_cardinalities(&plan, &c);
        assert!((est[0] - 250.0).abs() < 40.0, "est={}", est[0]);
    }

    #[test]
    fn eq_uses_distinct_count() {
        let c = catalog();
        let stats = c.stats("t");
        let sel = predicate_selectivity(&Pred::eq("a", Value::Int(5)), stats);
        assert!((sel - 0.01).abs() < 1e-9);
        let sel_str = predicate_selectivity(&Pred::eq("tag", Value::str("t1")), stats);
        assert!((sel_str - 0.25).abs() < 1e-9);
    }

    #[test]
    fn and_multiplies_or_complements() {
        let c = catalog();
        let stats = c.stats("t");
        let p_and = Pred::and(vec![
            Pred::eq("a", Value::Int(1)),
            Pred::eq("tag", Value::str("t0")),
        ]);
        assert!((predicate_selectivity(&p_and, stats) - 0.0025).abs() < 1e-9);
        let p_or = Pred::or(vec![
            Pred::eq("tag", Value::str("t0")),
            Pred::eq("tag", Value::str("t1")),
        ]);
        let got = predicate_selectivity(&p_or, stats);
        assert!((got - 0.4375).abs() < 1e-9, "got={got}"); // 1 − 0.75²
    }

    #[test]
    fn join_estimate_uses_key_distincts() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "k");
        let plan = b.build(j);
        let est = estimate_cardinalities(&plan, &c);
        // 1000 · 200 / max(100, 100) = 2000; truth: each a-value 0..100
        // matches 10·2 = 20 rows → 100·20 = 2000. Exact here.
        assert!((est[j] - 2000.0).abs() < 1.0, "est={}", est[j]);
    }

    #[test]
    fn aggregate_group_estimate() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let a = b.aggregate(
            s,
            vec!["a".into()],
            vec![("cnt".into(), crate::plan::AggFunc::CountStar)],
        );
        let plan = b.build(a);
        let est = estimate_cardinalities(&plan, &c);
        assert!((est[a] - 100.0).abs() < 1.0);
    }

    #[test]
    fn scalar_aggregate_estimates_one() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let a = b.aggregate(
            s,
            vec![],
            vec![("cnt".into(), crate::plan::AggFunc::CountStar)],
        );
        let plan = b.build(a);
        let est = estimate_cardinalities(&plan, &c);
        assert_eq!(est[a], 1.0);
    }

    #[test]
    fn filter_above_join_resolves_columns() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, "a", "k");
        let f = b.filter(j, Pred::eq("tag", Value::str("t0")));
        let plan = b.build(f);
        let est = estimate_cardinalities(&plan, &c);
        assert!((est[f] - 500.0).abs() < 1.0, "est={}", est[f]);
    }

    #[test]
    fn range_bounds_respect_openness() {
        let c = catalog();
        let stats = c.stats("t");
        let lt = predicate_selectivity(&Pred::lt("a", Value::Int(50)), stats);
        let le = predicate_selectivity(&Pred::le("a", Value::Int(50)), stats);
        assert!(le > lt);
        let ge = predicate_selectivity(&Pred::ge("a", Value::Int(50)), stats);
        let gt = predicate_selectivity(&Pred::gt("a", Value::Int(50)), stats);
        assert!(ge > gt);
        assert!((lt + ge - 1.0).abs() < 1e-9);
    }
}
