//! Plan execution over **columnar batches**.
//!
//! One executor serves two purposes:
//!
//! * **Full mode** runs a plan against the base tables, producing the query
//!   answer and the *true* per-operator cardinalities (the ground truth the
//!   simulated hardware charges for, and the reference for selectivity-error
//!   experiments, Tables 6–9).
//! * **Sample mode** runs the *same* plan against the materialized sample
//!   tables, with every intermediate row carrying provenance: the sampling
//!   step index of each contributing sample tuple (one per leaf relation of
//!   the subtree). This is exactly the annotated execution of §3.2.2 from
//!   which `ρ_n` and `S_n²` are computed in one pass.
//!
//! # Columnar data plane
//!
//! Intermediate results flow between operators as a [`Batch`]: one typed
//! vector per column ([`ColumnData`], mirroring the 3-type `Value` model)
//! plus a *flat* provenance matrix ([`ProvData`]) instead of the former
//! per-row `Vec<Vec<u32>>`. The operator kernels work on row *indices*:
//!
//! * **selection** produces an index vector via vectorized typed-column
//!   loops ([`crate::expr::BoundPred::filter_slices`]) that becomes a
//!   shared selection layer — no gather;
//! * **hash join** builds its hash table on borrowed keys (primitive `i64`
//!   fast path, or a [`JoinKey`]-style borrowed view mirroring `Value`
//!   equality) with row-index payloads — no row is cloned until the final
//!   materialization;
//! * **hash aggregation** groups on interned key ids (one hash probe per
//!   input row resolving to a dense group index);
//! * **provenance** is carried end-to-end as the flat `arity × rows` matrix
//!   the estimator already consumes, so per-node traces are a plain clone.
//!
//! # Zero-copy columns, selection vectors, and lazy rows
//!
//! Columns travel as [`uaq_storage::ColumnSlice`] — an `Arc`-shared base
//! column ([`uaq_storage::ColumnRef`]) behind an optional chain of
//! `Arc`-shared selection vectors. A pass-through operator (an unfiltered
//! scan, a keep-everything filter, a materialize) shares payloads for the
//! price of a refcount bump; a *selective* operator (filter, join output,
//! sort) layers **one shared selection vector** over all of its input's
//! columns and copies nothing. Selection-over-selection composes, and
//! chains deeper than [`uaq_storage::MAX_SELECTION_DEPTH`] are flattened
//! into one composed vector so reads stay cache-friendly.
//!
//! Gathers are deferred to the consumers that genuinely need dense cells:
//! aggregation state build and sort keys densify the columns they read
//! (only those), schema-changing ops emit fresh columns by construction,
//! and [`ExecOutcome::columns`] densifies at the edge on demand.
//! [`ProvData`] follows the same discipline — an `Arc`-shared matrix
//! behind an optional row selection — so per-operator provenance tracking
//! and per-node trace storage are handle copies, not `arity × rows`
//! gathers.
//!
//! [`ExecOutcome`] is columnar: schema, shared root slices, and traces.
//! **Rows are opt-in at the edge** via [`ExecOutcome::rows`] /
//! [`ExecOutcome::row_iter`] / the paged [`ExecOutcome::row_pages`] — the
//! prediction path (selectivity estimation, cost fitting, experiments)
//! reads only traces and never pays for row materialization. The row-based
//! reference executor ([`crate::exec_row`]) and the golden equivalence
//! tests are the only row-eager consumers left, which is exactly what
//! proves the zero-copy plane changes nothing observable.

use crate::expr::cell_pair_eq;
use crate::plan::{AggFunc, NodeId, Op, Plan, SortOrder};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};
use uaq_storage::{
    rows_from_columns, Catalog, ColumnData, ColumnRef, ColumnSlice, Row, SampleCatalog, Schema,
    Value,
};

/// Flattened provenance matrix of one operator's sample-mode output:
/// `arity` step indices per output row, aligned with the node's
/// `leaf_tables` order.
///
/// Late-materialized like the columns it travels with: the backing matrix
/// is `Arc`-shared (a per-node trace stores a handle, not a copy) behind an
/// optional selection over its rows, so a selective filter/sort re-selects
/// provenance for the price of one index vector instead of re-gathering
/// `arity × rows` entries. Re-selection composes eagerly — the selection
/// depth never exceeds one. Logical accessors ([`ProvData::row`],
/// [`ProvData::for_each_leaf_step`], `PartialEq`) read through the
/// indirection, so consumers cannot observe the representation.
#[derive(Debug, Clone, Default)]
pub struct ProvData {
    arity: usize,
    data: Arc<Vec<u32>>,
    sel: Option<Arc<Vec<u32>>>,
}

impl ProvData {
    /// Wraps a freshly built dense matrix (row-major, `arity` per row).
    pub fn new(arity: usize, data: Vec<u32>) -> Self {
        Self {
            arity,
            data: Arc::new(data),
            sel: None,
        }
    }

    /// Arity-1 matrix sharing an existing index vector — a scan's
    /// provenance *is* its selection vector, one allocation for both.
    pub fn from_shared(arity: usize, data: Arc<Vec<u32>>) -> Self {
        Self {
            arity,
            data,
            sel: None,
        }
    }

    /// Step indices per row (the number of leaf relations of the subtree).
    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn rows(&self) -> usize {
        match &self.sel {
            Some(sel) => sel.len(),
            None => self.data.len().checked_div(self.arity).unwrap_or(0),
        }
    }

    pub fn row(&self, i: usize) -> &[u32] {
        let p = match &self.sel {
            Some(sel) => sel[i] as usize,
            None => i,
        };
        &self.data[p * self.arity..(p + 1) * self.arity]
    }

    /// Streams column `k` of the matrix — leaf `k`'s step index for every
    /// logical row, in row order — to `f`. The estimator's counting pass:
    /// depth-specialized (strided scan when dense, indexed loads when
    /// selected) so it never materializes rows.
    pub fn for_each_leaf_step(&self, k: usize, mut f: impl FnMut(u32)) {
        match &self.sel {
            None => {
                if self.data.is_empty() {
                    return;
                }
                for &step in self.data[k..].iter().step_by(self.arity.max(1)) {
                    f(step);
                }
            }
            Some(sel) => {
                for &r in sel.iter() {
                    f(self.data[r as usize * self.arity + k]);
                }
            }
        }
    }

    /// Re-selects logical rows `sel[0], sel[1], …` — shares the backing
    /// matrix and composes with any existing selection (depth stays ≤ 1).
    pub fn select(&self, sel: &Arc<Vec<u32>>) -> ProvData {
        let composed = match &self.sel {
            None => sel.clone(),
            Some(cur) => Arc::new(sel.iter().map(|&i| cur[i as usize]).collect()),
        };
        ProvData {
            arity: self.arity,
            data: self.data.clone(),
            sel: Some(composed),
        }
    }

    /// New *dense* matrix containing rows `idx[0], idx[1], …` of `self`
    /// (an eager copy; operators use [`ProvData::select`] instead).
    pub fn gather_rows(&self, idx: &[u32]) -> ProvData {
        let mut data = Vec::with_capacity(idx.len() * self.arity);
        for &i in idx {
            data.extend_from_slice(self.row(i as usize));
        }
        ProvData::new(self.arity, data)
    }

    /// Row-wise concatenation: output row `k` is `left.row(li[k]) ++
    /// right.row(ri[k])` (the provenance of a join's output).
    pub fn join_rows(left: &ProvData, li: &[u32], right: &ProvData, ri: &[u32]) -> ProvData {
        debug_assert_eq!(li.len(), ri.len());
        let arity = left.arity + right.arity;
        let mut data = Vec::with_capacity(li.len() * arity);
        for (&l, &r) in li.iter().zip(ri) {
            data.extend_from_slice(left.row(l as usize));
            data.extend_from_slice(right.row(r as usize));
        }
        ProvData::new(arity, data)
    }
}

/// Logical equality: same arity and the same step indices row by row,
/// regardless of how each matrix is represented (dense vs selected).
impl PartialEq for ProvData {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.rows() == other.rows()
            && (0..self.rows()).all(|i| self.row(i) == other.row(i))
    }
}

impl Eq for ProvData {}

/// Per-operator execution observations.
#[derive(Debug, Clone, Default)]
pub struct NodeTrace {
    /// Output cardinality `M`.
    pub output_rows: usize,
    /// Left input cardinality `N_l` (for scans: the base/sample table size).
    pub left_input_rows: usize,
    /// Right input cardinality `N_r` (0 for unary operators).
    pub right_input_rows: usize,
    /// Sample-mode output provenance (None in full mode or above aggregates).
    pub prov: Option<ProvData>,
}

/// Result of executing a plan: a **columnar** value. The root columns are
/// `Arc`-shared with whatever produced them (for a pass-through plan, the
/// base table itself), and rows are materialized only when a consumer
/// explicitly asks via [`ExecOutcome::rows`] or [`ExecOutcome::row_iter`].
///
/// Contract for consumers: do **not** assume rows exist. Everything on the
/// prediction path (`uaq_selest`, `uaq_core`, `uaq_experiments`,
/// `uaq_service`) reads only `traces`, `schema`, and cardinalities; row
/// materialization is an edge concern (query answers, debugging, the golden
/// equivalence oracle).
#[derive(Debug)]
pub struct ExecOutcome {
    /// Output schema of the root operator.
    pub schema: Schema,
    /// Root output slices exactly as the executor produced them — possibly
    /// selection views over shared base columns, never densified just to
    /// be stored. `None` for rows-seeded outcomes (the row-based reference
    /// executor).
    slices: Option<Vec<ColumnSlice>>,
    /// Lazy dense mirror, built from `slices` on first
    /// [`ExecOutcome::columns`] call (or from the row mirror for a
    /// rows-seeded outcome).
    columns: OnceLock<Vec<ColumnRef>>,
    /// Root output cardinality.
    num_rows: usize,
    /// Lazy row mirror, built on first [`ExecOutcome::rows`] call. The
    /// row-based reference executor seeds it eagerly (its native format).
    rows: OnceLock<Vec<Row>>,
    /// Per-node traces, indexed by `NodeId`.
    pub traces: Vec<NodeTrace>,
}

impl ExecOutcome {
    fn columnar(
        schema: Schema,
        slices: Vec<ColumnSlice>,
        num_rows: usize,
        traces: Vec<NodeTrace>,
    ) -> Self {
        debug_assert!(slices.iter().all(|c| c.len() == num_rows));
        Self {
            schema,
            slices: Some(slices),
            columns: OnceLock::new(),
            num_rows,
            rows: OnceLock::new(),
            traces,
        }
    }

    /// Wraps a row-major result (the reference executor's native output):
    /// rows are kept as-is; the columnar mirror is built only if someone
    /// asks for [`ExecOutcome::columns`].
    pub(crate) fn from_rows(schema: Schema, rows: Vec<Row>, traces: Vec<NodeTrace>) -> Self {
        Self {
            schema,
            slices: None,
            columns: OnceLock::new(),
            num_rows: rows.len(),
            rows: OnceLock::from(rows),
            traces,
        }
    }

    /// Root output cardinality (available without materializing anything).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The root output as the executor's late-materialized slices — shared
    /// base columns behind selection chains, no payload copies. `None` for
    /// a rows-seeded (reference-executor) outcome. Lets tests observe
    /// deferral: sharing, chain depth, and the flatten bound.
    pub fn slices(&self) -> Option<&[ColumnSlice]> {
        self.slices.as_deref()
    }

    /// Column-major *dense* view of the root output, built (and cached) on
    /// first call. A pass-through plan densifies for free — its slices are
    /// dense and the base handles are shared, not copied; selective plans
    /// pay their one deferred gather here.
    pub fn columns(&self) -> &[ColumnRef] {
        self.columns.get_or_init(|| match &self.slices {
            Some(slices) => slices.iter().map(ColumnSlice::to_dense).collect(),
            None => {
                let rows = self.rows.get().expect("either slices or rows seeded");
                uaq_storage::columns_from_rows(&self.schema, rows)
                    .into_iter()
                    .map(ColumnRef::new)
                    .collect()
            }
        })
    }

    /// Row-major view of the root output, materialized (and cached) on
    /// first call — the explicit opt-in for edge consumers that really
    /// need all rows at once. Prefer [`ExecOutcome::row_pages`] when the
    /// result may be huge.
    pub fn rows(&self) -> &[Row] {
        self.rows.get_or_init(|| match &self.slices {
            Some(slices) => (0..self.num_rows)
                .map(|i| slices.iter().map(|s| s.value(i)).collect())
                .collect(),
            None => {
                let columns = self.columns.get().expect("either slices or rows seeded");
                rows_from_columns(columns, self.num_rows)
            }
        })
    }

    /// Whether the full row mirror has been built (tests use this to prove
    /// that paged consumption never materializes it).
    pub fn rows_materialized(&self) -> bool {
        self.rows.get().is_some()
    }

    /// Iterator adapter yielding one [`Row`] at a time — streaming
    /// consumption without building the full mirror. Serves from whichever
    /// representation is already materialized: seeded rows are cloned
    /// per-item, otherwise rows are assembled through the shared slices.
    pub fn row_iter(&self) -> Box<dyn Iterator<Item = Row> + '_> {
        if let Some(rows) = self.rows.get() {
            return Box::new(rows.iter().cloned());
        }
        if let Some(slices) = &self.slices {
            return Box::new(
                (0..self.num_rows).map(move |i| slices.iter().map(|s| s.value(i)).collect()),
            );
        }
        let columns = self.columns();
        Box::new((0..self.num_rows).map(move |i| columns.iter().map(|c| c.value(i)).collect()))
    }

    /// Streams the result as pages of at most `page_size` rows (the last
    /// page may be shorter), materializing one page at a time — the
    /// service edge for results too large to hold as rows all at once.
    /// Never populates the full-row cache, though it serves from it when
    /// some other consumer already built it. A `page_size` of 0 is clamped
    /// to 1.
    pub fn row_pages(&self, page_size: usize) -> RowPages<'_> {
        RowPages {
            outcome: self,
            next: 0,
            page_size: page_size.max(1),
        }
    }
}

/// Iterator over an [`ExecOutcome`]'s rows in fixed-size pages; see
/// [`ExecOutcome::row_pages`]. Peak resident row memory is one page.
#[derive(Debug)]
pub struct RowPages<'a> {
    outcome: &'a ExecOutcome,
    next: usize,
    page_size: usize,
}

impl Iterator for RowPages<'_> {
    type Item = Vec<Row>;

    fn next(&mut self) -> Option<Vec<Row>> {
        if self.next >= self.outcome.num_rows {
            return None;
        }
        let end = (self.next + self.page_size).min(self.outcome.num_rows);
        let page: Vec<Row> = if let Some(rows) = self.outcome.rows.get() {
            rows[self.next..end].to_vec()
        } else if let Some(slices) = &self.outcome.slices {
            (self.next..end)
                .map(|i| slices.iter().map(|s| s.value(i)).collect())
                .collect()
        } else {
            let columns = self.outcome.columns();
            (self.next..end)
                .map(|i| columns.iter().map(|c| c.value(i)).collect())
                .collect()
        };
        self.next = end;
        Some(page)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.outcome.num_rows - self.next;
        let pages = remaining.div_ceil(self.page_size);
        (pages, Some(pages))
    }
}

impl ExactSizeIterator for RowPages<'_> {}

/// Intermediate columnar batch flowing between operators. Columns are
/// late-materialized [`ColumnSlice`]s — `Arc`-shared base payloads behind
/// `Arc`-shared selection chains: a pass-through operator clones handles
/// (O(1)), a selective operator layers one shared index vector over all
/// columns, and payloads are copied only where a consumer densifies.
struct Batch {
    schema: Schema,
    cols: Vec<ColumnSlice>,
    len: usize,
    /// Flat provenance matrix (sample mode only; dropped above aggregates
    /// because grouped rows have no single lineage).
    prov: Option<ProvData>,
}

impl Batch {
    fn col(&self, i: usize) -> &ColumnSlice {
        &self.cols[i]
    }
}

enum Source<'a> {
    Full(&'a Catalog),
    Samples(&'a SampleCatalog),
}

struct Executor<'a> {
    plan: &'a Plan,
    source: Source<'a>,
    traces: Vec<NodeTrace>,
}

/// Executes a plan against the base tables. The returned outcome is
/// columnar; no row is materialized unless the caller asks.
pub fn execute_full(plan: &Plan, catalog: &Catalog) -> ExecOutcome {
    crate::validate::debug_check(plan, Some(catalog), None);
    uaq_telemetry::span::timed(uaq_telemetry::span::Stage::Exec, || {
        let mut ex = Executor {
            plan,
            source: Source::Full(catalog),
            traces: vec![NodeTrace::default(); plan.len()],
        };
        let batch = ex.exec(plan.root());
        ExecOutcome::columnar(batch.schema, batch.cols, batch.len, ex.traces)
    })
}

/// Executes a plan against sample tables, tracking provenance. Row-free:
/// the estimator consumes only the traces, so the former root-row
/// materialization is gone from the prediction path entirely.
pub fn execute_on_samples(plan: &Plan, samples: &SampleCatalog) -> ExecOutcome {
    crate::validate::debug_check(plan, None, Some(samples));
    crate::fault::fire_sample_pass_hook();
    uaq_telemetry::span::timed(uaq_telemetry::span::Stage::Exec, || {
        let mut ex = Executor {
            plan,
            source: Source::Samples(samples),
            traces: vec![NodeTrace::default(); plan.len()],
        };
        let batch = ex.exec(plan.root());
        ExecOutcome::columnar(batch.schema, batch.cols, batch.len, ex.traces)
    })
}

/// Borrowed join-key view of one cell, mirroring `Value`'s equality and
/// hashing exactly (Int/Int integer equality, numeric mixes compared on
/// f64 bits, strings by content) without cloning anything.
#[derive(Debug, Clone, Copy)]
enum JoinKey<'a> {
    Int(i64),
    /// An f64 key, stored as bits (`Value::eq` on floats is bit equality).
    Bits(u64),
    Str(&'a str),
}

impl PartialEq for JoinKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (JoinKey::Int(a), JoinKey::Int(b)) => a == b,
            (JoinKey::Bits(a), JoinKey::Bits(b)) => a == b,
            (JoinKey::Int(a), JoinKey::Bits(b)) | (JoinKey::Bits(b), JoinKey::Int(a)) => {
                (*a as f64).to_bits() == *b
            }
            (JoinKey::Str(a), JoinKey::Str(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for JoinKey<'_> {}

impl Hash for JoinKey<'_> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            // Ints and whole floats that compare equal must hash equally.
            JoinKey::Int(v) => (*v as f64).to_bits().hash(state),
            JoinKey::Bits(b) => b.hash(state),
            JoinKey::Str(s) => s.hash(state),
        }
    }
}

fn join_key_at(col: &ColumnData, i: usize) -> JoinKey<'_> {
    match col {
        ColumnData::Int(v) => JoinKey::Int(v[i]),
        ColumnData::Float(v) => JoinKey::Bits(v[i].to_bits()),
        ColumnData::Str(v) => JoinKey::Str(&v[i]),
    }
}

/// Owned group-by key part. Group keys come from a fixed set of columns, so
/// every row's part for a given column has the same variant and the derived
/// `Eq`/`Hash` partition rows exactly like `Vec<Value>` keys did (float
/// equality is bit equality in both).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum KeyPart {
    Int(i64),
    Bits(u64),
    Str(Arc<str>),
}

impl KeyPart {
    fn at(col: &ColumnData, i: usize) -> KeyPart {
        match col {
            ColumnData::Int(v) => KeyPart::Int(v[i]),
            ColumnData::Float(v) => KeyPart::Bits(v[i].to_bits()),
            ColumnData::Str(v) => KeyPart::Str(v[i].clone()),
        }
    }

    fn into_value(self) -> Value {
        match self {
            KeyPart::Int(v) => Value::Int(v),
            KeyPart::Bits(b) => Value::Float(f64::from_bits(b)),
            KeyPart::Str(s) => Value::Str(s),
        }
    }
}

impl Executor<'_> {
    fn exec(&mut self, id: NodeId) -> Batch {
        // Borrow the operator from the plan reference (not through `self`)
        // so recursion needs no per-node `Op` clone.
        let plan = self.plan;
        let batch = match plan.op(id) {
            Op::SeqScan { table, predicate } => self.scan(id, table, predicate),
            Op::IndexScan {
                table, predicate, ..
            } => self.scan(id, table, predicate),
            Op::Filter { input, predicate } => {
                let child = self.exec(*input);
                self.filter(id, child, predicate)
            }
            Op::Sort { input, keys } => {
                let child = self.exec(*input);
                self.sort(id, child, keys)
            }
            Op::Materialize { input } => {
                let child = self.exec(*input);
                self.traces[id].left_input_rows = child.len;
                child
            }
            Op::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.exec(*left);
                let r = self.exec(*right);
                self.hash_join(id, l, r, left_key, right_key)
            }
            Op::NestedLoopJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.exec(*left);
                let r = self.exec(*right);
                self.nl_join(id, l, r, left_key, right_key)
            }
            Op::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let child = self.exec(*input);
                self.aggregate(id, child, group_by, aggs)
            }
        };
        self.traces[id].output_rows = batch.len;
        if let Some(prov) = &batch.prov {
            debug_assert_eq!(prov.arity(), self.plan.meta(id).leaf_tables.len());
            debug_assert_eq!(prov.rows(), batch.len);
            // Handle copy: the trace shares the batch's backing matrix.
            self.traces[id].prov = Some(prov.clone());
        }
        batch
    }

    fn scan(&mut self, id: NodeId, table: &str, predicate: &crate::expr::Pred) -> Batch {
        let (schema, cols, with_prov): (Schema, &[ColumnRef], bool) = match &self.source {
            Source::Full(catalog) => {
                let t = catalog.table(table);
                (t.schema().clone(), t.columns(), false)
            }
            Source::Samples(samples) => {
                let occurrence = self.plan.meta(id).leaf_tables[0].occurrence;
                let s = samples.sample(table, occurrence);
                (s.table().schema().clone(), s.table().columns(), true)
            }
        };
        let input_len = cols.first().map_or(0, |c| c.len());
        self.traces[id].left_input_rows = input_len;
        let bound = predicate.bind(&schema);
        let sel = bound.filter_columns(cols, input_len);
        let len = sel.len();
        let (out_cols, prov) = if len == input_len {
            // Nothing filtered: share the table's columns (refcount bumps).
            let out = cols.iter().cloned().map(ColumnSlice::dense).collect();
            (out, with_prov.then(|| ProvData::new(1, sel)))
        } else {
            // One shared selection over every column — and the scan's
            // provenance *is* that selection, so it shares the same `Arc`.
            let sel = Arc::new(sel);
            let out = cols
                .iter()
                .map(|c| ColumnSlice::selected(c.clone(), sel.clone()))
                .collect();
            (out, with_prov.then(|| ProvData::from_shared(1, sel)))
        };
        Batch {
            schema,
            len,
            cols: out_cols,
            prov,
        }
    }

    fn filter(&mut self, id: NodeId, child: Batch, predicate: &crate::expr::Pred) -> Batch {
        self.traces[id].left_input_rows = child.len;
        let bound = predicate.bind(&child.schema);
        let sel = bound.filter_slices(&child.cols, child.len);
        if sel.len() == child.len {
            // Keep-everything filter: the child's column handles pass
            // through shared, no copy.
            return child;
        }
        let len = sel.len();
        let sel = Arc::new(sel);
        let cols = ColumnSlice::select_all(&child.cols, &sel);
        let prov = child.prov.as_ref().map(|p| p.select(&sel));
        Batch {
            schema: child.schema,
            cols,
            len,
            prov,
        }
    }

    fn sort(&mut self, id: NodeId, child: Batch, keys: &[(String, SortOrder)]) -> Batch {
        self.traces[id].left_input_rows = child.len;
        // Densify only the key columns (free when already dense): the
        // comparator runs hot and must not walk a selection chain per
        // probe. Payload columns stay lazy — the permutation is just one
        // more shared selection layer.
        let key_cols: Vec<(ColumnRef, SortOrder)> = keys
            .iter()
            .map(|(k, o)| (child.col(child.schema.expect_index(k)).to_dense(), *o))
            .collect();
        let mut order: Vec<u32> = (0..child.len as u32).collect();
        // Stable sort, same comparator semantics as `Value::cmp` per column
        // (columns are monotype, so only the same-type arms apply).
        order.sort_by(|&a, &b| {
            for (col, dir) in &key_cols {
                let cmp = cell_cmp_same(col, a as usize, b as usize);
                let cmp = if *dir == SortOrder::Desc {
                    cmp.reverse()
                } else {
                    cmp
                };
                if cmp != Ordering::Equal {
                    return cmp;
                }
            }
            Ordering::Equal
        });
        let order = Arc::new(order);
        let cols = ColumnSlice::select_all(&child.cols, &order);
        let prov = child.prov.as_ref().map(|p| p.select(&order));
        Batch {
            schema: child.schema,
            cols,
            len: child.len,
            prov,
        }
    }

    fn hash_join(
        &mut self,
        id: NodeId,
        left: Batch,
        right: Batch,
        left_key: &str,
        right_key: &str,
    ) -> Batch {
        self.traces[id].left_input_rows = left.len;
        self.traces[id].right_input_rows = right.len;
        let lk = left.schema.expect_index(left_key);
        let rk = right.schema.expect_index(right_key);

        // Build on the right input (the "inner"), probe with the left. The
        // build is a CSR-style grouping — key -> dense id, then row indices
        // grouped contiguously by id — so there is exactly one allocation
        // for the whole table instead of a `Vec` per distinct key. Keys are
        // borrowed from the key columns (i64 fast path, or a `JoinKey` view
        // mirroring `Value` equality); payloads are row indices.
        let mut li_out: Vec<u32> = Vec::new();
        let mut ri_out: Vec<u32> = Vec::new();
        {
            let (lslice, rslice) = (left.col(lk), right.col(rk));
            match (lslice.base().as_ref(), rslice.base().as_ref()) {
                // Fast path: integer keys on both sides hash and compare as
                // i64, read through the selection chains without densifying.
                (ColumnData::Int(lv), ColumnData::Int(rv)) => {
                    let (ids, csr) = build_csr(right.len, |i| rv[rslice.physical(i)]);
                    let mut li: u32 = 0;
                    lslice.for_each_physical(|lp| {
                        if let Some(&id) = ids.get(&lv[lp]) {
                            let matches = csr.group(id);
                            li_out.extend(std::iter::repeat_n(li, matches.len()));
                            ri_out.extend_from_slice(matches);
                        }
                        li += 1;
                    });
                }
                (lcol, rcol) => {
                    let (ids, csr) =
                        build_csr(right.len, |i| join_key_at(rcol, rslice.physical(i)));
                    for li in 0..left.len {
                        if let Some(&id) = ids.get(&join_key_at(lcol, lslice.physical(li))) {
                            let matches = csr.group(id);
                            li_out.extend(std::iter::repeat_n(li as u32, matches.len()));
                            ri_out.extend_from_slice(matches);
                        }
                    }
                }
            }
        }
        self.join_output(left, right, li_out, ri_out)
    }

    fn nl_join(
        &mut self,
        id: NodeId,
        left: Batch,
        right: Batch,
        left_key: &str,
        right_key: &str,
    ) -> Batch {
        self.traces[id].left_input_rows = left.len;
        self.traces[id].right_input_rows = right.len;
        let lk = left.schema.expect_index(left_key);
        let rk = right.schema.expect_index(right_key);

        let mut li_out: Vec<u32> = Vec::new();
        let mut ri_out: Vec<u32> = Vec::new();
        {
            let (lslice, rslice) = (left.col(lk), right.col(rk));
            let (lcol, rcol) = (lslice.base().as_ref(), rslice.base().as_ref());
            for li in 0..left.len {
                let lp = lslice.physical(li);
                for ri in 0..right.len {
                    if cell_pair_eq(lcol, lp, rcol, rslice.physical(ri)) {
                        li_out.push(li as u32);
                        ri_out.push(ri as u32);
                    }
                }
            }
        }
        self.join_output(left, right, li_out, ri_out)
    }

    /// Assembles a join result from matched (left, right) index pairs —
    /// as selection layers over the input slices, not fresh payloads: the
    /// match vectors become one shared selection per side.
    fn join_output(&self, left: Batch, right: Batch, li: Vec<u32>, ri: Vec<u32>) -> Batch {
        let schema = left.schema.concat(&right.schema);
        let len = li.len();
        let (li, ri) = (Arc::new(li), Arc::new(ri));
        let mut cols = Vec::with_capacity(left.cols.len() + right.cols.len());
        cols.extend(ColumnSlice::select_all(&left.cols, &li));
        cols.extend(ColumnSlice::select_all(&right.cols, &ri));
        let prov = match (&left.prov, &right.prov) {
            (Some(lp), Some(rp)) => Some(ProvData::join_rows(lp, &li, rp, &ri)),
            _ => None,
        };
        Batch {
            schema,
            cols,
            len,
            prov,
        }
    }

    fn aggregate(
        &mut self,
        id: NodeId,
        child: Batch,
        group_by: &[String],
        aggs: &[(String, AggFunc)],
    ) -> Batch {
        self.traces[id].left_input_rows = child.len;
        // The grouping/state loops index cells row-at-a-time and hot; this
        // is one of the sanctioned densification points — but only for the
        // columns the aggregate actually reads, never the whole batch.
        let group_dense: Vec<ColumnRef> = group_by
            .iter()
            .map(|g| child.col(child.schema.expect_index(g)).to_dense())
            .collect();
        let group_cols: Vec<&ColumnData> = group_dense.iter().map(|c| c.as_ref()).collect();
        let agg_dense: Vec<Option<ColumnRef>> = aggs
            .iter()
            .map(|(_, f)| {
                f.input_column()
                    .map(|c| child.col(child.schema.expect_index(c)).to_dense())
            })
            .collect();
        let agg_cols: Vec<Option<&ColumnData>> = agg_dense
            .iter()
            .map(|o| o.as_ref().map(|c| c.as_ref()))
            .collect();

        #[derive(Clone)]
        struct State {
            count: u64,
            sums: Vec<f64>,
            mins: Vec<Option<Value>>,
            maxs: Vec<Option<Value>>,
        }
        let fresh = State {
            count: 0,
            sums: vec![0.0; aggs.len()],
            mins: vec![None; aggs.len()],
            maxs: vec![None; aggs.len()],
        };

        // Intern group keys to dense ids; states live in a vector indexed by
        // id, which also preserves first-seen group order.
        let mut states: Vec<State> = Vec::new();
        let update = |state: &mut State, row: usize| {
            state.count += 1;
            for (k, (_, func)) in aggs.iter().enumerate() {
                if let Some(col) = agg_cols[k] {
                    match func {
                        AggFunc::Sum(_) | AggFunc::Avg(_) => {
                            state.sums[k] += match col {
                                ColumnData::Int(v) => v[row] as f64,
                                ColumnData::Float(v) => v[row],
                                ColumnData::Str(_) => {
                                    panic!("expected numeric, got Str column")
                                }
                            }
                        }
                        AggFunc::Min(_) => {
                            let v = col.value(row);
                            if state.mins[k].as_ref().is_none_or(|m| v < *m) {
                                state.mins[k] = Some(v);
                            }
                        }
                        AggFunc::Max(_) => {
                            let v = col.value(row);
                            if state.maxs[k].as_ref().is_none_or(|m| v > *m) {
                                state.maxs[k] = Some(v);
                            }
                        }
                        AggFunc::CountStar => unreachable!("CountStar has no input column"),
                    }
                }
            }
        };
        let mut keys: Vec<Vec<KeyPart>> = if let [col] = group_cols[..] {
            // Single-column fast path (the common TPC-H case): intern on the
            // bare `KeyPart`, skipping the per-row `Vec` allocation of the
            // general path. Dense ids are assigned in first-seen order
            // either way, so grouping and output order are identical.
            let mut key_ids: HashMap<KeyPart, u32> = HashMap::with_capacity(64);
            let mut keys: Vec<KeyPart> = Vec::new();
            for row in 0..child.len {
                let gid = *key_ids
                    .entry(KeyPart::at(col, row))
                    .or_insert_with_key(|k| {
                        keys.push(k.clone());
                        states.push(fresh.clone());
                        (states.len() - 1) as u32
                    });
                update(&mut states[gid as usize], row);
            }
            keys.into_iter().map(|k| vec![k]).collect()
        } else {
            let mut key_ids: HashMap<Vec<KeyPart>, u32> = HashMap::new();
            let mut keys: Vec<Vec<KeyPart>> = Vec::new();
            for row in 0..child.len {
                let key: Vec<KeyPart> = group_cols.iter().map(|c| KeyPart::at(c, row)).collect();
                let gid = *key_ids.entry(key).or_insert_with_key(|k| {
                    keys.push(k.clone());
                    states.push(fresh.clone());
                    (states.len() - 1) as u32
                });
                update(&mut states[gid as usize], row);
            }
            keys
        };

        // Scalar aggregate over empty input still yields one row.
        if group_by.is_empty() && states.is_empty() {
            keys.push(vec![]);
            states.push(fresh);
        }

        let mut out_schema_cols = Vec::new();
        for (g, col) in group_by.iter().zip(&group_cols) {
            out_schema_cols.push(uaq_storage::Column::new(g.clone(), col.ty()));
        }
        for (name, func) in aggs {
            let ty = match func {
                AggFunc::CountStar => uaq_storage::ColumnType::Int,
                AggFunc::Sum(_) | AggFunc::Avg(_) => uaq_storage::ColumnType::Float,
                AggFunc::Min(c) | AggFunc::Max(c) => {
                    child.schema.column(child.schema.expect_index(c)).ty
                }
            };
            out_schema_cols.push(uaq_storage::Column::new(name.clone(), ty));
        }
        let schema = Schema::new(out_schema_cols);

        let n_groups = states.len();
        let mut cols: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| ColumnData::with_capacity(c.ty, n_groups))
            .collect();
        for (key, state) in keys.into_iter().zip(&states) {
            for (j, part) in key.into_iter().enumerate() {
                cols[j].push(&part.into_value());
            }
            for (k, (_, func)) in aggs.iter().enumerate() {
                let out_ty = schema.column(group_by.len() + k).ty;
                let v = match func {
                    AggFunc::CountStar => Value::Int(state.count as i64),
                    AggFunc::Sum(_) => Value::Float(state.sums[k]),
                    AggFunc::Avg(_) => Value::Float(if state.count == 0 {
                        0.0
                    } else {
                        state.sums[k] / state.count as f64
                    }),
                    AggFunc::Min(_) => state.mins[k]
                        .clone()
                        .unwrap_or_else(|| empty_agg_default(out_ty)),
                    AggFunc::Max(_) => state.maxs[k]
                        .clone()
                        .unwrap_or_else(|| empty_agg_default(out_ty)),
                };
                cols[group_by.len() + k].push(&v);
            }
        }

        // Provenance cannot flow through grouping (Algorithm 1's Agg case).
        Batch {
            schema,
            cols: cols.into_iter().map(ColumnSlice::from).collect(),
            len: n_groups,
            prov: None,
        }
    }
}

/// CSR-grouped hash-table payload: row indices grouped contiguously by
/// dense key id, in first-seen key order and ascending row order within a
/// group (the same match order the row-based reference produces).
struct Csr {
    offsets: Vec<u32>,
    slots: Vec<u32>,
}

impl Csr {
    fn group(&self, id: u32) -> &[u32] {
        &self.slots[self.offsets[id as usize] as usize..self.offsets[id as usize + 1] as usize]
    }
}

/// Two-pass CSR build over `n` keyed rows: assign dense ids in first-seen
/// order, count group sizes, then scatter row indices into one flat slot
/// vector — one allocation for all groups instead of a `Vec` per key.
fn build_csr<K: Eq + std::hash::Hash>(
    n: usize,
    key_at: impl Fn(usize) -> K,
) -> (HashMap<K, u32>, Csr) {
    let mut ids: HashMap<K, u32> = HashMap::with_capacity(n);
    let mut counts: Vec<u32> = Vec::new();
    let mut row_ids: Vec<u32> = Vec::with_capacity(n);
    for i in 0..n {
        let next_id = counts.len() as u32;
        let id = *ids.entry(key_at(i)).or_insert(next_id);
        if id == next_id {
            counts.push(0);
        }
        counts[id as usize] += 1;
        row_ids.push(id);
    }
    let mut offsets = Vec::with_capacity(counts.len() + 1);
    let mut acc = 0u32;
    offsets.push(0);
    for &c in &counts {
        acc += c;
        offsets.push(acc);
    }
    let mut cursor: Vec<u32> = offsets[..counts.len()].to_vec();
    let mut slots = vec![0u32; n];
    for (i, &id) in row_ids.iter().enumerate() {
        slots[cursor[id as usize] as usize] = i as u32;
        cursor[id as usize] += 1;
    }
    (ids, Csr { offsets, slots })
}

/// Default MIN/MAX output for an empty input, typed to the declared output
/// column (an empty scalar aggregate still emits one row). Int and Float
/// defaults compare equal under `Value`'s cross-type equality.
fn empty_agg_default(ty: uaq_storage::ColumnType) -> Value {
    match ty {
        uaq_storage::ColumnType::Int => Value::Int(0),
        uaq_storage::ColumnType::Float => Value::Float(0.0),
        uaq_storage::ColumnType::Str => Value::str(""),
    }
}

/// `Value::cmp` between two cells of the *same* column (monotype).
fn cell_cmp_same(col: &ColumnData, a: usize, b: usize) -> Ordering {
    match col {
        ColumnData::Int(v) => v[a].cmp(&v[b]),
        ColumnData::Float(v) => v[a].partial_cmp(&v[b]).expect("NaN in ordered value"),
        ColumnData::Str(v) => v[a].cmp(&v[b]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use crate::plan::PlanBuilder;
    use uaq_stats::Rng;
    use uaq_storage::{Column, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s1 = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows1 = (0..100)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
            .collect();
        c.add_table(Table::new("t1", s1, rows1));
        let s2 = Schema::new(vec![Column::int("x"), Column::float("y")]);
        let rows2 = (0..20)
            .map(|i| vec![Value::Int(i % 5), Value::Float(i as f64)])
            .collect();
        c.add_table(Table::new("t2", s2, rows2));
        c
    }

    #[test]
    fn seq_scan_with_predicate() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::eq("a", Value::Int(3)));
        let plan = b.build(s);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 10);
        assert_eq!(out.traces[0].left_input_rows, 100);
        assert_eq!(out.traces[0].output_rows, 10);
        assert!(out.rows().iter().all(|r| r[0] == Value::Int(3)));
    }

    #[test]
    fn filter_narrows() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let f = b.filter(s, Pred::lt("b", Value::Int(50)));
        let plan = b.build(f);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 50);
        assert_eq!(out.traces[1].left_input_rows, 100);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let c = catalog();
        let hash = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t1", Pred::True);
            let r = b.seq_scan("t2", Pred::True);
            let j = b.hash_join(l, r, "a", "x");
            b.build(j)
        };
        let nl = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t1", Pred::True);
            let r = b.seq_scan("t2", Pred::True);
            let j = b.nl_join(l, r, "a", "x");
            b.build(j)
        };
        let hj = execute_full(&hash, &c);
        let nj = execute_full(&nl, &c);
        assert_eq!(hj.num_rows(), nj.num_rows());
        // t1.a ranges 0..10 (10 each); t2.x ranges 0..5 (4 each); matches:
        // for a in 0..5 → 10 * 4 = 40 rows each → 200.
        assert_eq!(hj.num_rows(), 200);
        let mut h: Vec<String> = hj.rows().iter().map(|r| format!("{r:?}")).collect();
        let mut n: Vec<String> = nj.rows().iter().map(|r| format!("{r:?}")).collect();
        h.sort();
        n.sort();
        assert_eq!(h, n);
    }

    #[test]
    fn join_schema_concatenates() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t1", Pred::True);
        let r = b.seq_scan("t2", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let out = execute_full(&plan, &c);
        assert_eq!(out.schema.len(), 4);
        assert_eq!(out.schema.index_of("y"), Some(3));
    }

    #[test]
    fn sort_orders_rows() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t2", Pred::True);
        let srt = b.sort(s, vec![("y".into(), SortOrder::Desc)]);
        let plan = b.build(srt);
        let out = execute_full(&plan, &c);
        let ys: Vec<f64> = out.rows().iter().map(|r| r[1].as_float()).collect();
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(ys, sorted);
    }

    #[test]
    fn aggregate_group_by() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t2", Pred::True);
        let a = b.aggregate(
            s,
            vec!["x".into()],
            vec![
                ("cnt".into(), AggFunc::CountStar),
                ("total".into(), AggFunc::Sum("y".into())),
                ("avg_y".into(), AggFunc::Avg("y".into())),
                ("min_y".into(), AggFunc::Min("y".into())),
                ("max_y".into(), AggFunc::Max("y".into())),
            ],
        );
        let plan = b.build(a);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 5);
        // Group x=0 holds y ∈ {0, 5, 10, 15}.
        let rows = out.rows();
        let g0 = rows
            .iter()
            .find(|r| r[0] == Value::Int(0))
            .expect("group 0");
        assert_eq!(g0[1], Value::Int(4));
        assert_eq!(g0[2].as_float(), 30.0);
        assert_eq!(g0[3].as_float(), 7.5);
        assert_eq!(g0[4].as_float(), 0.0);
        assert_eq!(g0[5].as_float(), 15.0);
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::eq("a", Value::Int(999)));
        let a = b.aggregate(s, vec![], vec![("cnt".into(), AggFunc::CountStar)]);
        let plan = b.build(a);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.rows()[0][0], Value::Int(0));
    }

    #[test]
    fn sample_mode_tracks_provenance_for_scans() {
        let c = catalog();
        let mut rng = Rng::new(5);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::eq("a", Value::Int(3)));
        let plan = b.build(s);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[0].prov.as_ref().expect("prov in sample mode");
        assert_eq!(prov.arity, 1);
        assert_eq!(prov.rows(), out.num_rows());
        let n = samples.sample("t1", 0).len();
        for i in 0..prov.rows() {
            assert!((prov.row(i)[0] as usize) < n);
        }
    }

    #[test]
    fn sample_mode_join_provenance_arity() {
        let c = catalog();
        let mut rng = Rng::new(6);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t1", Pred::True);
        let r = b.seq_scan("t2", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[j].prov.as_ref().expect("join prov");
        assert_eq!(prov.arity, 2);
        assert_eq!(prov.rows(), out.num_rows());
        // Every prov row indexes valid sample steps, and the joined rows
        // really match the sample tuples they claim to come from.
        let s1 = samples.sample("t1", 0);
        let s2 = samples.sample("t2", 0);
        for i in 0..prov.rows() {
            let [p1, p2] = prov.row(i) else { panic!() };
            let t1row = &s1.table().rows()[*p1 as usize];
            let t2row = &s2.table().rows()[*p2 as usize];
            assert_eq!(out.rows()[i][0], t1row[0]);
            assert_eq!(out.rows()[i][2], t2row[0]);
        }
    }

    #[test]
    fn aggregate_drops_provenance() {
        let c = catalog();
        let mut rng = Rng::new(7);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let a = b.aggregate(
            s,
            vec!["a".into()],
            vec![("cnt".into(), AggFunc::CountStar)],
        );
        let f = b.filter(a, Pred::gt("cnt", Value::Int(0)));
        let plan = b.build(f);
        let out = execute_on_samples(&plan, &samples);
        assert!(out.traces[a].prov.is_none());
        assert!(out.traces[f].prov.is_none());
        assert!(out.traces[s].prov.is_some());
    }

    #[test]
    fn sort_keeps_prov_aligned() {
        let c = catalog();
        let mut rng = Rng::new(8);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let srt = b.sort(s, vec![("b".into(), SortOrder::Asc)]);
        let plan = b.build(srt);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[srt].prov.as_ref().expect("prov");
        let sample = samples.sample("t1", 0);
        for i in 0..prov.rows() {
            let j = prov.row(i)[0] as usize;
            assert_eq!(out.rows()[i], sample.table().rows()[j]);
        }
    }

    #[test]
    fn index_scan_same_semantics_as_seq_scan() {
        let c = catalog();
        let pred = Pred::between("b", Value::Int(10), Value::Int(29));
        let seq = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t1", pred.clone());
            b.build(s)
        };
        let idx = {
            let mut b = PlanBuilder::new();
            let s = b.index_scan("t1", "b", pred);
            b.build(s)
        };
        assert_eq!(
            execute_full(&seq, &c).num_rows(),
            execute_full(&idx, &c).num_rows()
        );
    }

    #[test]
    fn filter_passthrough_keeps_prov() {
        // A filter that keeps everything must not lose prov alignment.
        let c = catalog();
        let mut rng = Rng::new(9);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let f = b.filter(s, Pred::ge("b", Value::Int(0)));
        let plan = b.build(f);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[f].prov.as_ref().expect("prov");
        assert_eq!(prov.rows(), out.num_rows());
    }

    #[test]
    fn pass_through_operators_share_columns_not_copy() {
        // The zero-copy contract, observed through refcounts: a plan whose
        // operators change nothing (unfiltered scan → keep-everything
        // filter → materialize) must *share* the base table's column
        // payloads, not clone them. `strong_count > 1` proves sharing
        // actually happened (the table holds one handle, the outcome the
        // other); `ptr_eq` pins down that it is the same allocation.
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let f = b.filter(s, Pred::ge("b", Value::Int(0))); // keeps all 100 rows
        let m = b.materialize(f);
        let plan = b.build(m);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 100);
        let table_cols = c.table("t1").columns();
        for (out_col, table_col) in out.columns().iter().zip(table_cols) {
            assert!(
                out_col.ptr_eq(table_col),
                "pass-through column must share the table's allocation"
            );
            assert!(
                out_col.strong_count() > 1,
                "sharing must be observable in the refcount, got {}",
                out_col.strong_count()
            );
        }

        // A filter that actually drops rows detaches: fresh payloads.
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let f = b.filter(s, Pred::lt("b", Value::Int(50)));
        let plan = b.build(f);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 50);
        for (out_col, table_col) in out.columns().iter().zip(c.table("t1").columns()) {
            assert!(!out_col.ptr_eq(table_col));
            assert_eq!(out_col.strong_count(), 1);
        }
    }

    #[test]
    fn row_iter_streams_both_representations() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::lt("b", Value::Int(5)));
        let plan = b.build(s);

        // Columns-seeded outcome: rows assembled from the shared columns.
        let out = execute_full(&plan, &c);
        let streamed: Vec<Row> = out.row_iter().collect();
        assert_eq!(streamed.len(), out.num_rows());
        assert_eq!(streamed, out.rows());

        // Rows-seeded outcome (the reference executor): served from the
        // existing rows without building the columnar mirror.
        let out_rowexec = crate::exec_row::execute_full_rows(&plan, &c);
        let streamed_rowexec: Vec<Row> = out_rowexec.row_iter().collect();
        assert_eq!(streamed_rowexec, streamed);
    }

    #[test]
    fn join_key_mirrors_value_equality() {
        use std::collections::hash_map::DefaultHasher;
        let h = |k: &JoinKey| {
            let mut s = DefaultHasher::new();
            k.hash(&mut s);
            s.finish()
        };
        let i3 = JoinKey::Int(3);
        let f3 = JoinKey::Bits(3.0f64.to_bits());
        assert_eq!(i3, f3);
        assert_eq!(h(&i3), h(&f3));
        assert_ne!(JoinKey::Int(3), JoinKey::Bits(3.5f64.to_bits()));
        assert_ne!(JoinKey::Str("3"), i3);
    }
}
