//! Plan execution.
//!
//! One executor serves two purposes:
//!
//! * **Full mode** runs a plan against the base tables, producing the query
//!   answer and the *true* per-operator cardinalities (the ground truth the
//!   simulated hardware charges for, and the reference for selectivity-error
//!   experiments, Tables 6–9).
//! * **Sample mode** runs the *same* plan against the materialized sample
//!   tables, with every intermediate row carrying provenance: the sampling
//!   step index of each contributing sample tuple (one per leaf relation of
//!   the subtree). This is exactly the annotated execution of §3.2.2 from
//!   which `ρ_n` and `S_n²` are computed in one pass.

use crate::plan::{AggFunc, NodeId, Op, Plan, SortOrder};
use std::collections::HashMap;
use uaq_storage::{Catalog, Row, SampleCatalog, Schema, Value};

/// Flattened provenance matrix of one operator's sample-mode output:
/// `arity` step indices per output row, aligned with the node's
/// `leaf_tables` order.
#[derive(Debug, Clone, Default)]
pub struct ProvData {
    pub arity: usize,
    pub data: Vec<u32>,
}

impl ProvData {
    pub fn rows(&self) -> usize {
        if self.arity == 0 {
            0
        } else {
            self.data.len() / self.arity
        }
    }

    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }
}

/// Per-operator execution observations.
#[derive(Debug, Clone, Default)]
pub struct NodeTrace {
    /// Output cardinality `M`.
    pub output_rows: usize,
    /// Left input cardinality `N_l` (for scans: the base/sample table size).
    pub left_input_rows: usize,
    /// Right input cardinality `N_r` (0 for unary operators).
    pub right_input_rows: usize,
    /// Sample-mode output provenance (None in full mode or above aggregates).
    pub prov: Option<ProvData>,
}

/// Result of executing a plan.
#[derive(Debug)]
pub struct ExecOutcome {
    /// Output schema of the root operator.
    pub schema: Schema,
    /// Root output rows.
    pub rows: Vec<Row>,
    /// Per-node traces, indexed by `NodeId`.
    pub traces: Vec<NodeTrace>,
}

/// Intermediate batch flowing between operators.
struct Batch {
    schema: Schema,
    rows: Vec<Row>,
    /// One provenance vector per row (sample mode only; dropped above
    /// aggregates because grouped rows have no single lineage).
    prov: Option<Vec<Vec<u32>>>,
}

enum Source<'a> {
    Full(&'a Catalog),
    Samples(&'a SampleCatalog),
}

struct Executor<'a> {
    plan: &'a Plan,
    source: Source<'a>,
    traces: Vec<NodeTrace>,
}

/// Executes a plan against the base tables.
pub fn execute_full(plan: &Plan, catalog: &Catalog) -> ExecOutcome {
    let mut ex = Executor {
        plan,
        source: Source::Full(catalog),
        traces: vec![NodeTrace::default(); plan.len()],
    };
    let batch = ex.exec(plan.root());
    ExecOutcome {
        schema: batch.schema,
        rows: batch.rows,
        traces: ex.traces,
    }
}

/// Executes a plan against sample tables, tracking provenance.
pub fn execute_on_samples(plan: &Plan, samples: &SampleCatalog) -> ExecOutcome {
    let mut ex = Executor {
        plan,
        source: Source::Samples(samples),
        traces: vec![NodeTrace::default(); plan.len()],
    };
    let batch = ex.exec(plan.root());
    ExecOutcome {
        schema: batch.schema,
        rows: batch.rows,
        traces: ex.traces,
    }
}

impl<'a> Executor<'a> {
    fn exec(&mut self, id: NodeId) -> Batch {
        let batch = match self.plan.op(id).clone() {
            Op::SeqScan { table, predicate } => self.scan(id, &table, &predicate),
            Op::IndexScan {
                table, predicate, ..
            } => self.scan(id, &table, &predicate),
            Op::Filter { input, predicate } => {
                let child = self.exec(input);
                self.filter(id, child, &predicate)
            }
            Op::Sort { input, keys } => {
                let child = self.exec(input);
                self.sort(id, child, &keys)
            }
            Op::Materialize { input } => {
                let child = self.exec(input);
                self.traces[id].left_input_rows = child.rows.len();
                self.traces[id].output_rows = child.rows.len();
                child
            }
            Op::HashJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.exec(left);
                let r = self.exec(right);
                self.hash_join(id, l, r, &left_key, &right_key)
            }
            Op::NestedLoopJoin {
                left,
                right,
                left_key,
                right_key,
            } => {
                let l = self.exec(left);
                let r = self.exec(right);
                self.nl_join(id, l, r, &left_key, &right_key)
            }
            Op::HashAggregate {
                input,
                group_by,
                aggs,
            } => {
                let child = self.exec(input);
                self.aggregate(id, child, &group_by, &aggs)
            }
        };
        self.traces[id].output_rows = batch.rows.len();
        if let Some(prov) = &batch.prov {
            let arity = self.plan.meta(id).leaf_tables.len();
            let mut data = Vec::with_capacity(prov.len() * arity);
            for p in prov {
                debug_assert_eq!(p.len(), arity);
                data.extend_from_slice(p);
            }
            self.traces[id].prov = Some(ProvData { arity, data });
        }
        batch
    }

    fn scan(&mut self, id: NodeId, table: &str, predicate: &crate::expr::Pred) -> Batch {
        let (schema, rows, with_prov): (Schema, &[Row], bool) = match &self.source {
            Source::Full(catalog) => {
                let t = catalog.table(table);
                (t.schema().clone(), t.rows(), false)
            }
            Source::Samples(samples) => {
                let occurrence = self.plan.meta(id).leaf_tables[0].occurrence;
                let s = samples.sample(table, occurrence);
                (s.table().schema().clone(), s.table().rows(), true)
            }
        };
        self.traces[id].left_input_rows = rows.len();
        let bound = predicate.bind(&schema);
        let mut out_rows = Vec::new();
        let mut out_prov = if with_prov { Some(Vec::new()) } else { None };
        for (j, row) in rows.iter().enumerate() {
            if bound.eval(row) {
                out_rows.push(row.clone());
                if let Some(p) = &mut out_prov {
                    p.push(vec![j as u32]);
                }
            }
        }
        Batch {
            schema,
            rows: out_rows,
            prov: out_prov,
        }
    }

    fn filter(&mut self, id: NodeId, child: Batch, predicate: &crate::expr::Pred) -> Batch {
        self.traces[id].left_input_rows = child.rows.len();
        let bound = predicate.bind(&child.schema);
        match child.prov {
            Some(prov) => {
                let mut rows = Vec::new();
                let mut out_prov = Vec::new();
                for (row, p) in child.rows.into_iter().zip(prov) {
                    if bound.eval(&row) {
                        rows.push(row);
                        out_prov.push(p);
                    }
                }
                Batch {
                    schema: child.schema,
                    rows,
                    prov: Some(out_prov),
                }
            }
            None => {
                let rows = child.rows.into_iter().filter(|r| bound.eval(r)).collect();
                Batch {
                    schema: child.schema,
                    rows,
                    prov: None,
                }
            }
        }
    }

    fn sort(&mut self, id: NodeId, child: Batch, keys: &[(String, SortOrder)]) -> Batch {
        self.traces[id].left_input_rows = child.rows.len();
        let key_idx: Vec<(usize, SortOrder)> = keys
            .iter()
            .map(|(k, o)| (child.schema.expect_index(k), *o))
            .collect();
        let mut order: Vec<usize> = (0..child.rows.len()).collect();
        order.sort_by(|&a, &b| {
            for &(idx, dir) in &key_idx {
                let cmp = child.rows[a][idx].cmp(&child.rows[b][idx]);
                let cmp = if dir == SortOrder::Desc { cmp.reverse() } else { cmp };
                if cmp != std::cmp::Ordering::Equal {
                    return cmp;
                }
            }
            std::cmp::Ordering::Equal
        });
        let rows: Vec<Row> = order.iter().map(|&i| child.rows[i].clone()).collect();
        let prov = child
            .prov
            .map(|p| order.iter().map(|&i| p[i].clone()).collect());
        Batch {
            schema: child.schema,
            rows,
            prov,
        }
    }

    fn hash_join(
        &mut self,
        id: NodeId,
        left: Batch,
        right: Batch,
        left_key: &str,
        right_key: &str,
    ) -> Batch {
        self.traces[id].left_input_rows = left.rows.len();
        self.traces[id].right_input_rows = right.rows.len();
        let lk = left.schema.expect_index(left_key);
        let rk = right.schema.expect_index(right_key);
        let schema = left.schema.concat(&right.schema);
        let track = left.prov.is_some() && right.prov.is_some();

        // Build on the right input (the "inner"), probe with the left.
        let mut table: HashMap<Value, Vec<usize>> = HashMap::with_capacity(right.rows.len());
        for (i, row) in right.rows.iter().enumerate() {
            table.entry(row[rk].clone()).or_default().push(i);
        }

        let mut rows = Vec::new();
        let mut prov = if track { Some(Vec::new()) } else { None };
        for (li, lrow) in left.rows.iter().enumerate() {
            if let Some(matches) = table.get(&lrow[lk]) {
                for &ri in matches {
                    let mut row = lrow.clone();
                    row.extend_from_slice(&right.rows[ri]);
                    rows.push(row);
                    if let Some(p) = &mut prov {
                        let mut pr = left.prov.as_ref().expect("tracked")[li].clone();
                        pr.extend_from_slice(&right.prov.as_ref().expect("tracked")[ri]);
                        p.push(pr);
                    }
                }
            }
        }
        Batch { schema, rows, prov }
    }

    fn nl_join(
        &mut self,
        id: NodeId,
        left: Batch,
        right: Batch,
        left_key: &str,
        right_key: &str,
    ) -> Batch {
        self.traces[id].left_input_rows = left.rows.len();
        self.traces[id].right_input_rows = right.rows.len();
        let lk = left.schema.expect_index(left_key);
        let rk = right.schema.expect_index(right_key);
        let schema = left.schema.concat(&right.schema);
        let track = left.prov.is_some() && right.prov.is_some();

        let mut rows = Vec::new();
        let mut prov = if track { Some(Vec::new()) } else { None };
        for (li, lrow) in left.rows.iter().enumerate() {
            for (ri, rrow) in right.rows.iter().enumerate() {
                if lrow[lk] == rrow[rk] {
                    let mut row = lrow.clone();
                    row.extend_from_slice(rrow);
                    rows.push(row);
                    if let Some(p) = &mut prov {
                        let mut pr = left.prov.as_ref().expect("tracked")[li].clone();
                        pr.extend_from_slice(&right.prov.as_ref().expect("tracked")[ri]);
                        p.push(pr);
                    }
                }
            }
        }
        Batch { schema, rows, prov }
    }

    fn aggregate(
        &mut self,
        id: NodeId,
        child: Batch,
        group_by: &[String],
        aggs: &[(String, AggFunc)],
    ) -> Batch {
        self.traces[id].left_input_rows = child.rows.len();
        let group_idx: Vec<usize> = group_by
            .iter()
            .map(|g| child.schema.expect_index(g))
            .collect();
        let agg_idx: Vec<Option<usize>> = aggs
            .iter()
            .map(|(_, f)| f.input_column().map(|c| child.schema.expect_index(c)))
            .collect();

        #[derive(Clone)]
        struct State {
            count: u64,
            sums: Vec<f64>,
            mins: Vec<Option<Value>>,
            maxs: Vec<Option<Value>>,
        }
        let fresh = State {
            count: 0,
            sums: vec![0.0; aggs.len()],
            mins: vec![None; aggs.len()],
            maxs: vec![None; aggs.len()],
        };

        let mut groups: HashMap<Vec<Value>, State> = HashMap::new();
        // Preserve first-seen group order for deterministic output.
        let mut order: Vec<Vec<Value>> = Vec::new();
        for row in &child.rows {
            let key: Vec<Value> = group_idx.iter().map(|&i| row[i].clone()).collect();
            let state = groups.entry(key.clone()).or_insert_with(|| {
                order.push(key.clone());
                fresh.clone()
            });
            state.count += 1;
            for (k, (_, func)) in aggs.iter().enumerate() {
                if let Some(idx) = agg_idx[k] {
                    let v = &row[idx];
                    match func {
                        AggFunc::Sum(_) | AggFunc::Avg(_) => state.sums[k] += v.as_float(),
                        AggFunc::Min(_) => {
                            if state.mins[k].as_ref().is_none_or(|m| v < m) {
                                state.mins[k] = Some(v.clone());
                            }
                        }
                        AggFunc::Max(_) => {
                            if state.maxs[k].as_ref().is_none_or(|m| v > m) {
                                state.maxs[k] = Some(v.clone());
                            }
                        }
                        AggFunc::CountStar => unreachable!("CountStar has no input column"),
                    }
                }
            }
        }

        // Scalar aggregate over empty input still yields one row.
        if group_by.is_empty() && order.is_empty() {
            order.push(vec![]);
            groups.insert(vec![], fresh);
        }

        let mut out_schema_cols = Vec::new();
        for (g, &gi) in group_by.iter().zip(&group_idx) {
            let col = child.schema.column(gi);
            out_schema_cols.push(uaq_storage::Column::new(g.clone(), col.ty));
        }
        for (name, func) in aggs {
            let ty = match func {
                AggFunc::CountStar => uaq_storage::ColumnType::Int,
                AggFunc::Sum(_) | AggFunc::Avg(_) => uaq_storage::ColumnType::Float,
                AggFunc::Min(c) | AggFunc::Max(c) => {
                    child.schema.column(child.schema.expect_index(c)).ty
                }
            };
            out_schema_cols.push(uaq_storage::Column::new(name.clone(), ty));
        }
        let schema = Schema::new(out_schema_cols);

        let rows: Vec<Row> = order
            .into_iter()
            .map(|key| {
                let state = &groups[&key];
                let mut row = key;
                for (k, (_, func)) in aggs.iter().enumerate() {
                    row.push(match func {
                        AggFunc::CountStar => Value::Int(state.count as i64),
                        AggFunc::Sum(_) => Value::Float(state.sums[k]),
                        AggFunc::Avg(_) => Value::Float(if state.count == 0 {
                            0.0
                        } else {
                            state.sums[k] / state.count as f64
                        }),
                        AggFunc::Min(_) => state.mins[k].clone().unwrap_or(Value::Int(0)),
                        AggFunc::Max(_) => state.maxs[k].clone().unwrap_or(Value::Int(0)),
                    });
                }
                row
            })
            .collect();

        // Provenance cannot flow through grouping (Algorithm 1's Agg case).
        Batch {
            schema,
            rows,
            prov: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Pred;
    use crate::plan::PlanBuilder;
    use uaq_stats::Rng;
    use uaq_storage::{Column, Table};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let s1 = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows1 = (0..100)
            .map(|i| vec![Value::Int(i % 10), Value::Int(i)])
            .collect();
        c.add_table(Table::new("t1", s1, rows1));
        let s2 = Schema::new(vec![Column::int("x"), Column::float("y")]);
        let rows2 = (0..20)
            .map(|i| vec![Value::Int(i % 5), Value::Float(i as f64)])
            .collect();
        c.add_table(Table::new("t2", s2, rows2));
        c
    }

    #[test]
    fn seq_scan_with_predicate() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::eq("a", Value::Int(3)));
        let plan = b.build(s);
        let out = execute_full(&plan, &c);
        assert_eq!(out.rows.len(), 10);
        assert_eq!(out.traces[0].left_input_rows, 100);
        assert_eq!(out.traces[0].output_rows, 10);
        assert!(out.rows.iter().all(|r| r[0] == Value::Int(3)));
    }

    #[test]
    fn filter_narrows() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let f = b.filter(s, Pred::lt("b", Value::Int(50)));
        let plan = b.build(f);
        let out = execute_full(&plan, &c);
        assert_eq!(out.rows.len(), 50);
        assert_eq!(out.traces[1].left_input_rows, 100);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let c = catalog();
        let hash = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t1", Pred::True);
            let r = b.seq_scan("t2", Pred::True);
            let j = b.hash_join(l, r, "a", "x");
            b.build(j)
        };
        let nl = {
            let mut b = PlanBuilder::new();
            let l = b.seq_scan("t1", Pred::True);
            let r = b.seq_scan("t2", Pred::True);
            let j = b.nl_join(l, r, "a", "x");
            b.build(j)
        };
        let hj = execute_full(&hash, &c);
        let nj = execute_full(&nl, &c);
        assert_eq!(hj.rows.len(), nj.rows.len());
        // t1.a ranges 0..10 (10 each); t2.x ranges 0..5 (4 each); matches:
        // for a in 0..5 → 10 * 4 = 40 rows each → 200.
        assert_eq!(hj.rows.len(), 200);
        let mut h: Vec<String> = hj.rows.iter().map(|r| format!("{r:?}")).collect();
        let mut n: Vec<String> = nj.rows.iter().map(|r| format!("{r:?}")).collect();
        h.sort();
        n.sort();
        assert_eq!(h, n);
    }

    #[test]
    fn join_schema_concatenates() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t1", Pred::True);
        let r = b.seq_scan("t2", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let out = execute_full(&plan, &c);
        assert_eq!(out.schema.len(), 4);
        assert_eq!(out.schema.index_of("y"), Some(3));
    }

    #[test]
    fn sort_orders_rows() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t2", Pred::True);
        let srt = b.sort(s, vec![("y".into(), SortOrder::Desc)]);
        let plan = b.build(srt);
        let out = execute_full(&plan, &c);
        let ys: Vec<f64> = out.rows.iter().map(|r| r[1].as_float()).collect();
        let mut sorted = ys.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        assert_eq!(ys, sorted);
    }

    #[test]
    fn aggregate_group_by() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t2", Pred::True);
        let a = b.aggregate(
            s,
            vec!["x".into()],
            vec![
                ("cnt".into(), AggFunc::CountStar),
                ("total".into(), AggFunc::Sum("y".into())),
                ("avg_y".into(), AggFunc::Avg("y".into())),
                ("min_y".into(), AggFunc::Min("y".into())),
                ("max_y".into(), AggFunc::Max("y".into())),
            ],
        );
        let plan = b.build(a);
        let out = execute_full(&plan, &c);
        assert_eq!(out.rows.len(), 5);
        // Group x=0 holds y ∈ {0, 5, 10, 15}.
        let g0 = out
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(0))
            .expect("group 0");
        assert_eq!(g0[1], Value::Int(4));
        assert_eq!(g0[2].as_float(), 30.0);
        assert_eq!(g0[3].as_float(), 7.5);
        assert_eq!(g0[4].as_float(), 0.0);
        assert_eq!(g0[5].as_float(), 15.0);
    }

    #[test]
    fn scalar_aggregate_on_empty_input() {
        let c = catalog();
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::eq("a", Value::Int(999)));
        let a = b.aggregate(s, vec![], vec![("cnt".into(), AggFunc::CountStar)]);
        let plan = b.build(a);
        let out = execute_full(&plan, &c);
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
    }

    #[test]
    fn sample_mode_tracks_provenance_for_scans() {
        let c = catalog();
        let mut rng = Rng::new(5);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::eq("a", Value::Int(3)));
        let plan = b.build(s);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[0].prov.as_ref().expect("prov in sample mode");
        assert_eq!(prov.arity, 1);
        assert_eq!(prov.rows(), out.rows.len());
        let n = samples.sample("t1", 0).len();
        for i in 0..prov.rows() {
            assert!((prov.row(i)[0] as usize) < n);
        }
    }

    #[test]
    fn sample_mode_join_provenance_arity() {
        let c = catalog();
        let mut rng = Rng::new(6);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t1", Pred::True);
        let r = b.seq_scan("t2", Pred::True);
        let j = b.hash_join(l, r, "a", "x");
        let plan = b.build(j);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[j].prov.as_ref().expect("join prov");
        assert_eq!(prov.arity, 2);
        assert_eq!(prov.rows(), out.rows.len());
        // Every prov row indexes valid sample steps, and the joined rows
        // really match the sample tuples they claim to come from.
        let s1 = samples.sample("t1", 0);
        let s2 = samples.sample("t2", 0);
        for i in 0..prov.rows() {
            let [p1, p2] = prov.row(i) else { panic!() };
            let t1row = &s1.table().rows()[*p1 as usize];
            let t2row = &s2.table().rows()[*p2 as usize];
            assert_eq!(out.rows[i][0], t1row[0]);
            assert_eq!(out.rows[i][2], t2row[0]);
        }
    }

    #[test]
    fn aggregate_drops_provenance() {
        let c = catalog();
        let mut rng = Rng::new(7);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let a = b.aggregate(s, vec!["a".into()], vec![("cnt".into(), AggFunc::CountStar)]);
        let f = b.filter(a, Pred::gt("cnt", Value::Int(0)));
        let plan = b.build(f);
        let out = execute_on_samples(&plan, &samples);
        assert!(out.traces[a].prov.is_none());
        assert!(out.traces[f].prov.is_none());
        assert!(out.traces[s].prov.is_some());
    }

    #[test]
    fn sort_keeps_prov_aligned() {
        let c = catalog();
        let mut rng = Rng::new(8);
        let samples = c.draw_samples(0.5, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t1", Pred::True);
        let srt = b.sort(s, vec![("b".into(), SortOrder::Asc)]);
        let plan = b.build(srt);
        let out = execute_on_samples(&plan, &samples);
        let prov = out.traces[srt].prov.as_ref().expect("prov");
        let sample = samples.sample("t1", 0);
        for i in 0..prov.rows() {
            let j = prov.row(i)[0] as usize;
            assert_eq!(out.rows[i], sample.table().rows()[j]);
        }
    }

    #[test]
    fn index_scan_same_semantics_as_seq_scan() {
        let c = catalog();
        let pred = Pred::between("b", Value::Int(10), Value::Int(29));
        let seq = {
            let mut b = PlanBuilder::new();
            let s = b.seq_scan("t1", pred.clone());
            b.build(s)
        };
        let idx = {
            let mut b = PlanBuilder::new();
            let s = b.index_scan("t1", "b", pred);
            b.build(s)
        };
        assert_eq!(
            execute_full(&seq, &c).rows.len(),
            execute_full(&idx, &c).rows.len()
        );
    }
}
