//! The plan-validator corpus: every golden workload plan (MICRO, SELJOIN,
//! TPCH) validates clean in both full and sample mode, and a corpus of
//! deliberately malformed plans is rejected — each with the *right* typed
//! [`PlanError`], not merely "some error". This is the contract the
//! service edge relies on: well-formed traffic is never rejected, and
//! every executor panic class the validator guards against is caught
//! before a worker sees it.

use uaq_datagen::{generate, GenConfig};
use uaq_engine::{
    plan_query, validate, validate_cached, validate_on_samples, AggFunc, CmpOp, Op, Plan,
    PlanBuilder, PlanError, Pred, SortOrder, MAX_PLAN_DEPTH,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, Column, Schema, Table, Value};
use uaq_workloads::Benchmark;

/// A small hand-built catalog with known names and types, so each
/// malformed plan can target one specific defect.
fn toy_catalog() -> Catalog {
    let mut c = Catalog::new();
    let t = Schema::new(vec![Column::int("a"), Column::int("b"), Column::str("s")]);
    let rows = (0..100)
        .map(|i| {
            vec![
                Value::Int(i % 10),
                Value::Int(i),
                Value::Str(format!("r{i}").into()),
            ]
        })
        .collect();
    c.add_table(Table::new("t", t, rows));
    let u = Schema::new(vec![Column::int("x"), Column::str("label")]);
    let rows = (0..50)
        .map(|i| vec![Value::Int(i % 10), Value::Str(format!("u{i}").into())])
        .collect();
    c.add_table(Table::new("u", u, rows));
    c
}

#[test]
fn every_golden_workload_plan_validates_clean() {
    for (bench, seed) in [
        (Benchmark::Micro, 71u64),
        (Benchmark::SelJoin, 72),
        (Benchmark::Tpch, 73),
    ] {
        let catalog = generate(&GenConfig::new(0.001, 0.0, seed));
        let mut rng = Rng::new(seed);
        let samples = catalog.draw_samples(0.05, 2, &mut Rng::new(seed));
        for q in bench.queries(&catalog, 2, &mut rng) {
            let plan = plan_query(&q, &catalog);
            validate(&plan, &catalog).unwrap_or_else(|e| {
                panic!(
                    "{} query {} rejected in full mode: {e}",
                    bench.label(),
                    q.name
                )
            });
            validate_on_samples(&plan, &catalog, &samples).unwrap_or_else(|e| {
                panic!(
                    "{} query {} rejected in sample mode: {e}",
                    bench.label(),
                    q.name
                )
            });
        }
    }
}

/// Asserts a plan fails validation and hands the error to `check`.
fn expect_err(catalog: &Catalog, plan: &Plan, check: impl FnOnce(&PlanError)) {
    match validate(plan, catalog) {
        Ok(()) => panic!("plan unexpectedly validated:\n{}", plan.explain()),
        Err(e) => check(&e),
    }
}

#[test]
fn unknown_table_is_rejected() {
    let c = toy_catalog();
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("nosuch", Pred::True);
    expect_err(&c, &b.build(s), |e| {
        assert!(
            matches!(e, PlanError::UnknownTable { table, .. } if table == "nosuch"),
            "{e}"
        );
        assert_eq!(e.code(), "unknown_table");
    });
}

#[test]
fn unknown_columns_are_rejected_in_every_context() {
    let c = toy_catalog();
    // Scan predicate.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::lt("ghost", Value::Int(1)));
    expect_err(&c, &b.build(s), |e| {
        assert!(
            matches!(e, PlanError::UnknownColumn { column, context, .. }
                if column == "ghost" && *context == "predicate"),
            "{e}"
        );
    });
    // Sort key.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let srt = b.sort(s, vec![("ghost".into(), SortOrder::Asc)]);
    expect_err(&c, &b.build(srt), |e| {
        assert!(
            matches!(e, PlanError::UnknownColumn { context, .. } if *context == "sort key"),
            "{e}"
        );
    });
    // Join keys, both sides.
    for (lk, rk, ctx) in [
        ("ghost", "x", "left join key"),
        ("a", "ghost", "right join key"),
    ] {
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("u", Pred::True);
        let j = b.hash_join(l, r, lk, rk);
        expect_err(&c, &b.build(j), |e| {
            assert!(
                matches!(e, PlanError::UnknownColumn { context, .. } if *context == ctx),
                "{e}"
            );
        });
    }
    // Group-by key and aggregate input.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let a = b.aggregate(s, vec!["ghost".into()], vec![]);
    expect_err(&c, &b.build(a), |e| {
        assert!(
            matches!(e, PlanError::UnknownColumn { context, .. } if *context == "group-by key"),
            "{e}"
        );
    });
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let a = b.aggregate(s, vec![], vec![("v".into(), AggFunc::Sum("ghost".into()))]);
    expect_err(&c, &b.build(a), |e| {
        assert!(
            matches!(e, PlanError::UnknownColumn { context, .. } if *context == "aggregate input"),
            "{e}"
        );
    });
    // Column-to-column comparison, unknown right side.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::col_cmp("a", CmpOp::Eq, "ghost"));
    expect_err(&c, &b.build(s), |e| {
        assert!(matches!(e, PlanError::UnknownColumn { .. }), "{e}");
    });
}

#[test]
fn string_vs_numeric_ordering_is_rejected_but_equality_is_not() {
    let c = toy_catalog();
    // Each of these would panic inside `Value::cmp` at execution time.
    let bad = [
        Pred::lt("a", Value::str("zzz")),
        Pred::ge("s", Value::Int(3)),
        Pred::between("a", Value::Int(0), Value::str("hi")),
        Pred::col_cmp("a", CmpOp::Lt, "s"),
        Pred::and(vec![Pred::True, Pred::gt("s", Value::Float(0.5))]),
    ];
    for p in bad {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", p);
        expect_err(&c, &b.build(s), |e| {
            assert!(matches!(e, PlanError::OrderingTypeMismatch { .. }), "{e}");
            assert_eq!(e.code(), "ordering_type_mismatch");
        });
    }
    // Equality across those types is total (always false), so Eq/Ne and
    // IN-lists stay legal — rejecting them would break real workloads.
    let fine = [
        Pred::eq("a", Value::str("zzz")),
        Pred::cmp("s", CmpOp::Ne, Value::Int(1)),
        Pred::in_list("a", vec![Value::str("x"), Value::Int(3)]),
        Pred::col_cmp("a", CmpOp::Eq, "s"),
    ];
    for p in fine {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", p);
        let plan = b.build(s);
        validate(&plan, &c).unwrap_or_else(|e| panic!("equality wrongly rejected: {e}"));
    }
}

#[test]
fn join_defects_are_rejected() {
    let c = toy_catalog();
    // Int ⋈ Str keys can never compare equal.
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("t", Pred::True);
    let r = b.seq_scan("u", Pred::True);
    let j = b.hash_join(l, r, "a", "label");
    expect_err(&c, &b.build(j), |e| {
        assert!(
            matches!(e, PlanError::JoinKeyTypeMismatch { left_key, right_key, .. }
                if left_key == "a" && right_key == "label"),
            "{e}"
        );
    });
    // Self-join output would hold every column of `t` twice — the
    // executor's `Schema::concat` assert, pre-empted.
    let mut b = PlanBuilder::new();
    let l = b.seq_scan("t", Pred::True);
    let r = b.seq_scan("t", Pred::True);
    let j = b.nl_join(l, r, "a", "a");
    expect_err(&c, &b.build(j), |e| {
        assert!(matches!(e, PlanError::DuplicateJoinColumn { .. }), "{e}");
    });
}

#[test]
fn unconstrained_index_key_is_rejected() {
    let c = toy_catalog();
    // The predicate filters `b`, so the index on `a` has no lookup key.
    let mut b = PlanBuilder::new();
    let s = b.index_scan("t", "a", Pred::lt("b", Value::Int(10)));
    expect_err(&c, &b.build(s), |e| {
        assert!(
            matches!(e, PlanError::IndexKeyUnconstrained { key_col, .. } if key_col == "a"),
            "{e}"
        );
    });
    // Constrained is fine.
    let mut b = PlanBuilder::new();
    let s = b.index_scan("t", "a", Pred::eq("a", Value::Int(3)));
    validate(&b.build(s), &c).expect("constrained index scan validates");
}

#[test]
fn aggregates_over_strings_are_rejected() {
    let c = toy_catalog();
    for func in [AggFunc::Sum("s".into()), AggFunc::Avg("s".into())] {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::True);
        let a = b.aggregate(s, vec![], vec![("v".into(), func)]);
        expect_err(&c, &b.build(a), |e| {
            assert!(
                matches!(e, PlanError::AggregateTypeMismatch { column, .. } if column == "s"),
                "{e}"
            );
        });
    }
    // Min/Max order within one column's type — legal on strings.
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::True);
    let a = b.aggregate(s, vec![], vec![("m".into(), AggFunc::Min("s".into()))]);
    validate(&b.build(a), &c).expect("Min over strings validates");
}

#[test]
fn orphan_nodes_and_excessive_depth_are_rejected() {
    let c = toy_catalog();
    // An arena with a node the root never reaches: `Plan::new` accepts it
    // (no node has two parents), but executing it would silently ignore
    // half the arena the caller paid to build.
    let nodes = vec![
        Op::SeqScan {
            table: "t".into(),
            predicate: Pred::True,
        },
        Op::SeqScan {
            table: "u".into(),
            predicate: Pred::True,
        },
    ];
    let plan = Plan::new(nodes, 0);
    expect_err(&c, &plan, |e| {
        assert!(
            matches!(e, PlanError::UnreachableNodes { nodes } if nodes == &[1]),
            "{e}"
        );
    });
    // A filter chain one past the executor's recursion budget.
    let mut b = PlanBuilder::new();
    let mut node = b.seq_scan("t", Pred::True);
    for _ in 0..MAX_PLAN_DEPTH {
        node = b.filter(node, Pred::True);
    }
    expect_err(&c, &b.build(node), |e| {
        assert!(matches!(e, PlanError::ExcessiveDepth { .. }), "{e}");
    });
    // Exactly at the budget is fine.
    let mut b = PlanBuilder::new();
    let mut node = b.seq_scan("t", Pred::True);
    for _ in 0..MAX_PLAN_DEPTH - 1 {
        node = b.filter(node, Pred::True);
    }
    validate(&b.build(node), &c).expect("depth at the budget validates");
}

#[test]
fn sample_mode_requires_samples_for_every_leaf() {
    let mut c = toy_catalog();
    let samples = c.draw_samples(0.2, 1, &mut Rng::new(5));
    // `v` exists in the catalog but was added after the samples were
    // drawn — full mode fine, sample mode must reject.
    let v = Schema::new(vec![Column::int("k")]);
    c.add_table(Table::new(
        "v",
        v,
        (0..10).map(|i| vec![Value::Int(i)]).collect(),
    ));
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("v", Pred::True);
    let plan = b.build(s);
    validate(&plan, &c).expect("full mode validates");
    match validate_on_samples(&plan, &c, &samples) {
        Err(PlanError::MissingSamples { table, .. }) => assert_eq!(table, "v"),
        other => panic!("expected MissingSamples, got {other:?}"),
    }
}

#[test]
fn cached_verdicts_survive_clone_and_catalog_swap() {
    let c = toy_catalog();
    let mut b = PlanBuilder::new();
    let s = b.seq_scan("t", Pred::lt("ghost", Value::Int(1)));
    let plan = b.build(s);
    let first = validate_cached(&plan, &c).expect_err("malformed plan");
    // The verdict is interned: a clone carries it, and re-checking agrees.
    let cloned = plan.clone();
    assert_eq!(
        validate_cached(&cloned, &c).expect_err("still malformed"),
        first
    );
    // A different catalog (different fingerprint) in which the column
    // exists: the memo must not serve the stale rejection.
    let mut c2 = Catalog::new();
    let t = Schema::new(vec![Column::int("ghost")]);
    c2.add_table(Table::new("t", t, vec![vec![Value::Int(1)]]));
    validate_cached(&plan, &c2).expect("valid under the swapped catalog");
}
