//! The TPCH benchmark (§6.2): instance queries from the 14 TPC-H templates
//! the paper uses (1, 3, 4, 5, 6, 7, 8, 9, 10, 12, 13, 14, 18, 19), adapted
//! to the engine's operator set (select-join-aggregate trees; no correlated
//! subqueries or views — the same restriction the paper applies when it
//! excludes the other templates).

use uaq_datagen::{domains, DATE_DOMAIN_DAYS};
use uaq_engine::{AggFunc, CmpOp, JoinStep, Pred, QuerySpec, SortOrder, TableRef};
use uaq_stats::Rng;
use uaq_storage::Value;

fn day(rng: &mut Rng, lo: i64, hi: i64) -> i64 {
    rng.i64_range(lo.max(0), hi.min(DATE_DOMAIN_DAYS - 1))
}

/// Q1 — pricing summary report: big scan + group-by.
pub fn q1(rng: &mut Rng) -> QuerySpec {
    let d = day(rng, 600, 2500);
    QuerySpec::scan(
        "tpch-q1",
        TableRef::new("lineitem", Pred::le("l_shipdate", Value::Int(d))),
    )
    .with_aggregates(
        vec!["l_returnflag".into(), "l_linestatus".into()],
        vec![
            ("sum_qty".into(), AggFunc::Sum("l_quantity".into())),
            (
                "sum_base_price".into(),
                AggFunc::Sum("l_extendedprice".into()),
            ),
            ("avg_qty".into(), AggFunc::Avg("l_quantity".into())),
            ("avg_price".into(), AggFunc::Avg("l_extendedprice".into())),
            ("count_order".into(), AggFunc::CountStar),
        ],
    )
    .with_order_by(vec![
        ("l_returnflag".into(), SortOrder::Asc),
        ("l_linestatus".into(), SortOrder::Asc),
    ])
}

/// Q3 — shipping priority.
pub fn q3(rng: &mut Rng) -> QuerySpec {
    let d = day(rng, 800, 1600);
    let seg = *rng.choose(&domains::SEGMENTS);
    QuerySpec::scan(
        "tpch-q3",
        TableRef::new("customer", Pred::eq("c_mktsegment", Value::str(seg))),
    )
    .with_joins(vec![
        JoinStep::new(
            TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(d))),
            "c_custkey",
            "o_custkey",
        ),
        JoinStep::new(
            TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(d))),
            "o_orderkey",
            "l_orderkey",
        ),
    ])
    .with_aggregates(
        vec![
            "l_orderkey".into(),
            "o_orderdate".into(),
            "o_shippriority".into(),
        ],
        vec![("revenue".into(), AggFunc::Sum("l_extendedprice".into()))],
    )
    .with_order_by(vec![("revenue".into(), SortOrder::Desc)])
}

/// Q4 — order priority checking (EXISTS flattened to a join).
pub fn q4(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(30, 500);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan(
        "tpch-q4",
        TableRef::new(
            "orders",
            Pred::between("o_orderdate", Value::Int(start), Value::Int(start + width)),
        ),
    )
    .with_joins(vec![JoinStep::new(
        TableRef::new(
            "lineitem",
            Pred::col_cmp("l_commitdate", CmpOp::Lt, "l_receiptdate"),
        ),
        "o_orderkey",
        "l_orderkey",
    )])
    .with_aggregates(
        vec!["o_orderpriority".into()],
        vec![("order_count".into(), AggFunc::CountStar)],
    )
    .with_order_by(vec![("o_orderpriority".into(), SortOrder::Asc)])
}

/// Q5 — local supplier volume: 6-way join down to region.
pub fn q5(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(90, 900);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    let region = *rng.choose(&domains::REGIONS);
    QuerySpec::scan("tpch-q5", TableRef::plain("customer"))
        .with_joins(vec![
            JoinStep::new(
                TableRef::new(
                    "orders",
                    Pred::between("o_orderdate", Value::Int(start), Value::Int(start + width)),
                ),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(TableRef::plain("lineitem"), "o_orderkey", "l_orderkey"),
            JoinStep::new(TableRef::plain("supplier"), "l_suppkey", "s_suppkey"),
            JoinStep::new(TableRef::plain("nation"), "s_nationkey", "n_nationkey"),
            JoinStep::new(
                TableRef::new("region", Pred::eq("r_name", Value::str(region))),
                "n_regionkey",
                "r_regionkey",
            ),
        ])
        .with_residual(Pred::col_cmp("c_nationkey", CmpOp::Eq, "s_nationkey"))
        .with_aggregates(
            vec!["n_name".into()],
            vec![("revenue".into(), AggFunc::Sum("l_extendedprice".into()))],
        )
        .with_order_by(vec![("revenue".into(), SortOrder::Desc)])
}

/// Q6 — forecasting revenue change: pure selection + scalar aggregate.
pub fn q6(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(90, 900);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    let disc = rng.i64_range(2, 8) as f64 / 100.0;
    let qty = rng.i64_range(24, 35) as f64;
    QuerySpec::scan(
        "tpch-q6",
        TableRef::new(
            "lineitem",
            Pred::and(vec![
                Pred::between("l_shipdate", Value::Int(start), Value::Int(start + width)),
                Pred::between(
                    "l_discount",
                    Value::Float(disc - 0.011),
                    Value::Float(disc + 0.011),
                ),
                Pred::lt("l_quantity", Value::Float(qty)),
            ]),
        ),
    )
    .with_aggregates(
        vec![],
        vec![("revenue".into(), AggFunc::Sum("l_extendedprice".into()))],
    )
}

/// Q7 — volume shipping between two nations.
pub fn q7(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(180, 1400);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    let n1 = rng.i64_range(0, 24);
    let n2 = rng.i64_range(0, 24);
    QuerySpec::scan("tpch-q7", TableRef::plain("supplier"))
        .with_joins(vec![
            JoinStep::new(
                TableRef::new(
                    "lineitem",
                    Pred::between("l_shipdate", Value::Int(start), Value::Int(start + width)),
                ),
                "s_suppkey",
                "l_suppkey",
            ),
            JoinStep::new(TableRef::plain("orders"), "l_orderkey", "o_orderkey"),
            JoinStep::new(TableRef::plain("customer"), "o_custkey", "c_custkey"),
            JoinStep::new(TableRef::plain("nation"), "s_nationkey", "n_nationkey"),
        ])
        .with_residual(Pred::in_list(
            "c_nationkey",
            vec![Value::Int(n1), Value::Int(n2)],
        ))
        .with_aggregates(
            vec!["n_name".into()],
            vec![("revenue".into(), AggFunc::Sum("l_extendedprice".into()))],
        )
        .with_order_by(vec![("n_name".into(), SortOrder::Asc)])
}

/// Q8 — national market share.
pub fn q8(rng: &mut Rng) -> QuerySpec {
    let ty = format!(
        "{} {} {}",
        rng.choose(&domains::TYPE_SYLL1),
        rng.choose(&domains::TYPE_SYLL2),
        rng.choose(&domains::TYPE_SYLL3)
    );
    let width = rng.i64_range(180, 1400);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan(
        "tpch-q8",
        TableRef::new("part", Pred::eq("p_type", Value::str(ty))),
    )
    .with_joins(vec![
        JoinStep::new(TableRef::plain("lineitem"), "p_partkey", "l_partkey"),
        JoinStep::new(
            TableRef::new(
                "orders",
                Pred::between("o_orderdate", Value::Int(start), Value::Int(start + width)),
            ),
            "l_orderkey",
            "o_orderkey",
        ),
        JoinStep::new(TableRef::plain("customer"), "o_custkey", "c_custkey"),
        JoinStep::new(TableRef::plain("nation"), "c_nationkey", "n_nationkey"),
    ])
    .with_aggregates(
        vec!["n_name".into()],
        vec![("volume".into(), AggFunc::Sum("l_extendedprice".into()))],
    )
    .with_order_by(vec![("volume".into(), SortOrder::Desc)])
}

/// Q9 — product type profit measure, with the partsupp composite-key join
/// expressed as a single-key join plus a column-equality residual.
pub fn q9(rng: &mut Rng) -> QuerySpec {
    let metal = *rng.choose(&domains::TYPE_SYLL3);
    let types: Vec<Value> = domains::TYPE_SYLL1
        .iter()
        .flat_map(|s1| {
            domains::TYPE_SYLL2
                .iter()
                .map(move |s2| Value::str(format!("{s1} {s2} {metal}")))
        })
        .collect();
    QuerySpec::scan(
        "tpch-q9",
        TableRef::new("part", Pred::in_list("p_type", types)),
    )
    .with_joins(vec![
        JoinStep::new(TableRef::plain("lineitem"), "p_partkey", "l_partkey"),
        JoinStep::new(TableRef::plain("supplier"), "l_suppkey", "s_suppkey"),
        JoinStep::new(TableRef::plain("partsupp"), "p_partkey", "ps_partkey"),
        JoinStep::new(TableRef::plain("nation"), "s_nationkey", "n_nationkey"),
    ])
    .with_residual(Pred::col_cmp("ps_suppkey", CmpOp::Eq, "l_suppkey"))
    .with_aggregates(
        vec!["n_name".into()],
        vec![("sum_profit".into(), AggFunc::Sum("l_extendedprice".into()))],
    )
    .with_order_by(vec![("n_name".into(), SortOrder::Asc)])
}

/// Q10 — returned item reporting.
pub fn q10(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(30, 400);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan("tpch-q10", TableRef::plain("customer"))
        .with_joins(vec![
            JoinStep::new(
                TableRef::new(
                    "orders",
                    Pred::between("o_orderdate", Value::Int(start), Value::Int(start + width)),
                ),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(
                TableRef::new("lineitem", Pred::eq("l_returnflag", Value::str("R"))),
                "o_orderkey",
                "l_orderkey",
            ),
            JoinStep::new(TableRef::plain("nation"), "c_nationkey", "n_nationkey"),
        ])
        .with_aggregates(
            vec!["c_custkey".into(), "c_name".into(), "n_name".into()],
            vec![("revenue".into(), AggFunc::Sum("l_extendedprice".into()))],
        )
        .with_order_by(vec![("revenue".into(), SortOrder::Desc)])
}

/// Q12 — shipping modes and order priority.
pub fn q12(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(90, 900);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    let m1 = *rng.choose(&domains::SHIP_MODES);
    let m2 = *rng.choose(&domains::SHIP_MODES);
    QuerySpec::scan("tpch-q12", TableRef::plain("orders"))
        .with_joins(vec![JoinStep::new(
            TableRef::new(
                "lineitem",
                Pred::and(vec![
                    Pred::in_list("l_shipmode", vec![Value::str(m1), Value::str(m2)]),
                    Pred::between(
                        "l_receiptdate",
                        Value::Int(start),
                        Value::Int(start + width),
                    ),
                    Pred::col_cmp("l_commitdate", CmpOp::Lt, "l_receiptdate"),
                    Pred::col_cmp("l_shipdate", CmpOp::Lt, "l_commitdate"),
                ]),
            ),
            "o_orderkey",
            "l_orderkey",
        )])
        .with_aggregates(
            vec!["l_shipmode".into()],
            vec![("line_count".into(), AggFunc::CountStar)],
        )
        .with_order_by(vec![("l_shipmode".into(), SortOrder::Asc)])
}

/// Q13 — customer order-count distribution (outer join flattened to inner).
pub fn q13(rng: &mut Rng) -> QuerySpec {
    let prio = *rng.choose(&domains::PRIORITIES);
    let date_cap = day(rng, 400, DATE_DOMAIN_DAYS - 1);
    QuerySpec::scan("tpch-q13", TableRef::plain("customer"))
        .with_joins(vec![JoinStep::new(
            TableRef::new(
                "orders",
                Pred::and(vec![
                    Pred::cmp("o_orderpriority", CmpOp::Ne, Value::str(prio)),
                    Pred::lt("o_orderdate", Value::Int(date_cap)),
                ]),
            ),
            "c_custkey",
            "o_custkey",
        )])
        .with_aggregates(
            vec!["c_custkey".into()],
            vec![("c_count".into(), AggFunc::CountStar)],
        )
        .with_order_by(vec![("c_count".into(), SortOrder::Desc)])
}

/// Q14 — promotion effect.
pub fn q14(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(15, 500);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan(
        "tpch-q14",
        TableRef::new(
            "lineitem",
            Pred::between("l_shipdate", Value::Int(start), Value::Int(start + width)),
        ),
    )
    .with_joins(vec![JoinStep::new(
        TableRef::plain("part"),
        "l_partkey",
        "p_partkey",
    )])
    .with_aggregates(
        vec![],
        vec![(
            "promo_revenue".into(),
            AggFunc::Sum("l_extendedprice".into()),
        )],
    )
}

/// Q18 — large volume customers (HAVING subquery dropped).
pub fn q18(rng: &mut Rng) -> QuerySpec {
    // The HAVING subquery is dropped; an order-date cap keeps instance
    // sizes varied instead.
    let date_cap = day(rng, 400, DATE_DOMAIN_DAYS - 1);
    QuerySpec::scan("tpch-q18", TableRef::plain("customer"))
        .with_joins(vec![
            JoinStep::new(
                TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(date_cap))),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(TableRef::plain("lineitem"), "o_orderkey", "l_orderkey"),
        ])
        .with_aggregates(
            vec!["c_custkey".into(), "o_orderkey".into()],
            vec![("total_qty".into(), AggFunc::Sum("l_quantity".into()))],
        )
        .with_order_by(vec![("total_qty".into(), SortOrder::Desc)])
}

/// Q19 — discounted revenue: disjunction of conjunctive branch predicates.
pub fn q19(rng: &mut Rng) -> QuerySpec {
    let b1 = format!("Brand#{}{}", rng.i64_range(1, 5), rng.i64_range(1, 5));
    let b2 = format!("Brand#{}{}", rng.i64_range(1, 5), rng.i64_range(1, 5));
    let q1 = rng.i64_range(1, 11) as f64;
    let q2 = rng.i64_range(10, 21) as f64;
    QuerySpec::scan("tpch-q19", TableRef::plain("part"))
        .with_joins(vec![JoinStep::new(
            TableRef::plain("lineitem"),
            "p_partkey",
            "l_partkey",
        )])
        .with_residual(Pred::or(vec![
            Pred::and(vec![
                Pred::eq("p_brand", Value::str(b1)),
                Pred::in_list(
                    "p_container",
                    vec![Value::str("SM CASE"), Value::str("SM BOX")],
                ),
                Pred::between("l_quantity", Value::Float(q1), Value::Float(q1 + 10.0)),
                Pred::le("p_size", Value::Int(5)),
            ]),
            Pred::and(vec![
                Pred::eq("p_brand", Value::str(b2)),
                Pred::in_list(
                    "p_container",
                    vec![Value::str("MED BAG"), Value::str("MED BOX")],
                ),
                Pred::between("l_quantity", Value::Float(q2), Value::Float(q2 + 10.0)),
                Pred::le("p_size", Value::Int(10)),
            ]),
        ]))
        .with_aggregates(
            vec![],
            vec![("revenue".into(), AggFunc::Sum("l_extendedprice".into()))],
        )
}

/// All 14 templates used by the paper.
type Template = fn(&mut Rng) -> QuerySpec;
pub const TEMPLATES: [Template; 14] =
    [q1, q3, q4, q5, q6, q7, q8, q9, q10, q12, q13, q14, q18, q19];

/// Generates `instances_per_template` randomized instances per template.
pub fn tpch_queries(instances_per_template: usize, rng: &mut Rng) -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(TEMPLATES.len() * instances_per_template);
    for template in TEMPLATES {
        for inst in 0..instances_per_template {
            let mut q = template(rng);
            q.name = format!("{}#{}", q.name, inst);
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_datagen::{generate, GenConfig};
    use uaq_engine::{execute_full, plan_query};
    use uaq_storage::Catalog;

    fn db() -> Catalog {
        generate(&GenConfig::new(0.001, 0.0, 73))
    }

    #[test]
    fn fourteen_templates() {
        assert_eq!(TEMPLATES.len(), 14);
        let mut rng = Rng::new(1);
        let qs = tpch_queries(2, &mut rng);
        assert_eq!(qs.len(), 28);
    }

    #[test]
    fn all_have_aggregates() {
        let mut rng = Rng::new(2);
        for q in tpch_queries(1, &mut rng) {
            assert!(q.has_aggregate(), "{} should aggregate", q.name);
        }
    }

    #[test]
    fn all_templates_plan_and_execute() {
        let c = db();
        let mut rng = Rng::new(3);
        for q in tpch_queries(1, &mut rng) {
            let plan = plan_query(&q, &c);
            let out = execute_full(&plan, &c);
            let _ = out.num_rows();
        }
    }

    #[test]
    fn q1_produces_grouped_summary() {
        let c = db();
        let mut rng = Rng::new(4);
        let plan = plan_query(&q1(&mut rng), &c);
        let out = execute_full(&plan, &c);
        // At most |returnflag| × |linestatus| = 6 groups.
        assert!(
            (1..=6).contains(&out.num_rows()),
            "{} groups",
            out.num_rows()
        );
        assert_eq!(out.schema.len(), 7);
    }

    #[test]
    fn q6_is_scalar() {
        let c = db();
        let mut rng = Rng::new(5);
        let plan = plan_query(&q6(&mut rng), &c);
        let out = execute_full(&plan, &c);
        assert_eq!(out.num_rows(), 1);
    }

    #[test]
    fn q5_joins_six_tables() {
        let mut rng = Rng::new(6);
        let q = q5(&mut rng);
        assert_eq!(q.joins.len(), 5);
        let c = db();
        let plan = plan_query(&q, &c);
        // 6 scans in the plan.
        let scans = plan.node_ids().filter(|&id| plan.op(id).is_scan()).count();
        assert_eq!(scans, 6);
    }

    #[test]
    fn q9_composite_key_residual_matches_real_partsupp_semantics() {
        // The single-key join + residual must only keep (part, supplier)
        // pairs that really exist in partsupp.
        let c = db();
        let mut rng = Rng::new(7);
        let plan = plan_query(&q9(&mut rng), &c);
        let out = execute_full(&plan, &c);
        // Groups bounded by nation count.
        assert!(out.num_rows() <= 25);
    }

    #[test]
    fn instances_differ() {
        let mut rng = Rng::new(8);
        let a = q3(&mut rng);
        let b = q3(&mut rng);
        assert_ne!(
            format!("{:?}", a.base.predicate),
            format!("{:?}", b.base.predicate)
        );
    }
}
