//! # uaq-workloads
//!
//! The three benchmarks of §6.2: MICRO (selectivity-space sweeps of scans
//! and two-way joins), SELJOIN (aggregate-free multi-way join cores of the
//! TPC-H templates), and TPCH (14 full templates with aggregates).

pub mod micro;
pub mod seljoin;
pub mod tpch;

use uaq_engine::QuerySpec;
use uaq_stats::Rng;
use uaq_storage::Catalog;

pub use micro::micro_queries;
pub use seljoin::seljoin_queries;
pub use tpch::tpch_queries;

/// The three benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    Micro,
    SelJoin,
    Tpch,
}

impl Benchmark {
    pub const ALL: [Benchmark; 3] = [Benchmark::Micro, Benchmark::SelJoin, Benchmark::Tpch];

    pub fn label(&self) -> &'static str {
        match self {
            Benchmark::Micro => "MICRO",
            Benchmark::SelJoin => "SELJOIN",
            Benchmark::Tpch => "TPCH",
        }
    }

    /// Generates the benchmark's queries. `instances` scales the randomized
    /// benchmarks (per template); MICRO is a fixed grid.
    pub fn queries(&self, catalog: &Catalog, instances: usize, rng: &mut Rng) -> Vec<QuerySpec> {
        match self {
            Benchmark::Micro => micro_queries(catalog),
            Benchmark::SelJoin => seljoin_queries(instances, rng),
            Benchmark::Tpch => tpch_queries(instances, rng),
        }
    }
}
