//! The MICRO benchmark (§6.2): pure selections and two-way joins generated
//! evenly across the selectivity space, in the style of the Picasso plan
//! diagram visualizer. Selections sweep one selectivity dimension; joins
//! sweep a 2-D grid of per-side selectivities.

use uaq_engine::{JoinStep, Pred, QuerySpec, TableRef};
use uaq_storage::{Catalog, Value};

/// Target selectivities for the 1-D scan sweep.
pub const SCAN_GRID: [f64; 10] = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95];

/// Per-side target selectivities for the 2-D join grid.
pub const JOIN_GRID: [f64; 4] = [0.2, 0.45, 0.7, 0.95];

/// Predicate constant hitting a target selectivity on a numeric column.
fn cutoff(catalog: &Catalog, table: &str, column: &str, selectivity: f64) -> Value {
    let hist = catalog
        .stats(table)
        .histogram(column)
        .unwrap_or_else(|| panic!("no histogram for {table}.{column}"));
    Value::Float(hist.quantile(selectivity))
}

/// Like [`cutoff`] but for integer-typed columns (dates, keys).
fn cutoff_int(catalog: &Catalog, table: &str, column: &str, selectivity: f64) -> Value {
    let hist = catalog
        .stats(table)
        .histogram(column)
        .unwrap_or_else(|| panic!("no histogram for {table}.{column}"));
    Value::Int(hist.quantile(selectivity).round() as i64)
}

/// Generates the MICRO workload: 40 selections + 32 two-way joins.
pub fn micro_queries(catalog: &Catalog) -> Vec<QuerySpec> {
    let mut out = Vec::new();

    // Selections sweeping the selectivity axis across four differently-sized
    // relations, so the workload covers several orders of magnitude of work
    // (the paper's MICRO runtimes likewise span sub-second to minutes).
    for (i, &sel) in SCAN_GRID.iter().enumerate() {
        out.push(QuerySpec::scan(
            format!("micro-scan-lineitem-{i}"),
            TableRef::new(
                "lineitem",
                Pred::le(
                    "l_shipdate",
                    cutoff_int(catalog, "lineitem", "l_shipdate", sel),
                ),
            ),
        ));
        out.push(QuerySpec::scan(
            format!("micro-scan-orders-{i}"),
            TableRef::new(
                "orders",
                Pred::le(
                    "o_totalprice",
                    cutoff(catalog, "orders", "o_totalprice", sel),
                ),
            ),
        ));
        out.push(QuerySpec::scan(
            format!("micro-scan-part-{i}"),
            TableRef::new(
                "part",
                Pred::le(
                    "p_retailprice",
                    cutoff(catalog, "part", "p_retailprice", sel),
                ),
            ),
        ));
        out.push(QuerySpec::scan(
            format!("micro-scan-customer-{i}"),
            TableRef::new(
                "customer",
                Pred::le("c_acctbal", cutoff(catalog, "customer", "c_acctbal", sel)),
            ),
        ));
    }

    // Two-way joins over the (X_l, X_r) grid: orders ⋈ lineitem and
    // customer ⋈ orders.
    for (i, &sl) in JOIN_GRID.iter().enumerate() {
        for (j, &sr) in JOIN_GRID.iter().enumerate() {
            out.push(
                QuerySpec::scan(
                    format!("micro-join-ol-{i}{j}"),
                    TableRef::new(
                        "orders",
                        Pred::le(
                            "o_orderdate",
                            cutoff_int(catalog, "orders", "o_orderdate", sl),
                        ),
                    ),
                )
                .with_joins(vec![JoinStep::new(
                    TableRef::new(
                        "lineitem",
                        Pred::le(
                            "l_shipdate",
                            cutoff_int(catalog, "lineitem", "l_shipdate", sr),
                        ),
                    ),
                    "o_orderkey",
                    "l_orderkey",
                )]),
            );
            out.push(
                QuerySpec::scan(
                    format!("micro-join-co-{i}{j}"),
                    TableRef::new(
                        "customer",
                        Pred::le("c_acctbal", cutoff(catalog, "customer", "c_acctbal", sl)),
                    ),
                )
                .with_joins(vec![JoinStep::new(
                    TableRef::new(
                        "orders",
                        Pred::le(
                            "o_totalprice",
                            cutoff(catalog, "orders", "o_totalprice", sr),
                        ),
                    ),
                    "c_custkey",
                    "o_custkey",
                )]),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_datagen::{generate, GenConfig};
    use uaq_engine::{execute_full, plan_query};

    fn db() -> Catalog {
        generate(&GenConfig::new(0.001, 0.0, 71))
    }

    #[test]
    fn expected_query_count() {
        let c = db();
        let qs = micro_queries(&c);
        // 4 × 10 scans + 2 × 16 joins.
        assert_eq!(qs.len(), 72);
    }

    #[test]
    fn scans_hit_target_selectivities() {
        let c = db();
        let qs = micro_queries(&c);
        let li_rows = c.table("lineitem").len() as f64;
        for (i, &target) in SCAN_GRID.iter().enumerate() {
            let q = &qs[4 * i]; // lineitem scan leads each group of four
            let plan = plan_query(q, &c);
            let out = execute_full(&plan, &c);
            let got = out.traces[plan.root()].output_rows as f64 / li_rows;
            assert!(
                (got - target).abs() < 0.08,
                "scan {i}: target {target}, got {got}"
            );
        }
    }

    #[test]
    fn joins_sweep_the_grid() {
        let c = db();
        let qs = micro_queries(&c);
        let joins: Vec<_> = qs.iter().filter(|q| !q.joins.is_empty()).collect();
        assert_eq!(joins.len(), 32);
        // Corner queries produce different output sizes.
        let sizes: Vec<usize> = joins
            .iter()
            .map(|q| {
                let plan = plan_query(q, &c);
                execute_full(&plan, &c).num_rows()
            })
            .collect();
        let min = sizes.iter().min().copied().expect("non-empty");
        let max = sizes.iter().max().copied().expect("non-empty");
        assert!(max > 4 * min.max(1), "grid corners too similar: {sizes:?}");
    }

    #[test]
    fn all_queries_plan_and_execute() {
        let c = db();
        for q in micro_queries(&c) {
            let plan = plan_query(&q, &c);
            let out = execute_full(&plan, &c);
            let _ = out.num_rows();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let c = db();
        let a = micro_queries(&c);
        let b = micro_queries(&c);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(
                format!("{:?}", x.base.predicate),
                format!("{:?}", y.base.predicate)
            );
        }
    }
}
