//! The SELJOIN benchmark (§6.2): multi-way selection-join queries — the
//! "maximal sub-queries without aggregates" of the TPC-H templates, with
//! randomized predicate constants per instance.

use uaq_datagen::{domains, DATE_DOMAIN_DAYS};
use uaq_engine::{CmpOp, JoinStep, Pred, QuerySpec, TableRef};
use uaq_stats::Rng;
use uaq_storage::Value;

fn day(rng: &mut Rng, lo: i64, hi: i64) -> i64 {
    rng.i64_range(lo.max(0), hi.min(DATE_DOMAIN_DAYS - 1))
}

/// SJ3 — the agg-free core of Q3: customer × orders × lineitem.
pub fn sj3(rng: &mut Rng) -> QuerySpec {
    let d = day(rng, 300, 2200);
    let seg = *rng.choose(&domains::SEGMENTS);
    QuerySpec::scan(
        "seljoin-3",
        TableRef::new("customer", Pred::eq("c_mktsegment", Value::str(seg))),
    )
    .with_joins(vec![
        JoinStep::new(
            TableRef::new("orders", Pred::lt("o_orderdate", Value::Int(d))),
            "c_custkey",
            "o_custkey",
        ),
        JoinStep::new(
            TableRef::new("lineitem", Pred::gt("l_shipdate", Value::Int(d))),
            "o_orderkey",
            "l_orderkey",
        ),
    ])
}

/// SJ5 — the agg-free core of Q5: a 5-way join down to nation.
pub fn sj5(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(90, 730);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan("seljoin-5", TableRef::plain("customer"))
        .with_joins(vec![
            JoinStep::new(
                TableRef::new(
                    "orders",
                    Pred::between("o_orderdate", Value::Int(start), Value::Int(start + width)),
                ),
                "c_custkey",
                "o_custkey",
            ),
            JoinStep::new(TableRef::plain("lineitem"), "o_orderkey", "l_orderkey"),
            JoinStep::new(TableRef::plain("supplier"), "l_suppkey", "s_suppkey"),
            JoinStep::new(TableRef::plain("nation"), "s_nationkey", "n_nationkey"),
        ])
        .with_residual(Pred::col_cmp("c_nationkey", CmpOp::Eq, "s_nationkey"))
}

/// SJ7 — the agg-free core of Q7: supplier-side 4-way join with a shipping
/// window.
pub fn sj7(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(180, 1400);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    let n1 = rng.i64_range(0, 24);
    let n2 = rng.i64_range(0, 24);
    QuerySpec::scan("seljoin-7", TableRef::plain("supplier"))
        .with_joins(vec![
            JoinStep::new(
                TableRef::new(
                    "lineitem",
                    Pred::between("l_shipdate", Value::Int(start), Value::Int(start + width)),
                ),
                "s_suppkey",
                "l_suppkey",
            ),
            JoinStep::new(TableRef::plain("orders"), "l_orderkey", "o_orderkey"),
            JoinStep::new(TableRef::plain("customer"), "o_custkey", "c_custkey"),
        ])
        .with_residual(Pred::and(vec![
            Pred::in_list("s_nationkey", vec![Value::Int(n1), Value::Int(n2)]),
            Pred::in_list("c_nationkey", vec![Value::Int(n1), Value::Int(n2)]),
        ]))
}

/// SJ10 — the agg-free core of Q10: returned-item joins.
pub fn sj10(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(30, 400);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan("seljoin-10", TableRef::plain("customer")).with_joins(vec![
        JoinStep::new(
            TableRef::new(
                "orders",
                Pred::between("o_orderdate", Value::Int(start), Value::Int(start + width)),
            ),
            "c_custkey",
            "o_custkey",
        ),
        JoinStep::new(
            TableRef::new("lineitem", Pred::eq("l_returnflag", Value::str("R"))),
            "o_orderkey",
            "l_orderkey",
        ),
        JoinStep::new(TableRef::plain("nation"), "c_nationkey", "n_nationkey"),
    ])
}

/// SJ12 — the agg-free core of Q12: shipmode study with column-column
/// date comparisons.
pub fn sj12(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(90, 900);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    let m1 = *rng.choose(&domains::SHIP_MODES);
    let m2 = *rng.choose(&domains::SHIP_MODES);
    QuerySpec::scan("seljoin-12", TableRef::plain("orders")).with_joins(vec![JoinStep::new(
        TableRef::new(
            "lineitem",
            Pred::and(vec![
                Pred::in_list("l_shipmode", vec![Value::str(m1), Value::str(m2)]),
                Pred::between(
                    "l_receiptdate",
                    Value::Int(start),
                    Value::Int(start + width),
                ),
                Pred::col_cmp("l_commitdate", CmpOp::Lt, "l_receiptdate"),
                Pred::col_cmp("l_shipdate", CmpOp::Lt, "l_commitdate"),
            ]),
        ),
        "o_orderkey",
        "l_orderkey",
    )])
}

/// SJ14 — the agg-free core of Q14: one-month lineitem window × part.
pub fn sj14(rng: &mut Rng) -> QuerySpec {
    let width = rng.i64_range(15, 500);
    let start = day(rng, 0, DATE_DOMAIN_DAYS - width - 10);
    QuerySpec::scan(
        "seljoin-14",
        TableRef::new(
            "lineitem",
            Pred::between("l_shipdate", Value::Int(start), Value::Int(start + width)),
        ),
    )
    .with_joins(vec![JoinStep::new(
        TableRef::plain("part"),
        "l_partkey",
        "p_partkey",
    )])
}

/// SJ19 — the agg-free core of Q19: part × lineitem with a disjunctive
/// residual predicate.
pub fn sj19(rng: &mut Rng) -> QuerySpec {
    let q1 = rng.i64_range(1, 10) as f64;
    let q2 = rng.i64_range(10, 20) as f64;
    let brand = format!("Brand#{}{}", rng.i64_range(1, 5), rng.i64_range(1, 5));
    QuerySpec::scan(
        "seljoin-19",
        TableRef::new("part", Pred::le("p_size", Value::Int(rng.i64_range(5, 50)))),
    )
    .with_joins(vec![JoinStep::new(
        TableRef::plain("lineitem"),
        "p_partkey",
        "l_partkey",
    )])
    .with_residual(Pred::or(vec![
        Pred::and(vec![
            Pred::eq("p_brand", Value::str(brand)),
            Pred::between("l_quantity", Value::Float(q1), Value::Float(q1 + 10.0)),
        ]),
        Pred::and(vec![
            Pred::in_list(
                "p_container",
                vec![Value::str("SM CASE"), Value::str("SM BOX")],
            ),
            Pred::between("l_quantity", Value::Float(q2), Value::Float(q2 + 10.0)),
        ]),
    ]))
}

/// All SELJOIN template constructors.
type Template = fn(&mut Rng) -> QuerySpec;
pub const TEMPLATES: [Template; 7] = [sj3, sj5, sj7, sj10, sj12, sj14, sj19];

/// Generates `instances_per_template` randomized instances per template.
pub fn seljoin_queries(instances_per_template: usize, rng: &mut Rng) -> Vec<QuerySpec> {
    let mut out = Vec::with_capacity(TEMPLATES.len() * instances_per_template);
    for (ti, template) in TEMPLATES.iter().enumerate() {
        for inst in 0..instances_per_template {
            let mut q = template(rng);
            q.name = format!("{}#{}", q.name, inst);
            let _ = ti;
            out.push(q);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_datagen::{generate, GenConfig};
    use uaq_engine::{execute_full, plan_query};
    use uaq_storage::Catalog;

    fn db() -> Catalog {
        generate(&GenConfig::new(0.001, 0.0, 72))
    }

    #[test]
    fn instance_counts_and_names() {
        let mut rng = Rng::new(1);
        let qs = seljoin_queries(3, &mut rng);
        assert_eq!(qs.len(), 21);
        assert!(qs.iter().any(|q| q.name == "seljoin-3#0"));
        assert!(qs.iter().any(|q| q.name == "seljoin-19#2"));
    }

    #[test]
    fn no_aggregates_anywhere() {
        let mut rng = Rng::new(2);
        for q in seljoin_queries(2, &mut rng) {
            assert!(!q.has_aggregate(), "{} has aggregates", q.name);
        }
    }

    #[test]
    fn all_templates_plan_and_execute() {
        let c = db();
        let mut rng = Rng::new(3);
        for q in seljoin_queries(2, &mut rng) {
            let plan = plan_query(&q, &c);
            let out = execute_full(&plan, &c);
            let _ = out.num_rows();
        }
    }

    #[test]
    fn some_queries_return_rows() {
        let c = db();
        let mut rng = Rng::new(4);
        let qs = seljoin_queries(3, &mut rng);
        let nonempty = qs
            .iter()
            .filter(|q| {
                let plan = plan_query(q, &c);
                !execute_full(&plan, &c).is_empty()
            })
            .count();
        assert!(
            nonempty >= qs.len() / 3,
            "only {nonempty}/{} non-empty",
            qs.len()
        );
    }

    #[test]
    fn randomization_varies_instances() {
        let mut rng = Rng::new(5);
        let a = sj3(&mut rng);
        let b = sj3(&mut rng);
        assert_ne!(
            format!("{:?}", a.joins[0].table.predicate),
            format!("{:?}", b.joins[0].table.predicate)
        );
    }

    #[test]
    fn multiway_join_depth() {
        let mut rng = Rng::new(6);
        assert_eq!(sj5(&mut rng).joins.len(), 4);
        assert_eq!(sj7(&mut rng).joins.len(), 3);
        assert_eq!(sj14(&mut rng).joins.len(), 1);
    }
}
