//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the (small) API subset our benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — with real wall-clock
//! measurement behind it:
//!
//! * each benchmark warms up for `warm_up_time`, sizes its iteration count
//!   from the warm-up, then takes `sample_size` timed samples spread over
//!   `measurement_time`;
//! * results are printed in a criterion-like `time: [lo mean hi]` format and
//!   appended to `target/criterion-shim/<bench-binary>.json` so perf
//!   baselines (e.g. `BENCH_pipeline.json`) can be recorded from machine
//!   runs rather than hand-copied numbers.
//!
//! Swapping in the real criterion later is a one-line change in
//! `crates/bench/Cargo.toml`; no bench source needs to change.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` inputs are grouped. Only a hint in the real criterion;
/// ignored here (every sample re-runs its setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier `function/parameter` for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// One measured benchmark: mean/min/max nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub id: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Timing loop driver handed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a MeasureConfig,
    result: Option<Measurement>,
    id: String,
}

#[derive(Debug, Clone)]
struct MeasureConfig {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Bencher<'_> {
    /// Times `routine` over warm-up-sized batches of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent, counting iterations
        // to size the measured batches.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let budget = self.config.measurement.as_secs_f64();
        let iters = ((budget / samples as f64) / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(t0.elapsed().as_secs_f64() / iters as f64 * 1e9);
        }
        self.record(times, iters);
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut warm_spent = Duration::ZERO;
        while warm_start.elapsed() < self.config.warm_up {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm_spent += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm_spent.as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let budget = self.config.measurement.as_secs_f64();
        let iters = ((budget / samples as f64) / per_iter.max(1e-9))
            .ceil()
            .max(1.0) as u64;

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut spent = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                spent += t0.elapsed();
            }
            times.push(spent.as_secs_f64() / iters as f64 * 1e9);
        }
        self.record(times, iters);
    }

    fn record(&mut self, times: Vec<f64>, iters: u64) {
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.result = Some(Measurement {
            id: self.id.clone(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: times.len(),
            iters_per_sample: iters,
        });
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    config: MeasureConfig,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            config: &self.config,
            result: None,
            id: full,
        };
        f(&mut b);
        self.criterion.finish_bench(b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let mut b = Bencher {
            config: &self.config,
            result: None,
            id: full,
        };
        f(&mut b, input);
        self.criterion.finish_bench(b);
        self
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point: collects measurements, prints them, and writes
/// the JSON report at the end of `criterion_main!`.
#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: MeasureConfig::default(),
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let config = MeasureConfig::default();
        let mut b = Bencher {
            config: &config,
            result: None,
            id: id.to_string(),
        };
        f(&mut b);
        self.finish_bench(b);
        self
    }

    fn finish_bench(&mut self, b: Bencher) {
        if let Some(m) = b.result {
            println!(
                "{:<40} time: [{} {} {}]",
                m.id,
                fmt_ns(m.min_ns),
                fmt_ns(m.mean_ns),
                fmt_ns(m.max_ns)
            );
            self.results.push(m);
        }
    }

    /// Writes all collected measurements as JSON under
    /// `target/criterion-shim/`, named after the running bench binary.
    pub fn write_report(&self) {
        if self.results.is_empty() {
            return;
        }
        let exe = std::env::args().next().unwrap_or_else(|| "bench".into());
        let base = std::path::Path::new(&exe)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("bench")
            .to_string();
        // Cargo names bench binaries `<name>-<hash>`; strip the hash suffix.
        let name = match base.rsplit_once('-') {
            Some((head, tail))
                if tail.len() == 16 && tail.chars().all(|c| c.is_ascii_hexdigit()) =>
            {
                head.to_string()
            }
            _ => base,
        };
        // cargo runs bench binaries with the package dir as cwd; walk up to
        // the workspace `target/` so reports land in one place.
        let target_dir = std::env::var_os("CARGO_TARGET_DIR")
            .map(std::path::PathBuf::from)
            .or_else(|| {
                let mut dir = std::env::current_dir().ok()?;
                loop {
                    let cand = dir.join("target");
                    if cand.is_dir() {
                        return Some(cand);
                    }
                    if !dir.pop() {
                        return None;
                    }
                }
            })
            .unwrap_or_else(|| std::path::PathBuf::from("target"));
        let mut json = String::from("[\n");
        for (i, m) in self.results.iter().enumerate() {
            let _ = write!(
                json,
                "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}{}",
                m.id,
                m.mean_ns,
                m.min_ns,
                m.max_ns,
                m.samples,
                m.iters_per_sample,
                if i + 1 < self.results.len() { ",\n" } else { "\n" }
            );
        }
        json.push_str("]\n");
        let dir = target_dir.join("criterion-shim");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.json"));
            if std::fs::write(&path, json).is_ok() {
                println!("criterion-shim: wrote {}", path.display());
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function running each listed bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares `main` running the listed groups and writing the JSON report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let config = MeasureConfig {
            warm_up: Duration::from_millis(10),
            measurement: Duration::from_millis(20),
            sample_size: 3,
        };
        let mut b = Bencher {
            config: &config,
            result: None,
            id: "t".into(),
        };
        b.iter(|| (0..100).sum::<u64>());
        let m = b.result.expect("measured");
        assert!(m.mean_ns > 0.0);
        assert!(m.min_ns <= m.mean_ns && m.mean_ns <= m.max_ns);
        assert_eq!(m.samples, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 0.5).to_string(), "f/0.5");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
