//! Deadline-aware admission control on predicted time *distributions*.
//!
//! The paper's stated payoff for predicting `t_q ~ N(E[t_q], Var[t_q])`
//! rather than a point estimate is exactly this decision: given a deadline
//! SLO `d`, admit on `Pr(T ≤ d) ≥ θ` instead of `E[T] ≤ d` (§1, §6.5.3).
//! Two queries with the same mean can carry very different risk; the
//! tail-probability policy sees the difference, the mean-only policy
//! cannot.

use uaq_core::Prediction;

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Run it: the deadline is met with at least the admit confidence.
    Admit,
    /// Risky now, but not hopeless: confidence lies in the defer band —
    /// e.g. retry when the backlog drains or route to a bigger replica.
    Defer,
    /// The deadline is unlikely enough to be met that running the query
    /// would just burn resources on an SLO violation.
    Reject,
}

impl Decision {
    pub fn label(&self) -> &'static str {
        match self {
            Decision::Admit => "admit",
            Decision::Defer => "defer",
            Decision::Reject => "reject",
        }
    }
}

/// How the deadline check consumes the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionMode {
    /// `E[T] ≤ budget` — what a point predictor (the paper's [48]) can do.
    MeanOnly,
    /// `Pr(T ≤ budget) ≥ θ` — the uncertainty-aware policy.
    TailProbability,
}

/// Admission policy: mode plus thresholds.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionPolicy {
    pub mode: AdmissionMode,
    /// Minimum `Pr(T ≤ budget)` to admit (tail mode).
    pub admit_threshold: f64,
    /// Minimum `Pr(T ≤ budget)` to defer instead of reject (tail mode).
    /// Set equal to `admit_threshold` to disable the defer band.
    pub defer_threshold: f64,
}

impl AdmissionPolicy {
    /// Tail-probability policy with an admit threshold of `theta` and a
    /// defer band down to `theta / 2`.
    pub fn uncertainty_aware(theta: f64) -> Self {
        assert!((0.0..=1.0).contains(&theta));
        Self {
            mode: AdmissionMode::TailProbability,
            admit_threshold: theta,
            defer_threshold: theta / 2.0,
        }
    }

    /// Mean-only baseline (point-estimate admission).
    pub fn mean_only() -> Self {
        Self {
            mode: AdmissionMode::MeanOnly,
            admit_threshold: 0.5,
            defer_threshold: 0.5,
        }
    }

    /// Decides on a request whose remaining time budget is `budget_ms`
    /// (deadline minus any wait the caller already knows about — queueing,
    /// scheduling). Returns the decision and `Pr(T ≤ budget_ms)` under the
    /// predicted distribution (reported in both modes for observability).
    ///
    /// `budget_ms = None` means no deadline: always admitted, probability 1.
    /// A *negative* budget means the deadline has already passed (the wait
    /// ate the whole slack): both modes reject, with `Pr(T ≤ budget)`
    /// reported as exactly 0 — running times are non-negative, so the
    /// normal tail below zero is model artifact, not probability mass.
    pub fn decide(&self, prediction: &Prediction, budget_ms: Option<f64>) -> (Decision, f64) {
        let Some(budget) = budget_ms else {
            return (Decision::Admit, 1.0);
        };
        if budget < 0.0 {
            return (Decision::Reject, 0.0);
        }
        let prob = prediction.prob_completes_by(budget);
        let decision = match self.mode {
            AdmissionMode::MeanOnly => {
                if prediction.mean_ms() <= budget {
                    Decision::Admit
                } else {
                    Decision::Reject
                }
            }
            AdmissionMode::TailProbability => {
                if prob >= self.admit_threshold {
                    Decision::Admit
                } else if prob >= self.defer_threshold {
                    Decision::Defer
                } else {
                    Decision::Reject
                }
            }
        };
        (decision, prob)
    }

    /// Decides on a request that would have to wait `wait_ms` in a run
    /// queue before starting: the effective budget is `slack_ms − wait_ms`
    /// and the base verdict is [`Self::decide`] on that budget. On top of
    /// it, tail mode distinguishes *why* a request is hopeless: when the
    /// effective budget rejects but the **unqueued** probability
    /// `Pr(T ≤ slack)` clears the admit threshold, the queue — not the
    /// query — is the problem, and the verdict is `Defer` instead of
    /// `Reject`: park it and re-decide when the backlog drains (the
    /// scheduler re-consults with a recomputed budget at every freed
    /// server). The returned probability is always `Pr(T ≤ effective
    /// budget)`, the number the base decision thresholds on.
    pub fn decide_queued(
        &self,
        prediction: &Prediction,
        slack_ms: f64,
        wait_ms: f64,
    ) -> (Decision, f64) {
        let (decision, prob) = self.decide(prediction, Some(slack_ms - wait_ms));
        if decision == Decision::Reject
            && self.mode == AdmissionMode::TailProbability
            && wait_ms > 0.0
            && prediction.prob_completes_by(slack_ms) >= self.admit_threshold
        {
            return (Decision::Defer, prob);
        }
        (decision, prob)
    }
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        Self::uncertainty_aware(0.9)
    }
}

/// A tenant (workload class) identifier carried on every request.
/// `TenantId::default()` (tenant 0) is the anonymous tenant: requests
/// that never opted into a class get the service-wide defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl TenantId {
    /// Label value used for per-tenant telemetry series.
    pub fn label(&self) -> String {
        self.0.to_string()
    }
}

/// Per-tenant serving class: an optional θ-admission override, an
/// optional default deadline applied when a request carries none, and a
/// weighted-fair shed share. The cloud scenario from the paper's lineage
/// (per-tenant slot-time SLOs under shared capacity): one θ per contract
/// tier, and overload pain distributed by weight instead of uniformly.
#[derive(Debug, Clone, Copy)]
pub struct TenantClass {
    /// Admission policy override; `None` uses the service-wide policy.
    pub policy: Option<AdmissionPolicy>,
    /// Deadline applied to the tenant's requests that carry none.
    pub default_deadline_ms: Option<f64>,
    /// Weighted-fair shed share. Under overload a request's effective
    /// shed priority is `shed_priority / weight`, so a tenant with
    /// weight 2 takes half the shedding pressure of a weight-1 tenant at
    /// equal predicted uncertainty. Non-positive or NaN weights are
    /// treated as 1.0.
    pub shed_weight: f64,
}

impl Default for TenantClass {
    fn default() -> Self {
        Self {
            policy: None,
            default_deadline_ms: None,
            shed_weight: 1.0,
        }
    }
}

impl TenantClass {
    /// The shed weight with degenerate values normalized away.
    pub fn effective_weight(&self) -> f64 {
        if self.shed_weight.is_finite() && self.shed_weight > 0.0 {
            self.shed_weight
        } else {
            1.0
        }
    }
}

/// Shed priority of a queued request: its predicted *relative* variance
/// (coefficient of variation, `σ/μ`). Under overload the shedder drops
/// the highest-priority items first — the paper's uncertainty estimate
/// used as an operational signal: among requests we cannot all serve,
/// the ones whose runtime we are least sure about are the worst SLO
/// bets per unit of capacity they consume. Dimensionless, so cheap
/// short queries and expensive long ones compete fairly; a degenerate
/// non-positive mean (no real prediction) sorts first — there is no
/// evidence such a request can meet anything.
pub fn shed_priority(prediction: &Prediction) -> f64 {
    let mean = prediction.mean_ms();
    if mean.is_nan() || mean <= 0.0 {
        return f64::INFINITY;
    }
    prediction.std_dev_ms() / mean
}

/// [`shed_priority`] scaled by a tenant's weighted-fair share: a heavier
/// weight divides the priority, sheltering that tenant's requests under
/// overload at equal predicted uncertainty. Infinite priorities stay
/// infinite — a request with no real prediction is the first to shed
/// regardless of tenant weight. Degenerate weights (non-positive, NaN,
/// infinite) fall back to 1.0.
pub fn weighted_shed_priority(prediction: &Prediction, weight: f64) -> f64 {
    let w = if weight.is_finite() && weight > 0.0 {
        weight
    } else {
        1.0
    };
    shed_priority(prediction) / w
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_core::{Predictor, PredictorConfig};
    use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
    use uaq_engine::{PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Catalog, Column, Schema, Table, Value};

    fn prediction() -> Prediction {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..4000)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(2000)));
        let plan = b.build(t);
        let mut rng = Rng::new(3);
        let units = calibrate(
            &HardwareProfile::pc1(),
            &CalibrationConfig::default(),
            &mut rng,
        );
        let samples = c.draw_samples(0.1, 1, &mut rng);
        Predictor::new(units, PredictorConfig::default()).predict(&plan, &c, &samples)
    }

    #[test]
    fn no_deadline_always_admits() {
        let p = prediction();
        for policy in [
            AdmissionPolicy::uncertainty_aware(0.99),
            AdmissionPolicy::mean_only(),
        ] {
            let (d, prob) = policy.decide(&p, None);
            assert_eq!(d, Decision::Admit);
            assert_eq!(prob, 1.0);
        }
    }

    #[test]
    fn generous_budget_admits_tight_budget_rejects() {
        let p = prediction();
        let policy = AdmissionPolicy::uncertainty_aware(0.9);
        let generous = p.mean_ms() + 10.0 * p.std_dev_ms();
        let hopeless = (p.mean_ms() - 10.0 * p.std_dev_ms()).max(0.0);
        assert_eq!(policy.decide(&p, Some(generous)).0, Decision::Admit);
        assert_eq!(policy.decide(&p, Some(hopeless)).0, Decision::Reject);
    }

    #[test]
    fn borderline_mean_splits_the_policies() {
        // Budget just above the mean: Pr(T ≤ budget) ≈ 0.5 — mean-only
        // admits, a 0.9-confidence policy does not.
        let p = prediction();
        let budget = p.mean_ms() + 0.01 * p.std_dev_ms();
        let (mean_d, prob) = AdmissionPolicy::mean_only().decide(&p, Some(budget));
        assert_eq!(mean_d, Decision::Admit);
        assert!((prob - 0.5).abs() < 0.05, "prob {prob}");
        let (tail_d, _) = AdmissionPolicy::uncertainty_aware(0.9).decide(&p, Some(budget));
        assert_ne!(tail_d, Decision::Admit);
    }

    #[test]
    fn negative_budget_rejects_in_both_modes() {
        // budget = slack − wait < 0: the deadline is already blown before
        // the query would even start. No mode may admit, and the reported
        // probability is exactly 0 (not the normal's sub-zero tail).
        let p = prediction();
        for policy in [
            AdmissionPolicy::uncertainty_aware(0.9),
            AdmissionPolicy::mean_only(),
        ] {
            let (d, prob) = policy.decide(&p, Some(-5.0));
            assert_eq!(d, Decision::Reject);
            assert_eq!(prob, 0.0);
        }
    }

    #[test]
    fn defer_band_sits_between_admit_and_reject() {
        let p = prediction();
        let policy = AdmissionPolicy::uncertainty_aware(0.9);
        // Find a budget whose probability lands inside [0.45, 0.9).
        let budget = p.mean_ms() + 0.5 * p.std_dev_ms();
        let (d, prob) = policy.decide(&p, Some(budget));
        assert!(prob >= policy.defer_threshold && prob < policy.admit_threshold);
        assert_eq!(d, Decision::Defer);
    }

    #[test]
    fn queued_reject_upgrades_to_defer_when_the_queue_is_the_problem() {
        let p = prediction();
        let policy = AdmissionPolicy::uncertainty_aware(0.9);
        // Generous slack, but a wait that eats it whole: unqueued the
        // query clears θ comfortably, so the verdict is "wait for the
        // backlog to drain", not "burn the query".
        let slack = p.mean_ms() + 5.0 * p.std_dev_ms();
        let wait = slack + 1.0;
        let (d, prob) = policy.decide_queued(&p, slack, wait);
        assert_eq!(d, Decision::Defer);
        assert_eq!(prob, 0.0, "the effective budget is negative");
        // Without the queue the same call is a plain admit.
        assert_eq!(policy.decide_queued(&p, slack, 0.0).0, Decision::Admit);
    }

    #[test]
    fn shed_priority_is_relative_variance_and_ranks_uncertainty() {
        let p = prediction();
        let rel = shed_priority(&p);
        assert!((rel - p.std_dev_ms() / p.mean_ms()).abs() < 1e-12);
        // Same mean, zero variance ⇒ zero priority (a sure thing is the
        // last to shed); a zero-mean placeholder (degraded tier, no real
        // evidence) sorts first.
        let confident = Prediction::degraded(p.mean_ms(), 0.0);
        assert_eq!(shed_priority(&confident), 0.0);
        assert!(rel > shed_priority(&confident));
        assert_eq!(
            shed_priority(&Prediction::degraded(0.0, 0.0)),
            f64::INFINITY
        );
    }

    #[test]
    fn tenant_weights_scale_shed_priority_but_not_infinity() {
        let p = prediction();
        let base = shed_priority(&p);
        assert!((weighted_shed_priority(&p, 2.0) - base / 2.0).abs() < 1e-15);
        assert_eq!(weighted_shed_priority(&p, 1.0), base);
        // Degenerate weights normalize to 1.0.
        for w in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            assert_eq!(weighted_shed_priority(&p, w), base, "weight {w}");
        }
        // A no-evidence prediction sheds first for every tenant.
        let hopeless = Prediction::degraded(0.0, 0.0);
        assert_eq!(weighted_shed_priority(&hopeless, 100.0), f64::INFINITY);
        // TenantClass mirrors the same normalization.
        let class = TenantClass {
            shed_weight: -1.0,
            ..TenantClass::default()
        };
        assert_eq!(class.effective_weight(), 1.0);
        assert_eq!(TenantClass::default().effective_weight(), 1.0);
    }

    #[test]
    fn queued_reject_stays_reject_when_the_query_is_the_problem() {
        let p = prediction();
        let policy = AdmissionPolicy::uncertainty_aware(0.9);
        // Hopeless even unqueued: waiting cannot save it.
        let slack = (p.mean_ms() - 10.0 * p.std_dev_ms()).max(0.0);
        assert_eq!(policy.decide_queued(&p, slack, 5.0).0, Decision::Reject);
        // Mean-only has no defer concept: backlog rejects stay rejects.
        let generous = p.mean_ms() + 5.0 * p.std_dev_ms();
        assert_eq!(
            AdmissionPolicy::mean_only()
                .decide_queued(&p, generous, generous + 1.0)
                .0,
            Decision::Reject
        );
    }
}
