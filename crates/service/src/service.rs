//! The prediction service: an MPMC work queue feeding a worker pool that
//! shares one predictor, one catalog, one sample set, and one fit cache.
//!
//! ```text
//!  clients ──submit──▶ WorkQueue ──pop──▶ worker 0..N
//!                                          │  predict_with_cache(plan)
//!                                          │  policy.decide(prediction)
//!                                          ▼
//!                            mpsc reply channel per request
//! ```
//!
//! Every response carries the full [`Prediction`] (the distribution, not
//! just a mean) plus the admission [`Decision`] against the request's
//! deadline. Predictions are pure functions of (plan, catalog, samples,
//! predictor config) and the cache is bit-transparent, so responses are
//! deterministic regardless of worker count, scheduling order, or cache
//! state — the property the integration tests pin down.
//!
//! ## Deferred requests are not a black hole
//!
//! With a [`RetryPolicy`] enabled, a `Defer` verdict no longer terminates
//! the request: the job parks in a deferred queue and is **re-decided on
//! the same reply channel** with its recomputed remaining budget
//! (`deadline − time spent deferred`) every time a worker completes a
//! request (the service's "server freed" event), with an idle tick as a
//! fallback when no traffic flows. Re-decisions are bounded: after
//! `max_retries` consecutive `Defer` outcomes the service closes the
//! request with a final `Reject`, and `shutdown` gives every still-parked
//! request a final verdict — **every submitted request receives exactly
//! one response**. Retried decisions depend on wall-clock elapsed time,
//! so the bit-exact response determinism above holds for the default
//! terminal policy; with retries enabled it holds for every request that
//! is not deferred.
//!
//! One honest limitation: the service's re-decision budget can only
//! *shrink* (the prediction is fixed and the client-quoted deadline
//! drains in wall-clock time), so with today's budget model a deferred
//! request resolves to `Reject` — never `Admit`. The re-decision handles
//! all three verdicts because the protocol is written against
//! [`AdmissionPolicy::decide`]'s full contract: a budget model that can
//! *grow* — e.g. subtracting the service's own backlog from the initial
//! budget the way the deadline scenario's queue-aware admission does
//! ([`AdmissionPolicy::decide_queued`]) — makes defer→admit conversions
//! live here too, at the cost of response determinism (see ROADMAP).
//! What bounded retries buy today is the guarantee itself: a final,
//! observable verdict (`attempts`, `deferred_ms`) instead of a terminal
//! `Defer` the client must re-submit by hand.
//!
//! ## Failure model
//!
//! The service survives worker panics instead of silently losing the
//! request and the thread. Per-request handling runs under
//! `catch_unwind` at two levels: the **degradation ladder** catches
//! failures inside prediction and falls back tier by tier
//! ([`ServedTier`]: full pipeline → cached estimates → mean-only shape
//! profile → static heuristic), and an outer **supervisor** converts any
//! panic that escapes the ladder into a static-tier response on the
//! request's reply channel before letting the worker die — at which
//! point it is respawned (unless the service is shutting down). Locks
//! are poison-tolerant throughout ([`crate::sync`]), a bounded queue
//! with variance-aware shedding ([`ShedPolicy`]) keeps overload from
//! growing without bound, and the whole thing is provable because a
//! [`FaultInjector`](crate::fault::FaultInjector) can be threaded
//! through every probe point ([`PredictionService::start_with_faults`])
//! — the chaos suite drives hundreds of seeded fault schedules against
//! the exactly-one-response and cache-bit-transparency invariants.

use crate::admission::{shed_priority, AdmissionPolicy, Decision, TenantClass, TenantId};
use crate::cache::{CacheConfig, CacheStats, SharedFitCache, SharedSelEstCache};
use crate::fault::{FaultInjector, FaultSite};
use crate::queue::{Popped, Pushed, ShardedWorkQueue};
use crate::sync::lock_recover;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uaq_core::{Prediction, Predictor};
use uaq_cost::{FitCache, NoFitCache, NoSelEstCache, SelEstCache};
use uaq_engine::Plan;
use uaq_storage::{Catalog, SampleCatalog};
use uaq_telemetry::span::{self, SpanRecorder, Stage};
use uaq_telemetry::{Counter, HistogramConfig, Registry, Snapshot, StageTimings};

/// One prediction request.
#[derive(Clone)]
pub struct PredictRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    pub plan: Arc<Plan>,
    /// Remaining time budget for the deadline SLO, in milliseconds
    /// (deadline minus whatever wait the caller already accounts for).
    /// `None` means no deadline — unless the request's tenant class
    /// carries a default deadline, which `submit` applies.
    pub deadline_ms: Option<f64>,
    /// The tenant (workload class) this request belongs to;
    /// `TenantId::default()` gets the service-wide policy and weight 1.
    pub tenant: TenantId,
}

/// Which rung of the degradation ladder produced a response. Recorded on
/// every [`PredictResponse`] so admission quality per tier is measurable:
/// a fleet serving mostly `Full` is healthy; a drift toward the lower
/// tiers is the degradation signal itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServedTier {
    /// The full uncertainty pipeline ran (possibly cache-accelerated):
    /// the response carries the real `N(E[t_q], Var[t_q])`.
    Full,
    /// The pipeline failed or was over budget, but the
    /// selectivity-estimate cache held this exact query instance: the
    /// cached estimates were re-fed through fitting + variance algebra,
    /// producing a distribution bit-identical to a healthy sel-cache hit.
    CachedEstimates,
    /// Only the shape profile's last observed mean was available: the
    /// prediction is a point mass at that mean (zero variance), so
    /// admission degenerates to the mean-only check.
    MeanOnly,
    /// No usable estimate at all: the static heuristic admitted anything
    /// with a non-negative (or absent) deadline. `prob_in_time` is NaN —
    /// there is no distribution to integrate.
    Static,
    /// Never served: shed by overload control before reaching a worker.
    /// Always paired with [`Decision::Reject`] and a NaN `prob_in_time`.
    Shed,
    /// The plan failed static validation at the service edge: the request
    /// was answered with [`Decision::Reject`] and a typed
    /// [`PredictResponse::plan_error`] diagnostic instead of ever reaching
    /// the prediction pipeline. `prob_in_time` is NaN.
    Invalid,
}

impl ServedTier {
    pub fn label(&self) -> &'static str {
        match self {
            ServedTier::Full => "full",
            ServedTier::CachedEstimates => "cached-estimates",
            ServedTier::MeanOnly => "mean-only",
            ServedTier::Static => "static",
            ServedTier::Shed => "shed",
            ServedTier::Invalid => "invalid",
        }
    }
}

/// The service's answer to one request.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    pub id: u64,
    pub prediction: Prediction,
    pub decision: Decision,
    /// `Pr(T ≤ deadline)` under the predicted distribution (1.0 when the
    /// request had no deadline). For retried requests this is the
    /// probability at the *final* re-decision, against the recomputed
    /// budget. NaN for the [`ServedTier::Static`] and
    /// [`ServedTier::Shed`] tiers, which have no distribution.
    pub prob_in_time: f64,
    /// Which worker served the request (diagnostics).
    pub worker: usize,
    /// Wall-clock seconds from dequeue to decision.
    pub service_seconds: f64,
    /// Number of admission evaluations this response took: 1 = decided at
    /// first sight; >1 = the request sat in the deferred queue and was
    /// re-decided on completion events / idle ticks.
    pub attempts: u32,
    /// Milliseconds spent in the deferred queue (0 when `attempts == 1`).
    pub deferred_ms: f64,
    /// Which degradation-ladder rung served this response.
    pub tier: ServedTier,
    /// The typed validation defect when `tier` is [`ServedTier::Invalid`];
    /// `None` everywhere else. Deliberately *outside* the bit-deterministic
    /// prediction fields — it is a diagnostic, not part of the prediction.
    pub plan_error: Option<uaq_engine::PlanError>,
    /// Per-stage wall-clock breakdown of this request, captured only when
    /// [`ServiceConfig::record_spans`] is on — deliberately *outside* the
    /// bit-deterministic prediction fields. `None` with spans off and on
    /// paths that never ran the pipeline (supervisor fallback, shed).
    pub stage_timings: Option<StageTimings>,
}

/// What the service does with a `Defer` verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of `Defer` re-decisions before the service closes
    /// the request with a final `Reject`. `0` keeps `Defer` as a terminal
    /// response (the pre-retry behaviour, and the default: it is the only
    /// mode whose responses are bit-deterministic, because re-decisions
    /// consume wall-clock budget).
    pub max_retries: u32,
    /// Fallback re-decision cadence when no completion events occur (an
    /// idle pool with parked requests): workers wake on this tick and
    /// re-decide the deferred queue, so a parked request resolves within
    /// roughly `max_retries × idle_tick` even with zero traffic.
    pub idle_tick: Duration,
}

impl RetryPolicy {
    /// `Defer` is a terminal response (the client decides what to do).
    pub fn terminal() -> Self {
        Self {
            max_retries: 0,
            idle_tick: Duration::from_millis(5),
        }
    }

    /// Deferred requests are re-decided up to `max_retries` times on the
    /// same reply channel, then finally rejected.
    pub fn bounded(max_retries: u32) -> Self {
        Self {
            max_retries,
            idle_tick: Duration::from_millis(5),
        }
    }

    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::terminal()
    }
}

/// What a full bounded queue sheds when one more request arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Plain backpressure: the incoming request is rejected, the queue is
    /// untouched (FIFO shedding — the baseline the overload experiment
    /// compares against).
    RejectNewest,
    /// Uncertainty-aware: shed whichever request — queued or incoming —
    /// has the highest *relative* predicted variance
    /// ([`shed_priority`]), looked up from the shape profile of past
    /// predictions. Highest-variance work is the worst SLO bet per unit
    /// of capacity, so shedding it first minimizes expected violations
    /// among what the service keeps. Unknown shapes (no profile yet)
    /// carry infinite priority: with no evidence they can meet anything,
    /// they are the first to go under pressure.
    #[default]
    HighestRelativeVariance,
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads. 0 is clamped to 1.
    pub workers: usize,
    /// Work-queue shards. `0` (the default) uses one shard per worker —
    /// each worker drains its home shard and steals from the others in a
    /// seeded random order. `1` reproduces the single-queue FIFO exactly.
    pub queue_shards: usize,
    /// Per-tenant serving classes ([`TenantClass`]: θ-policy override,
    /// default deadline, weighted-fair shed share). Tenants not listed —
    /// including the anonymous [`TenantId::default()`] — get the
    /// service-wide policy and weight 1.
    pub tenants: Vec<(TenantId, TenantClass)>,
    pub policy: AdmissionPolicy,
    /// When false, workers predict with [`NoFitCache`] — the A/B switch the
    /// cold-vs-warm benchmarks and golden tests use.
    pub cache_enabled: bool,
    pub cache: CacheConfig,
    /// Deferred-request handling; see [`RetryPolicy`].
    pub retry: RetryPolicy,
    /// Maximum requests waiting in the work queue; `None` is unbounded
    /// (the pre-overload-control behaviour). At the mark, [`Self::shed`]
    /// picks the victim, which gets an immediate [`Decision::Reject`] at
    /// [`ServedTier::Shed`] — shedding is a response, never silence.
    pub queue_capacity: Option<usize>,
    /// Victim selection for a full queue; see [`ShedPolicy`].
    pub shed: ShedPolicy,
    /// Per-request compute budget for the degradation ladder: when the
    /// full pipeline's last observed cost for this plan shape exceeds the
    /// budget (or the attempt itself has already overrun it), the ladder
    /// skips to cheaper tiers instead of spending further. `None` (the
    /// default) never degrades on time, only on failure.
    pub compute_budget: Option<Duration>,
    /// When true, every served request runs under a
    /// [`uaq_telemetry::span::SpanRecorder`]: the response carries
    /// [`PredictResponse::stage_timings`] and the per-stage histograms
    /// (`uaq_stage_seconds{stage,tier}`) fill in. Off by default — a warm
    /// cached predict is microseconds, and the recorder's clock reads are
    /// measurable at that scale; counters stay on either way.
    pub record_spans: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_shards: 0,
            tenants: Vec::new(),
            policy: AdmissionPolicy::default(),
            cache_enabled: true,
            cache: CacheConfig::default(),
            retry: RetryPolicy::default(),
            queue_capacity: None,
            shed: ShedPolicy::default(),
            compute_budget: None,
            record_spans: false,
        }
    }
}

/// Point-in-time snapshot of the service's fault-handling counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RobustnessStats {
    /// Panics caught *inside* the degradation ladder (the worker kept
    /// running and served a lower tier).
    pub ladder_panics_caught: u64,
    /// Panics that escaped the ladder: the supervisor answered the
    /// request with a static-tier response and let the worker die.
    pub worker_panics: u64,
    /// Workers respawned after a panic death.
    pub workers_respawned: u64,
    /// Requests shed by overload control (each got a `Reject` response).
    pub shed: u64,
    /// Responses served per ladder tier (shed responses are counted in
    /// `shed`, not here; deferred requests count at park time under the
    /// tier that produced their prediction).
    pub served_full: u64,
    pub served_cached_estimates: u64,
    pub served_mean_only: u64,
    pub served_static: u64,
    /// Requests rejected at the edge by plan validation (each got a
    /// `Reject` response carrying the typed diagnostic).
    pub served_invalid: u64,
}

/// The fault-handling counters, as [`uaq_telemetry::Counter`] handles
/// registered on the service's registry: the same atomic cells back both
/// [`RobustnessStats`] (via [`Self::snapshot`]) and the
/// `uaq_requests_served_total{tier}` / `uaq_panics_total{scope}` series in
/// `PredictionService::telemetry()`.
#[derive(Debug, Default)]
struct RobustnessCounters {
    ladder_panics_caught: Counter,
    worker_panics: Counter,
    workers_respawned: Counter,
    shed: Counter,
    served_full: Counter,
    served_cached_estimates: Counter,
    served_mean_only: Counter,
    served_static: Counter,
    served_invalid: Counter,
}

impl RobustnessCounters {
    fn registered(registry: &Registry) -> Self {
        let tier =
            |t: ServedTier| registry.counter("uaq_requests_served_total", &[("tier", t.label())]);
        Self {
            ladder_panics_caught: registry.counter("uaq_panics_total", &[("scope", "ladder")]),
            worker_panics: registry.counter("uaq_panics_total", &[("scope", "worker")]),
            workers_respawned: registry.counter("uaq_workers_respawned_total", &[]),
            shed: tier(ServedTier::Shed),
            served_full: tier(ServedTier::Full),
            served_cached_estimates: tier(ServedTier::CachedEstimates),
            served_mean_only: tier(ServedTier::MeanOnly),
            served_static: tier(ServedTier::Static),
            served_invalid: tier(ServedTier::Invalid),
        }
    }

    fn count_tier(&self, tier: ServedTier) {
        let counter = match tier {
            ServedTier::Full => &self.served_full,
            ServedTier::CachedEstimates => &self.served_cached_estimates,
            ServedTier::MeanOnly => &self.served_mean_only,
            ServedTier::Static => &self.served_static,
            ServedTier::Shed => &self.shed,
            ServedTier::Invalid => &self.served_invalid,
        };
        counter.inc();
    }

    fn snapshot(&self) -> RobustnessStats {
        RobustnessStats {
            ladder_panics_caught: self.ladder_panics_caught.get(),
            worker_panics: self.worker_panics.get(),
            workers_respawned: self.workers_respawned.get(),
            shed: self.shed.get(),
            served_full: self.served_full.get(),
            served_cached_estimates: self.served_cached_estimates.get(),
            served_mean_only: self.served_mean_only.get(),
            served_static: self.served_static.get(),
            served_invalid: self.served_invalid.get(),
        }
    }
}

/// What the shape profile remembers about the last completed real
/// prediction (tier `Full`/`CachedEstimates`) for a plan shape. Feeds the
/// mean-only ladder tier and the variance-aware shedder.
#[derive(Debug, Clone, Copy)]
struct ShapeProfile {
    mean_ms: f64,
    var_ms2: f64,
    /// Wall-clock cost of producing that prediction, for the ladder's
    /// compute-budget preflight.
    predict_cost_ms: f64,
}

/// Entries the shape-profile map holds at most (bounds memory under
/// adversarial shape churn; profiled shapes past the cap just miss).
const PROFILE_CAP: usize = 4096;

struct Job {
    request: PredictRequest,
    reply: mpsc::Sender<PredictResponse>,
    /// Submit-time stamp; the span layer turns it into the
    /// [`Stage::QueueWait`] interval at dequeue.
    enqueued_at: Instant,
    /// Global arrival sequence number, assigned at submit. The shed
    /// tie-breaker: among equal shed priorities (including the all-∞
    /// unprofiled case) the *newest* arrival is the victim, which extends
    /// "ties shed the newcomer" into the queued population and — because
    /// (priority, seq) is intrinsic to the job, not its queue position —
    /// makes victim selection bit-reproducible across shard counts.
    seq: u64,
}

/// A parked request: decided `Defer`, waiting for a re-decision event.
struct DeferredJob {
    id: u64,
    deadline_ms: f64,
    /// The admission policy that parked it (per-tenant override already
    /// resolved), so re-decisions apply the same θ.
    policy: AdmissionPolicy,
    reply: mpsc::Sender<PredictResponse>,
    prediction: Prediction,
    /// When the deferring decision was made (re-decisions recompute the
    /// budget as `deadline_ms − elapsed since then`).
    parked_at: Instant,
    /// `Defer` re-decisions so far.
    retries: u32,
    service_seconds: f64,
    /// Ladder tier that produced the parked prediction.
    tier: ServedTier,
    /// Timings captured up to the park (spans on only); attached to the
    /// final response when the request resolves.
    stage_timings: Option<StageTimings>,
}

struct Shared {
    queue: ShardedWorkQueue<Job>,
    predictor: Predictor,
    catalog: Arc<Catalog>,
    samples: Arc<SampleCatalog>,
    cache: SharedFitCache,
    sel_cache: SharedSelEstCache,
    policy: AdmissionPolicy,
    /// Per-tenant class overrides; requests from unlisted tenants use the
    /// service-wide defaults.
    tenants: HashMap<TenantId, TenantClass>,
    /// Arrival sequence counter backing [`Job::seq`].
    next_seq: AtomicU64,
    cache_enabled: bool,
    retry: RetryPolicy,
    deferred: Mutex<VecDeque<DeferredJob>>,
    shed: ShedPolicy,
    compute_budget: Option<Duration>,
    /// Last real prediction per plan shape; see [`ShapeProfile`].
    profile: Mutex<HashMap<u64, ShapeProfile>>,
    robustness: RobustnessCounters,
    /// The one registry every counter, gauge, and histogram the service
    /// owns lives on; `PredictionService::telemetry()` snapshots it.
    registry: Arc<Registry>,
    record_spans: bool,
    requests_total: Counter,
    deferred_parked: Counter,
    deferred_redecisions: Counter,
    /// `None` in production ([`crate::fault::NoFaults`] is stripped at
    /// start), so every probe point costs one branch.
    injector: Option<Arc<dyn FaultInjector>>,
    /// Workers respawned after panic deaths, joined at shutdown.
    respawned: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_worker: AtomicUsize,
}

impl Shared {
    /// Re-decides every parked request once with its recomputed remaining
    /// budget. Called whenever a worker completes a request (the service's
    /// "server freed" event), on the idle tick, and — with `final_pass` —
    /// at shutdown, where a still-deferring request gets a final `Reject`
    /// because no further events can ever resolve it.
    fn redecide_deferred(&self, worker: usize, final_pass: bool) {
        let mut q = lock_recover(&self.deferred);
        let parked = q.len();
        for _ in 0..parked {
            let mut d = q.pop_front().expect("len checked");
            let waited_ms = d.parked_at.elapsed().as_secs_f64() * 1e3;
            let budget = d.deadline_ms - waited_ms;
            let (decision, prob) = d.policy.decide(&d.prediction, Some(budget));
            d.retries += 1;
            self.deferred_redecisions.inc();
            let exhausted = final_pass || d.retries >= self.retry.max_retries;
            let verdict = match decision {
                Decision::Defer if !exhausted => {
                    q.push_back(d);
                    continue;
                }
                // Out of events (shutdown) or retries: the defer band
                // resolves to rejection, never to silence.
                Decision::Defer => Decision::Reject,
                other => other,
            };
            let _ = d.reply.send(PredictResponse {
                id: d.id,
                prediction: d.prediction,
                decision: verdict,
                prob_in_time: prob,
                worker,
                service_seconds: d.service_seconds,
                attempts: d.retries + 1,
                deferred_ms: waited_ms,
                tier: d.tier,
                stage_timings: d.stage_timings,
                plan_error: None,
            });
        }
    }

    fn has_deferred(&self) -> bool {
        !lock_recover(&self.deferred).is_empty()
    }

    fn probe(&self, site: FaultSite, worker: usize) {
        if let Some(inj) = &self.injector {
            if let Some(f) = inj.inject(site, worker) {
                crate::fault::apply(f, site);
            }
        }
    }

    fn profile_for(&self, shape_hash: u64) -> Option<ShapeProfile> {
        lock_recover(&self.profile).get(&shape_hash).copied()
    }

    /// The tenant's class, or the all-defaults class for unlisted tenants.
    fn tenant_class(&self, tenant: TenantId) -> TenantClass {
        self.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// The admission policy a request of `tenant` is decided under.
    fn policy_for(&self, tenant: TenantId) -> AdmissionPolicy {
        self.tenant_class(tenant).policy.unwrap_or(self.policy)
    }

    /// Records a completed real prediction in the shape profile. Called
    /// only when the sample pass actually ran (a warm sel-cache hit
    /// changes nothing the profile holds), keeping the repeated-query hot
    /// path free of this lock.
    fn record_profile(&self, plan: &Plan, prediction: &Prediction, predict_cost_ms: f64) {
        let mut profile = lock_recover(&self.profile);
        let entry = ShapeProfile {
            mean_ms: prediction.mean_ms(),
            var_ms2: prediction.var(),
            predict_cost_ms,
        };
        let key = plan.shape_hash();
        if profile.contains_key(&key) || profile.len() < PROFILE_CAP {
            profile.insert(key, entry);
        }
    }

    /// Shed priority of a not-yet-predicted request, from the shape
    /// profile: relative variance of the shape's last real prediction, or
    /// +∞ for shapes never profiled (no evidence they can meet anything).
    fn shed_priority_of(&self, plan: &Plan) -> f64 {
        match self.profile_for(plan.shape_hash()) {
            Some(p) => shed_priority(&Prediction::degraded(
                p.mean_ms.max(0.0),
                p.var_ms2.max(0.0),
            )),
            None => f64::INFINITY,
        }
    }

    /// Weighted-fair shed priority of a queued job: the shape's relative
    /// variance divided by the tenant's shed weight (a weight-2 tenant
    /// takes half the shedding pressure at equal uncertainty). Infinite
    /// priorities stay infinite for every weight.
    fn shed_priority_of_job(&self, job: &Job) -> f64 {
        self.shed_priority_of(&job.request.plan)
            / self.tenant_class(job.request.tenant).effective_weight()
    }

    /// Answers a request that never reached a worker: shed by overload
    /// control, or left in the queue at shutdown after every worker died.
    fn respond_unserved(&self, job: Job, tier: ServedTier, worker: usize) {
        let decision = match tier {
            ServedTier::Shed => Decision::Reject,
            _ => static_decision(job.request.deadline_ms),
        };
        self.robustness.count_tier(tier);
        if tier == ServedTier::Shed {
            // Per-tenant shed accounting: these series sum to the total
            // shed count (`uaq_requests_served_total{tier="shed"}`).
            self.registry
                .counter(
                    "uaq_requests_shed_total",
                    &[("tenant", &job.request.tenant.label())],
                )
                .inc();
        }
        let _ = job.reply.send(PredictResponse {
            id: job.request.id,
            prediction: Prediction::degraded(0.0, 0.0),
            decision,
            prob_in_time: f64::NAN,
            worker,
            service_seconds: 0.0,
            attempts: 1,
            deferred_ms: 0.0,
            tier,
            stage_timings: None,
            plan_error: None,
        });
    }

    /// Feeds one finished request's timings into the aggregate histograms:
    /// per-stage `uaq_stage_seconds{stage,tier}` plus the per-shape
    /// end-to-end `uaq_request_seconds{shape}` (labeled with the exact
    /// shape key the caches group by). Only called with spans on.
    fn observe_timings(&self, timings: &StageTimings, tier: ServedTier, plan: &Plan) {
        for (stage, secs) in timings.iter() {
            self.registry
                .histogram(
                    "uaq_stage_seconds",
                    &[("stage", stage.label()), ("tier", tier.label())],
                    HistogramConfig::default(),
                )
                .record(secs);
        }
        let shape = Predictor::shape_key(plan, &self.catalog);
        self.registry
            .histogram(
                "uaq_request_seconds",
                &[("shape", &shape)],
                HistogramConfig::default(),
            )
            .record(timings.get(Stage::Total));
    }
}

/// The static admit heuristic (bottom ladder tier): with no prediction at
/// all, admit anything whose deadline has not already passed. Optimistic
/// by design — a degraded service keeps serving rather than rejecting
/// everything — and the served tier records the quality downgrade.
fn static_decision(deadline_ms: Option<f64>) -> Decision {
    match deadline_ms {
        Some(d) if d < 0.0 => Decision::Reject,
        _ => Decision::Admit,
    }
}

/// A running prediction service. Dropping it (or calling
/// [`PredictionService::shutdown`]) closes the queue, drains pending
/// requests, and joins the workers.
pub struct PredictionService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PredictionService {
    /// Starts the worker pool.
    pub fn start(
        predictor: Predictor,
        catalog: Arc<Catalog>,
        samples: Arc<SampleCatalog>,
        config: ServiceConfig,
    ) -> Self {
        Self::start_with_faults(
            predictor,
            catalog,
            samples,
            config,
            Arc::new(crate::fault::NoFaults),
        )
    }

    /// [`Self::start`] with a [`FaultInjector`] threaded through every
    /// probe point: the worker loop, the prediction pipeline, both cache
    /// lookup paths, and (via the engine's thread-local hook, installed
    /// per worker) the sample pass. An inactive injector (`active() ==
    /// false`, e.g. [`crate::fault::NoFaults`]) is stripped at
    /// construction so the production path pays one branch per probe.
    pub fn start_with_faults(
        predictor: Predictor,
        catalog: Arc<Catalog>,
        samples: Arc<SampleCatalog>,
        config: ServiceConfig,
        injector: Arc<dyn FaultInjector>,
    ) -> Self {
        let injector = injector.active().then_some(injector);
        let registry = Arc::new(Registry::new());
        let (cache, sel_cache) = match &injector {
            Some(inj) => (
                SharedFitCache::with_injector(config.cache, Arc::clone(inj)),
                SharedSelEstCache::with_injector(
                    config.cache.max_sel_entries,
                    config.cache.eviction,
                    Arc::clone(inj),
                ),
            ),
            None => (
                SharedFitCache::new(config.cache),
                SharedSelEstCache::sharded(
                    config.cache.max_sel_entries,
                    config.cache.eviction,
                    config.cache.shards,
                ),
            ),
        };
        let cache = cache.instrumented(&registry);
        let sel_cache = sel_cache.instrumented(&registry);
        let workers = config.workers.max(1);
        let queue_shards = if config.queue_shards == 0 {
            workers
        } else {
            config.queue_shards
        };
        let shared = Arc::new(Shared {
            queue: match config.queue_capacity {
                Some(cap) => ShardedWorkQueue::bounded(queue_shards, cap),
                None => ShardedWorkQueue::new(queue_shards),
            },
            predictor,
            catalog,
            samples,
            cache,
            sel_cache,
            policy: config.policy,
            tenants: config.tenants.iter().copied().collect(),
            next_seq: AtomicU64::new(0),
            cache_enabled: config.cache_enabled,
            retry: config.retry,
            deferred: Mutex::new(VecDeque::new()),
            shed: config.shed,
            compute_budget: config.compute_budget,
            profile: Mutex::new(HashMap::new()),
            robustness: RobustnessCounters::registered(&registry),
            requests_total: registry.counter("uaq_requests_total", &[]),
            deferred_parked: registry.counter("uaq_deferred_parked_total", &[]),
            deferred_redecisions: registry.counter("uaq_deferred_redecisions_total", &[]),
            registry,
            record_spans: config.record_spans,
            injector,
            respawned: Mutex::new(Vec::new()),
            next_worker: AtomicUsize::new(workers),
        });
        let workers = (0..workers)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("uaq-service-{worker}"))
                    .spawn(move || worker_entry(&shared, worker))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues a request; the response arrives on the returned channel.
    ///
    /// Contract: every request accepted before shutdown receives exactly
    /// one response (deferred requests included — they are re-decided and
    /// finally resolved at shutdown; shed requests included — they are
    /// rejected on the spot). Once shutdown has begun the queue is
    /// closed: the request is dropped together with its reply sender, so
    /// the returned receiver's `recv()` fails immediately with
    /// `RecvError` instead of blocking — submitting after shutdown never
    /// hangs and never panics.
    pub fn submit(&self, mut request: PredictRequest) -> mpsc::Receiver<PredictResponse> {
        let shared = &self.shared;
        // Tenant-class deadline default: applied once at the door, so
        // admission, deferral, and shedding all see the same deadline.
        if request.deadline_ms.is_none() {
            request.deadline_ms = shared.tenant_class(request.tenant).default_deadline_ms;
        }
        let (reply, rx) = mpsc::channel();
        let job = Job {
            request,
            reply,
            enqueued_at: Instant::now(),
            seq: shared.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        shared.requests_total.inc();
        // The selector is only consulted at the high-water mark of a
        // bounded queue.
        let pushed = shared
            .queue
            .push_bounded(job, |queued, incoming| match shared.shed {
                ShedPolicy::RejectNewest => None,
                ShedPolicy::HighestRelativeVariance => {
                    // Shed the single worst weighted relative-variance
                    // request — but only if it is strictly worse than the
                    // incoming one (ties shed the newcomer: displacing
                    // queued work needs a reason). Equal priorities among
                    // the queued (the all-∞ unprofiled case included)
                    // break on arrival seq, newest first — an ordering
                    // intrinsic to the jobs, so the victim is the same
                    // for every shard count.
                    let incoming_priority = shared.shed_priority_of_job(incoming);
                    queued
                        .iter()
                        .enumerate()
                        .map(|(i, j)| (i, shared.shed_priority_of_job(j), j.seq))
                        .max_by(|a, b| a.1.total_cmp(&b.1).then(a.2.cmp(&b.2)))
                        .filter(|&(_, p, _)| p > incoming_priority)
                        .map(|(i, _, _)| i)
                }
            });
        match pushed {
            Pushed::Queued => {}
            // The victim gets its Reject right here on the submitter's
            // thread — overload control must not depend on a worker being
            // free to say no.
            Pushed::Shed(victim) => shared.respond_unserved(victim, ServedTier::Shed, usize::MAX),
            // Closed queue: the job (and its reply sender) is dropped,
            // disconnecting `rx` right away.
            Pushed::Closed(_) => {}
        }
        rx
    }

    /// Convenience: submit and block for the response.
    pub fn predict_blocking(&self, plan: Arc<Plan>, deadline_ms: Option<f64>) -> PredictResponse {
        self.submit(PredictRequest {
            id: 0,
            plan,
            deadline_ms,
            tenant: TenantId::default(),
        })
        .recv()
        .expect("service workers alive")
    }

    /// Snapshot of both shared caches' hit/miss counters: the fit cache's
    /// fields plus the selectivity-estimate cache's `sel_*` fields.
    /// `poison_recoveries` sums both caches.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.shared.cache.stats();
        let sel = self.shared.sel_cache.stats();
        stats.sel_hits = sel.hits;
        stats.sel_misses = sel.misses;
        stats.sel_entries = sel.entries;
        stats.sel_evictions = sel.evictions;
        stats.poison_recoveries += sel.poison_recoveries;
        stats
    }

    /// Snapshot of the fault-handling counters: caught panics, respawns,
    /// shed requests, and per-tier serve counts.
    pub fn robustness_stats(&self) -> RobustnessStats {
        self.shared.robustness.snapshot()
    }

    /// One coherent snapshot of everything the service measures: request
    /// and per-tier serve counters, panic/respawn counters, cache probe
    /// counters, retry counters, queue-occupancy gauges, and — with
    /// [`ServiceConfig::record_spans`] on — the per-stage and per-shape
    /// latency histograms. Occupancy gauges (`uaq_queue_depth`,
    /// `uaq_cache_entries`, …) are refreshed here rather than maintained
    /// on the hot path; everything else is whatever the always-on atomic
    /// counters have accumulated. Export with
    /// [`Snapshot::to_prometheus`] or [`Snapshot::to_json`].
    pub fn telemetry(&self) -> Snapshot {
        let r = &self.shared.registry;
        r.gauge("uaq_queue_depth", &[]).set(self.backlog() as f64);
        r.gauge("uaq_deferred_depth", &[])
            .set(self.deferred_backlog() as f64);
        let stats = self.cache_stats();
        let occupancy = [
            ("uaq_cache_entries", "fit", stats.shapes as f64),
            ("uaq_cache_entries", "selest", stats.sel_entries as f64),
            ("uaq_cache_evictions", "fit", stats.shape_evictions as f64),
            ("uaq_cache_evictions", "selest", stats.sel_evictions as f64),
        ];
        for (name, cache, value) in occupancy {
            r.gauge(name, &[("cache", cache)]).set(value);
        }
        // Hit-rate gauges. The stats methods return NaN on zero probes
        // (the unified "no data" convention); the exposition is kept
        // NaN-free by clamping non-finite rates to 0 here — the probe
        // counters on the same snapshot disambiguate "no probes yet"
        // from a true 0%.
        let rates = [
            ("fit", stats.fit_hit_rate()),
            ("selest", stats.sel_hit_rate()),
        ];
        for (cache, rate) in rates {
            r.gauge("uaq_cache_hit_rate", &[("cache", cache)])
                .set(if rate.is_finite() { rate } else { 0.0 });
        }
        r.snapshot()
    }

    /// The registry behind [`Self::telemetry`], for callers that want to
    /// hang their own series (e.g. calibration gauges) off the same
    /// snapshot.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.shared.registry
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn backlog(&self) -> usize {
        self.shared.queue.len()
    }

    /// Requests currently parked in the deferred queue awaiting a
    /// re-decision (0 unless a [`RetryPolicy`] is enabled).
    pub fn deferred_backlog(&self) -> usize {
        lock_recover(&self.shared.deferred).len()
    }

    /// Closes the queue, drains pending requests, joins the workers, and
    /// gives every still-deferred request a final verdict.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers respawned after panic deaths are joined too. A dying
        // worker pushes its replacement's handle *before* its own join
        // returns (the respawn happens in a drop guard during unwind),
        // and a closed queue stops further respawns — so this loop
        // observes every replacement and terminates.
        loop {
            let batch: Vec<_> = lock_recover(&self.shared.respawned).drain(..).collect();
            if batch.is_empty() {
                break;
            }
            for h in batch {
                let _ = h.join();
            }
        }
        // Pathological corner: every worker died panicking right at
        // close (no respawns once the queue is closed), leaving requests
        // in the queue with nobody to serve them. They still get a
        // response — the contract survives total pool loss.
        let mut drain_rng = 0;
        while let Popped::Item(job) =
            self.shared
                .queue
                .pop_timeout(0, &mut drain_rng, Some(Duration::ZERO))
        {
            self.shared
                .respond_unserved(job, ServedTier::Static, usize::MAX);
        }
        // Workers are gone: no further completion events or ticks can
        // resolve a parked request, so re-decide each one final time
        // (still-deferring ⇒ Reject — never silence).
        self.shared.redecide_deferred(usize::MAX, true);
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Respawns the worker if its thread dies panicking. Armed for the whole
/// worker lifetime; a normal loop exit (closed queue) disarms it, and a
/// closed queue also vetoes respawning — shutdown must converge.
struct RespawnGuard {
    shared: Arc<Shared>,
    armed: bool,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !self.armed || !std::thread::panicking() || self.shared.queue.is_closed() {
            return;
        }
        let worker = self.shared.next_worker.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(&self.shared);
        // `Builder::spawn` returns a Result instead of panicking — vital
        // here: a panic inside this unwinding Drop would abort the
        // process. If the OS refuses a thread, the pool just shrinks
        // (shutdown still answers whatever the lost worker would have).
        let spawned = std::thread::Builder::new()
            .name(format!("uaq-service-{worker}"))
            .spawn(move || worker_entry(&shared, worker));
        if let Ok(handle) = spawned {
            self.shared.robustness.workers_respawned.inc();
            lock_recover(&self.shared.respawned).push(handle);
        }
    }
}

/// Thread body of one worker: installs the per-thread engine fault hook
/// (when an injector is active), arms the respawn guard, and runs the
/// serve loop.
fn worker_entry(shared: &Arc<Shared>, worker: usize) {
    if let Some(inj) = &shared.injector {
        // Thread-locals don't cross threads: every worker — initial or
        // respawned — installs its own forwarder to the shared injector.
        let inj = Arc::clone(inj);
        uaq_engine::fault::install_sample_pass_hook(Box::new(move || {
            if let Some(f) = inj.inject(FaultSite::SamplePass, worker) {
                crate::fault::apply(f, FaultSite::SamplePass);
            }
        }));
    }
    let mut guard = RespawnGuard {
        shared: Arc::clone(shared),
        armed: true,
    };
    worker_loop(shared, worker);
    guard.armed = false;
}

fn worker_loop(shared: &Shared, worker: usize) {
    // Steal order is a pure function of this seed (see
    // [`crate::queue::ShardedWorkQueue`]), so a replayed schedule visits
    // victim shards in the same order every run. A respawned worker
    // reuses its slot's seed, keeping replays deterministic across
    // panics too.
    let mut steal_rng = 0x9E37_79B9_7F4A_7C15u64 ^ worker as u64;
    loop {
        // Worker-kill / worker-stall probe, between requests: a panic
        // here unwinds into the respawn guard with no request in hand.
        shared.probe(FaultSite::WorkerLoop, worker);
        // Bound the wait only while requests are parked: the tick is the
        // fallback re-decision event for a quiet pool.
        let timeout =
            (shared.retry.enabled() && shared.has_deferred()).then_some(shared.retry.idle_tick);
        match shared.queue.pop_timeout(worker, &mut steal_rng, timeout) {
            Popped::Item(job) => {
                let completed = supervised_serve(shared, worker, job);
                if completed {
                    // A completed request is the service's "server freed"
                    // event: offer the parked requests a re-decision.
                    shared.redecide_deferred(worker, false);
                }
            }
            Popped::TimedOut => shared.redecide_deferred(worker, false),
            Popped::Closed => break,
        }
    }
}

/// Runs [`serve_job`] under the supervisor's `catch_unwind`: a panic that
/// escapes the degradation ladder (a mid-request kill, or a bug in the
/// decide/park/send path itself) still produces exactly one response —
/// static tier, decided by the heuristic — before the panic resumes and
/// the respawn guard replaces the worker. The `AssertUnwindSafe` is
/// justified by the poison-tolerance design: everything `shared` guards
/// recovers from a mid-update panic (see [`crate::sync`]).
fn supervised_serve(shared: &Shared, worker: usize, job: Job) -> bool {
    let id = job.request.id;
    let deadline_ms = job.request.deadline_ms;
    let reply = job.reply.clone();
    match catch_unwind(AssertUnwindSafe(|| serve_job(shared, worker, job))) {
        Ok(completed) => completed,
        Err(payload) => {
            shared.robustness.worker_panics.inc();
            shared.robustness.count_tier(ServedTier::Static);
            // The original job (and its reply sender) died inside the
            // closure, so this clone is the only sender left: at most one
            // response can ever reach the client. `serve_job` sends or
            // parks only as its final action, after every panic source —
            // so a panic implies no response was sent and the request is
            // not parked; this is the exactly-one response.
            let _ = reply.send(PredictResponse {
                id,
                prediction: Prediction::degraded(0.0, 0.0),
                decision: static_decision(deadline_ms),
                prob_in_time: f64::NAN,
                worker,
                service_seconds: 0.0,
                attempts: 1,
                deferred_ms: 0.0,
                tier: ServedTier::Static,
                stage_timings: None,
                plan_error: None,
            });
            resume_unwind(payload)
        }
    }
}

/// Runs the degradation ladder for one request: each tier is attempted
/// under its own `catch_unwind`, and a failing (or over-budget) tier
/// falls through to the next cheaper one. Returns `None` only when even
/// the shape profile is empty — the static tier, which needs no
/// prediction.
fn ladder_predict(
    shared: &Shared,
    worker: usize,
    plan: &Arc<Plan>,
) -> (Option<Prediction>, ServedTier) {
    let attempt_started = Instant::now();
    let over_budget = |t: Instant| {
        shared
            .compute_budget
            .is_some_and(|budget| t.elapsed() > budget)
    };
    let (fit_cache, sel_cache): (&dyn FitCache, &dyn SelEstCache) = if shared.cache_enabled {
        (&shared.cache, &shared.sel_cache)
    } else {
        (&NoFitCache, &NoSelEstCache)
    };

    // Tier 0 — the full pipeline. Preflight the compute budget against
    // the shape profile's last observed cost: a shape known to blow the
    // budget is not attempted at all.
    let skip_full = shared.compute_budget.is_some_and(|budget| {
        shared
            .profile_for(plan.shape_hash())
            .is_some_and(|p| p.predict_cost_ms > budget.as_secs_f64() * 1e3)
    });
    if !skip_full {
        let full = catch_unwind(AssertUnwindSafe(|| {
            shared.probe(FaultSite::Predict, worker);
            shared.predictor.predict_with_caches(
                &plan.clone(),
                &shared.catalog,
                &shared.samples,
                fit_cache,
                sel_cache,
            )
        }));
        match full {
            Ok(prediction) => {
                // A fresh sample pass is new evidence for the profile (a
                // warm sel-cache hit would only rewrite what it holds, so
                // the repeated-query hot path skips the profile lock).
                if prediction.sample_pass_ran {
                    let cost_ms = attempt_started.elapsed().as_secs_f64() * 1e3;
                    shared.record_profile(plan, &prediction, cost_ms);
                }
                return (Some(prediction), ServedTier::Full);
            }
            Err(_) => {
                shared.robustness.ladder_panics_caught.inc();
            }
        }
    }

    // Tier 1 — cached estimates. No sample pass: only worth attempting
    // when the sel cache might hold this exact instance, and skipped once
    // the attempt is over budget (fitting is the expensive remainder).
    if shared.cache_enabled && !over_budget(attempt_started) {
        let cached = catch_unwind(AssertUnwindSafe(|| {
            let key = shared
                .predictor
                .sel_instance_key(plan, &shared.catalog, &shared.samples);
            sel_cache.get(&key).map(|estimates| {
                shared
                    .predictor
                    .predict_from_estimates(plan, &shared.catalog, estimates, fit_cache)
            })
        }));
        match cached {
            Ok(Some(prediction)) => return (Some(prediction), ServedTier::CachedEstimates),
            Ok(None) => {}
            Err(_) => {
                shared.robustness.ladder_panics_caught.inc();
            }
        }
    }

    // Tier 2 — mean-only from the shape profile: a point mass at the
    // shape's last observed mean. Tail-probability admission on a point
    // mass degenerates to the mean-only check, which is exactly this
    // tier's contract.
    if let Some(p) = shared.profile_for(plan.shape_hash()) {
        if p.mean_ms.is_finite() && p.mean_ms >= 0.0 {
            return (
                Some(Prediction::degraded(p.mean_ms, 0.0)),
                ServedTier::MeanOnly,
            );
        }
    }

    // Tier 3 — static: no prediction at all.
    (None, ServedTier::Static)
}

/// Serves one request. Returns `false` when the request was parked in the
/// deferred queue (no response yet), `true` when a response was sent.
/// Sending/parking is the **last** action — every panic source (the
/// ladder's tiers re-panic only through injected `MidRequest` faults;
/// tier internals are caught) runs before it, which is what lets the
/// supervisor equate "panicked" with "no response sent yet".
fn serve_job(shared: &Shared, worker: usize, job: Job) -> bool {
    let t0 = Instant::now();
    // Spans on: install the per-thread recorder so every `span::timed`
    // site down the pipeline (cache probes, sample pass, fitting)
    // accrues. The queue wait is already over — credit it from the
    // enqueue stamp. `begin` replaces any recorder a panicking previous
    // request left behind.
    let recorder = shared.record_spans.then(|| {
        let r = SpanRecorder::begin();
        span::record(
            Stage::QueueWait,
            t0.duration_since(job.enqueued_at).as_secs_f64(),
        );
        r
    });
    // Harvests the recorder at response time: `Total` is end-to-end from
    // submit, and the aggregate histograms get fed under the serving tier.
    let harvest = |r: SpanRecorder, tier: ServedTier| {
        span::record(Stage::Total, job.enqueued_at.elapsed().as_secs_f64());
        let timings = r.finish();
        shared.observe_timings(&timings, tier, &job.request.plan);
        timings
    };
    // Edge validation: a malformed plan earns a typed rejection here, not
    // a panic inside a worker (the executor's own failure modes — unknown
    // columns, duplicate join outputs, mixed-type ordering — would burn a
    // `catch_unwind` per tier and still answer with an uninformative
    // static-tier response). The verdict is interned on the plan keyed by
    // the catalog+sample fingerprints, so re-submitting a warm `Arc<Plan>`
    // costs one atomic load and a `u64` compare.
    if let Err(e) =
        uaq_engine::validate_cached_on_samples(&job.request.plan, &shared.catalog, &shared.samples)
    {
        shared.robustness.count_tier(ServedTier::Invalid);
        let stage_timings = recorder.map(|r| harvest(r, ServedTier::Invalid));
        let _ = job.reply.send(PredictResponse {
            id: job.request.id,
            prediction: Prediction::degraded(0.0, 0.0),
            decision: Decision::Reject,
            prob_in_time: f64::NAN,
            worker,
            service_seconds: t0.elapsed().as_secs_f64(),
            attempts: 1,
            deferred_ms: 0.0,
            tier: ServedTier::Invalid,
            stage_timings,
            plan_error: Some(e),
        });
        return true;
    }
    let (prediction, tier) = ladder_predict(shared, worker, &job.request.plan);
    // Mid-request kill probe: after the prediction, while the request is
    // still unanswered — the panic escapes to the supervisor, which owns
    // the response.
    shared.probe(FaultSite::MidRequest, worker);
    let Some(prediction) = prediction else {
        // Static tier: heuristic decision, no distribution to defer on.
        shared.robustness.count_tier(ServedTier::Static);
        let stage_timings = recorder.map(|r| harvest(r, ServedTier::Static));
        let _ = job.reply.send(PredictResponse {
            id: job.request.id,
            prediction: Prediction::degraded(0.0, 0.0),
            decision: static_decision(job.request.deadline_ms),
            prob_in_time: f64::NAN,
            worker,
            service_seconds: t0.elapsed().as_secs_f64(),
            attempts: 1,
            deferred_ms: 0.0,
            tier: ServedTier::Static,
            stage_timings,
            plan_error: None,
        });
        return true;
    };
    let policy = shared.policy_for(job.request.tenant);
    let (decision, prob_in_time) = span::timed(Stage::Admission, || {
        policy.decide(&prediction, job.request.deadline_ms)
    });
    shared.robustness.count_tier(tier);
    let stage_timings = recorder.map(|r| harvest(r, tier));
    if decision == Decision::Defer && shared.retry.enabled() {
        if let Some(deadline_ms) = job.request.deadline_ms {
            shared.deferred_parked.inc();
            lock_recover(&shared.deferred).push_back(DeferredJob {
                id: job.request.id,
                deadline_ms,
                policy,
                reply: job.reply,
                prediction,
                parked_at: Instant::now(),
                retries: 0,
                service_seconds: t0.elapsed().as_secs_f64(),
                tier,
                stage_timings,
            });
            return false;
        }
    }
    // A dropped receiver just means the client stopped waiting; the
    // worker moves on.
    let _ = job.reply.send(PredictResponse {
        id: job.request.id,
        prediction,
        decision,
        prob_in_time,
        worker,
        service_seconds: t0.elapsed().as_secs_f64(),
        attempts: 1,
        deferred_ms: 0.0,
        tier,
        stage_timings,
        plan_error: None,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::Fault;
    use uaq_core::PredictorConfig;
    use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
    use uaq_engine::{PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table, Value};

    fn setup() -> (Predictor, Arc<Catalog>, Arc<SampleCatalog>, Arc<Plan>) {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..4000)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let mut rng = Rng::new(11);
        let units = calibrate(
            &HardwareProfile::pc1(),
            &CalibrationConfig::default(),
            &mut rng,
        );
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(2000)));
        let plan = b.build(t);
        (
            Predictor::new(units, PredictorConfig::default()),
            Arc::new(c),
            Arc::new(samples),
            Arc::new(plan),
        )
    }

    #[test]
    fn predict_blocking_round_trips() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.decision, Decision::Admit);
        assert_eq!(resp.prob_in_time, 1.0);
        assert_eq!(resp.prediction.mean_ms(), reference.mean_ms());
        assert_eq!(resp.prediction.var(), reference.var());
        service.shutdown();
    }

    #[test]
    fn invalid_plan_is_rejected_at_the_edge_with_a_typed_diagnostic() {
        let (predictor, catalog, samples, _) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("ghost", Value::Int(5)));
        let bad = Arc::new(b.build(s));
        // Submit twice: the second hit exercises the interned verdict.
        for _ in 0..2 {
            let resp = service.predict_blocking(Arc::clone(&bad), Some(1e6));
            assert_eq!(resp.tier, ServedTier::Invalid);
            assert_eq!(resp.decision, Decision::Reject);
            assert!(resp.prob_in_time.is_nan());
            match resp.plan_error {
                Some(uaq_engine::PlanError::UnknownColumn { ref column, .. }) => {
                    assert_eq!(column, "ghost")
                }
                ref other => panic!("expected UnknownColumn, got {other:?}"),
            }
        }
        let stats = service.robustness_stats();
        assert_eq!(stats.served_invalid, 2);
        service.shutdown();
    }

    #[test]
    fn warm_cache_hits_on_repeat() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let first = service.predict_blocking(Arc::clone(&plan), None);
        let second = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(first.prediction.mean_ms(), second.prediction.mean_ms());
        assert_eq!(first.prediction.var(), second.prediction.var());
        let stats = service.cache_stats();
        assert_eq!(stats.fit_hits, 1, "{stats:?}");
        assert_eq!(stats.fit_misses, 1, "{stats:?}");
        // The repeat also skipped the sample pass entirely.
        assert_eq!(stats.sel_hits, 1, "{stats:?}");
        assert_eq!(stats.sel_misses, 1, "{stats:?}");
        assert!(first.prediction.sample_pass_ran);
        assert!(!second.prediction.sample_pass_ran);
        service.shutdown();
    }

    #[test]
    fn cache_disabled_still_serves() {
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                cache_enabled: false,
                ..Default::default()
            },
        );
        let a = service.predict_blocking(Arc::clone(&plan), None);
        let b = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(a.prediction.mean_ms(), b.prediction.mean_ms());
        let stats = service.cache_stats();
        assert_eq!(stats.fit_hits + stats.fit_misses, 0, "{stats:?}");
        assert_eq!(stats.sel_hits + stats.sel_misses, 0, "{stats:?}");
        service.shutdown();
    }

    #[test]
    fn deadline_thresholds_produce_all_decisions() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let generous = reference.mean_ms() + 10.0 * reference.std_dev_ms();
        let hopeless = (reference.mean_ms() - 10.0 * reference.std_dev_ms()).max(0.0);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(generous))
                .decision,
            Decision::Admit
        );
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(hopeless))
                .decision,
            Decision::Reject
        );
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(border))
                .decision,
            Decision::Defer
        );
        service.shutdown();
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 0,
                ..Default::default()
            },
        );
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.decision, Decision::Admit);
        service.shutdown();
    }

    #[test]
    fn negative_budget_rejects_with_zero_probability() {
        let (predictor, catalog, samples, plan) = setup();
        for policy in [
            AdmissionPolicy::uncertainty_aware(0.9),
            AdmissionPolicy::mean_only(),
        ] {
            let service = PredictionService::start(
                predictor.clone(),
                Arc::clone(&catalog),
                Arc::clone(&samples),
                ServiceConfig {
                    policy,
                    ..Default::default()
                },
            );
            let resp = service.predict_blocking(Arc::clone(&plan), Some(-10.0));
            assert_eq!(resp.decision, Decision::Reject);
            assert_eq!(resp.prob_in_time, 0.0);
            service.shutdown();
        }
    }

    #[test]
    fn submit_after_shutdown_fails_fast_without_panicking() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        // Simulate the shutdown race: the queue closes while a client
        // still holds a handle (e.g. another thread called shutdown).
        service.shared.queue.close();
        let rx = service.submit(PredictRequest {
            id: 99,
            plan: Arc::clone(&plan),
            deadline_ms: None,
            tenant: TenantId::default(),
        });
        // The request was dropped with its reply sender: recv fails
        // immediately instead of blocking forever.
        assert!(rx.recv().is_err(), "no response can ever arrive");
    }

    #[test]
    fn deferred_request_is_redecided_on_completion_events() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                retry: RetryPolicy::bounded(3),
                ..Default::default()
            },
        );
        // The border request defers and parks; follow-up no-deadline
        // requests complete and each completion re-decides it. The budget
        // only shrinks (elapsed wall-clock), so the defer band drains to
        // a final Reject on the same reply channel — never silence, never
        // a terminal Defer.
        let rx = service.submit(PredictRequest {
            id: 7,
            plan: Arc::clone(&plan),
            deadline_ms: Some(border),
            tenant: TenantId::default(),
        });
        for i in 0..8 {
            let _ = service
                .submit(PredictRequest {
                    id: 100 + i,
                    plan: Arc::clone(&plan),
                    deadline_ms: None,
                    tenant: TenantId::default(),
                })
                .recv()
                .expect("worker alive");
        }
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("deferred request must resolve via completion events or ticks");
        assert_eq!(resp.id, 7);
        assert_ne!(resp.decision, Decision::Defer, "defer is not terminal");
        assert_eq!(resp.decision, Decision::Reject);
        assert!(resp.attempts > 1, "went through the retry queue");
        assert!(resp.attempts <= 4, "initial decision + at most 3 retries");
        assert!(resp.deferred_ms >= 0.0);
        assert_eq!(service.deferred_backlog(), 0);
        service.shutdown();
    }

    #[test]
    fn idle_tick_resolves_a_lone_deferred_request() {
        // No follow-up traffic at all: the fallback tick must still
        // resolve the parked request (bounded retries ⇒ final Reject)
        // without waiting for shutdown.
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 2,
                retry: RetryPolicy {
                    max_retries: 2,
                    idle_tick: std::time::Duration::from_millis(2),
                },
                ..Default::default()
            },
        );
        let rx = service.submit(PredictRequest {
            id: 1,
            plan: Arc::clone(&plan),
            deadline_ms: Some(border),
            tenant: TenantId::default(),
        });
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("resolved by idle ticks");
        assert_eq!(resp.decision, Decision::Reject);
        assert!(resp.attempts > 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_gives_parked_requests_a_final_verdict() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                // A huge retry budget and a long tick: only the shutdown
                // pass can resolve the request within the test's patience.
                retry: RetryPolicy {
                    max_retries: u32::MAX,
                    idle_tick: std::time::Duration::from_secs(3600),
                },
                ..Default::default()
            },
        );
        let rx = service.submit(PredictRequest {
            id: 3,
            plan: Arc::clone(&plan),
            deadline_ms: Some(border),
            tenant: TenantId::default(),
        });
        // Give the worker a moment to park it, then shut down.
        while service.backlog() > 0 {
            std::thread::yield_now();
        }
        service.shutdown();
        let resp = rx.recv().expect("shutdown resolves parked requests");
        assert_eq!(resp.decision, Decision::Reject);
        assert!(resp.attempts > 1);
    }

    #[test]
    fn terminal_policy_keeps_defer_as_a_terminal_response() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig::default(), // retry: RetryPolicy::terminal()
        );
        let resp = service.predict_blocking(Arc::clone(&plan), Some(border));
        assert_eq!(resp.decision, Decision::Defer);
        assert_eq!(resp.attempts, 1);
        assert_eq!(resp.deferred_ms, 0.0);
        service.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly_with_pending_work() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        // Fire-and-forget a burst; drop the receivers immediately.
        for i in 0..32 {
            let _ = service.submit(PredictRequest {
                id: i,
                plan: Arc::clone(&plan),
                deadline_ms: None,
                tenant: TenantId::default(),
            });
        }
        drop(service); // must drain + join without deadlock or panic
    }

    /// Test injector: fires `fault` at `site` while armed. `once` limits
    /// it to a single firing (the first armed probe wins the swap).
    struct FireAt {
        site: FaultSite,
        fault: Fault,
        armed: std::sync::atomic::AtomicBool,
        once: bool,
    }

    impl FireAt {
        fn armed(site: FaultSite, fault: Fault, once: bool) -> Arc<Self> {
            Arc::new(Self {
                site,
                fault,
                armed: std::sync::atomic::AtomicBool::new(true),
                once,
            })
        }

        fn disarmed(site: FaultSite, fault: Fault) -> Arc<Self> {
            Arc::new(Self {
                site,
                fault,
                armed: std::sync::atomic::AtomicBool::new(false),
                once: false,
            })
        }

        fn arm(&self) {
            self.armed.store(true, Ordering::SeqCst);
        }

        fn disarm(&self) {
            self.armed.store(false, Ordering::SeqCst);
        }
    }

    impl crate::fault::FaultInjector for FireAt {
        fn inject(&self, site: FaultSite, _worker: usize) -> Option<Fault> {
            if site != self.site {
                return None;
            }
            let hit = if self.once {
                self.armed.swap(false, Ordering::SeqCst)
            } else {
                self.armed.load(Ordering::SeqCst)
            };
            hit.then_some(self.fault)
        }
    }

    #[test]
    fn responses_carry_the_full_tier_on_the_healthy_path() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let cold = service.predict_blocking(Arc::clone(&plan), None);
        let warm = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(cold.tier, ServedTier::Full);
        assert_eq!(warm.tier, ServedTier::Full, "cache hits are still tier 0");
        let stats = service.robustness_stats();
        assert_eq!(stats.served_full, 2, "{stats:?}");
        assert_eq!(stats.worker_panics + stats.ladder_panics_caught, 0);
        service.shutdown();
    }

    #[test]
    fn predict_panic_degrades_to_cached_estimates_bit_identically() {
        let (predictor, catalog, samples, plan) = setup();
        let injector = FireAt::disarmed(FaultSite::Predict, Fault::Panic);
        let service = PredictionService::start_with_faults(
            predictor,
            catalog,
            samples,
            ServiceConfig::default(),
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        // Healthy warm-up populates both cache levels.
        let full = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(full.tier, ServedTier::Full);
        // Now every full-pipeline attempt dies — the ladder must fall to
        // the sel-cache tier and reproduce the prediction bit for bit.
        injector.arm();
        let degraded = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(degraded.tier, ServedTier::CachedEstimates);
        assert_eq!(
            degraded.prediction.mean_ms().to_bits(),
            full.prediction.mean_ms().to_bits()
        );
        assert_eq!(
            degraded.prediction.var().to_bits(),
            full.prediction.var().to_bits()
        );
        assert_eq!(degraded.decision, Decision::Admit);
        let stats = service.robustness_stats();
        assert!(stats.ladder_panics_caught >= 1, "{stats:?}");
        assert_eq!(stats.worker_panics, 0, "the ladder contained the panic");
        assert_eq!(stats.served_cached_estimates, 1, "{stats:?}");
        service.shutdown();
    }

    #[test]
    fn predict_panic_without_caches_degrades_to_mean_only_then_static() {
        let (predictor, catalog, samples, plan) = setup();
        let injector = FireAt::disarmed(FaultSite::Predict, Fault::Panic);
        let service = PredictionService::start_with_faults(
            predictor,
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                cache_enabled: false,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        // Warm-up records the shape profile (every uncached serve runs a
        // real sample pass).
        let full = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(full.tier, ServedTier::Full);
        injector.arm();
        // No sel cache to fall back on ⇒ tier 2: a point mass at the
        // shape's last observed mean.
        let mean_only = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(mean_only.tier, ServedTier::MeanOnly);
        assert_eq!(
            mean_only.prediction.mean_ms(),
            full.prediction.mean_ms(),
            "profile holds the last real mean"
        );
        assert_eq!(mean_only.prediction.var(), 0.0);
        assert_eq!(mean_only.decision, Decision::Admit);
        // A shape never seen before has no profile either ⇒ tier 3:
        // static admission, no prediction (NaN probability).
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("a", Value::Int(10)));
        let fresh_shape = Arc::new(b.build(t));
        let stat = service.predict_blocking(Arc::clone(&fresh_shape), Some(50.0));
        assert_eq!(stat.tier, ServedTier::Static);
        assert!(stat.prob_in_time.is_nan());
        assert_eq!(stat.decision, Decision::Admit, "static admits d ≥ 0");
        let rejected = service.predict_blocking(fresh_shape, Some(-1.0));
        assert_eq!(rejected.decision, Decision::Reject, "static rejects d < 0");
        let stats = service.robustness_stats();
        assert_eq!(stats.served_mean_only, 1, "{stats:?}");
        assert_eq!(stats.served_static, 2, "{stats:?}");
        assert_eq!(stats.worker_panics, 0);
        service.shutdown();
    }

    #[test]
    fn mid_request_kill_answers_exactly_once_and_respawns_the_worker() {
        let (predictor, catalog, samples, plan) = setup();
        let injector = FireAt::armed(FaultSite::MidRequest, Fault::Panic, true);
        crate::fault::silence_injected_panics();
        let service = PredictionService::start_with_faults(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        let rx = service.submit(PredictRequest {
            id: 1,
            plan: Arc::clone(&plan),
            deadline_ms: None,
            tenant: TenantId::default(),
        });
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("the supervisor answers for the killed worker");
        assert_eq!(resp.tier, ServedTier::Static);
        assert_eq!(resp.decision, Decision::Admit);
        assert!(resp.prob_in_time.is_nan());
        assert!(
            rx.try_recv().is_err(),
            "exactly one response per accepted request"
        );
        // The pool self-heals: the sole worker died, yet the next request
        // is served normally by its replacement.
        let next = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(next.tier, ServedTier::Full);
        let stats = service.robustness_stats();
        assert_eq!(stats.worker_panics, 1, "{stats:?}");
        assert_eq!(stats.workers_respawned, 1, "{stats:?}");
        service.shutdown();
    }

    #[test]
    fn worker_loop_kill_between_requests_is_invisible_to_clients() {
        let (predictor, catalog, samples, plan) = setup();
        let injector = FireAt::armed(FaultSite::WorkerLoop, Fault::Panic, true);
        crate::fault::silence_injected_panics();
        let service = PredictionService::start_with_faults(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        // The sole worker dies on its very first loop probe, before any
        // request exists; the respawn must pick up the queue.
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.tier, ServedTier::Full);
        let stats = service.robustness_stats();
        assert_eq!(stats.workers_respawned, 1, "{stats:?}");
        assert_eq!(stats.worker_panics, 0, "no request was in flight");
        service.shutdown();
    }

    #[test]
    fn bounded_queue_sheds_the_highest_relative_variance_request() {
        let (predictor, catalog, samples, plan_a) = setup();
        // Plan B scans a different column: a distinct, never-profiled
        // shape whose shed priority is +∞.
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("a", Value::Int(10)));
        let plan_b = Arc::new(b.build(t));
        let injector = FireAt::disarmed(
            FaultSite::Predict,
            Fault::Delay(std::time::Duration::from_millis(150)),
        );
        let service = PredictionService::start_with_faults(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                queue_capacity: Some(2),
                shed: ShedPolicy::HighestRelativeVariance,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        // Profile plan A with a healthy serve: finite shed priority.
        let warm = service.predict_blocking(Arc::clone(&plan_a), None);
        assert_eq!(warm.tier, ServedTier::Full);
        // Stall the worker inside its next serve, then overfill the queue
        // while it is busy.
        injector.arm();
        let rx_stalled = service.submit(PredictRequest {
            id: 10,
            plan: Arc::clone(&plan_a),
            deadline_ms: None,
            tenant: TenantId::default(),
        });
        while service.backlog() > 0 {
            std::thread::yield_now(); // worker picked up the stalled job
        }
        let rx_a = service.submit(PredictRequest {
            id: 11,
            plan: Arc::clone(&plan_a),
            deadline_ms: Some(100.0),
            tenant: TenantId::default(),
        });
        let rx_b = service.submit(PredictRequest {
            id: 12,
            plan: Arc::clone(&plan_b),
            deadline_ms: Some(100.0),
            tenant: TenantId::default(),
        });
        // Queue is at capacity [A, B]; another A arrives with a finite
        // profiled priority. B's ∞ priority makes it the victim.
        let rx_a2 = service.submit(PredictRequest {
            id: 13,
            plan: Arc::clone(&plan_a),
            deadline_ms: Some(100.0),
            tenant: TenantId::default(),
        });
        let shed = rx_b
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("the victim is answered on the submitter's thread");
        assert_eq!(shed.id, 12);
        assert_eq!(shed.tier, ServedTier::Shed);
        assert_eq!(shed.decision, Decision::Reject);
        assert!(shed.prob_in_time.is_nan());
        // Every queued request still resolves once the worker unstalls.
        injector.disarm();
        for rx in [rx_stalled, rx_a, rx_a2] {
            let resp = rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("queued requests survive the shed");
            assert_ne!(resp.tier, ServedTier::Shed);
        }
        let stats = service.robustness_stats();
        assert_eq!(stats.shed, 1, "{stats:?}");
        service.shutdown();
    }

    #[test]
    fn telemetry_snapshot_is_coherent_and_round_trips() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let n = 5;
        for i in 0..n {
            let resp = service.predict_blocking(Arc::clone(&plan), None);
            assert_eq!(resp.tier, ServedTier::Full);
            assert!(resp.stage_timings.is_none(), "spans are off by default");
            let _ = i;
        }
        let snap = service.telemetry();
        assert_eq!(snap.counter("uaq_requests_total", &[]), Some(n));
        assert_eq!(
            snap.counter_total("uaq_requests_served_total"),
            n,
            "one tier count per response"
        );
        assert_eq!(
            snap.counter("uaq_requests_served_total", &[("tier", "full")]),
            Some(n)
        );
        // Cache counters live on the same registry: 1 miss + (n-1) hits
        // at the sel level.
        assert_eq!(
            snap.counter(
                "uaq_cache_probes_total",
                &[("cache", "selest"), ("outcome", "hit")]
            ),
            Some(n - 1)
        );
        assert_eq!(snap.gauge("uaq_queue_depth", &[]), Some(0.0));
        assert_eq!(
            snap.gauge("uaq_cache_entries", &[("cache", "selest")]),
            Some(1.0)
        );
        // Both export formats reconstruct the exact snapshot.
        let prom = Snapshot::from_prometheus(&snap.to_prometheus()).expect("parses");
        assert_eq!(prom, snap);
        let json = Snapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(json, snap);
        service.shutdown();
    }

    #[test]
    fn spans_attach_timings_and_fill_stage_histograms() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                record_spans: true,
                ..Default::default()
            },
        );
        let cold = service.predict_blocking(Arc::clone(&plan), None);
        // Recording must not perturb the prediction itself.
        assert_eq!(
            cold.prediction.mean_ms().to_bits(),
            reference.mean_ms().to_bits()
        );
        let t = cold.stage_timings.as_ref().expect("spans on");
        assert!(t.get(Stage::SamplePass) > 0.0, "{t:?}");
        assert!(t.get(Stage::Fit) > 0.0, "{t:?}");
        assert!(t.get(Stage::Total) > 0.0, "{t:?}");
        assert!(t.get(Stage::Total) >= t.get(Stage::SamplePass), "{t:?}");
        let warm = service.predict_blocking(Arc::clone(&plan), None);
        let w = warm.stage_timings.as_ref().expect("spans on");
        assert_eq!(w.get(Stage::SamplePass), 0.0, "sel-cache hit skips it");
        assert!(w.get(Stage::SelCacheProbe) > 0.0, "{w:?}");
        let snap = service.telemetry();
        let hist = snap
            .histogram(
                "uaq_stage_seconds",
                &[("stage", "sample_pass"), ("tier", "full")],
            )
            .expect("populated");
        assert_eq!(hist.count(), 1, "one cold serve ran the sample pass");
        let total = snap
            .histogram("uaq_stage_seconds", &[("stage", "total"), ("tier", "full")])
            .expect("populated");
        assert_eq!(total.count(), 2);
        assert_eq!(
            snap.samples
                .iter()
                .filter(|s| s.name == "uaq_request_seconds")
                .count(),
            1,
            "one shape served → one per-shape series"
        );
        service.shutdown();
    }

    #[test]
    fn stage_histograms_cover_every_served_tier() {
        // Drive the ladder through all four served tiers with spans on and
        // check each one landed its own labeled histogram series.
        let (predictor, catalog, samples, plan) = setup();
        let injector = FireAt::disarmed(FaultSite::Predict, Fault::Panic);
        let spans_on = |cache_enabled| ServiceConfig {
            cache_enabled,
            record_spans: true,
            ..Default::default()
        };
        // Caches on: Full, then (predict panics) CachedEstimates.
        let service = PredictionService::start_with_faults(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            spans_on(true),
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        assert_eq!(
            service.predict_blocking(Arc::clone(&plan), None).tier,
            ServedTier::Full
        );
        injector.arm();
        assert_eq!(
            service.predict_blocking(Arc::clone(&plan), None).tier,
            ServedTier::CachedEstimates
        );
        let snap = service.telemetry();
        for tier in ["full", "cached-estimates"] {
            assert!(
                snap.histogram("uaq_stage_seconds", &[("stage", "total"), ("tier", tier)])
                    .is_some_and(|h| h.count() == 1),
                "missing total histogram for tier {tier}"
            );
        }
        injector.disarm();
        service.shutdown();
        // Caches off: Full, then (predict panics) MeanOnly, then a fresh
        // shape with no profile → Static.
        let injector = FireAt::disarmed(FaultSite::Predict, Fault::Panic);
        let service = PredictionService::start_with_faults(
            predictor,
            catalog,
            samples,
            spans_on(false),
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        assert_eq!(
            service.predict_blocking(Arc::clone(&plan), None).tier,
            ServedTier::Full
        );
        injector.arm();
        let mean_only = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(mean_only.tier, ServedTier::MeanOnly);
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("a", Value::Int(10)));
        let fresh_shape = Arc::new(b.build(t));
        let stat = service.predict_blocking(fresh_shape, None);
        assert_eq!(stat.tier, ServedTier::Static);
        assert!(
            stat.stage_timings.is_some(),
            "ladder-served static tier still carries timings"
        );
        let snap = service.telemetry();
        for tier in ["full", "mean-only", "static"] {
            assert!(
                snap.histogram("uaq_stage_seconds", &[("stage", "total"), ("tier", tier)])
                    .is_some_and(|h| h.count() == 1),
                "missing total histogram for tier {tier}"
            );
        }
        service.shutdown();
    }

    #[test]
    fn compute_budget_preflight_skips_a_shape_known_to_blow_it() {
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                cache_enabled: false,
                // Any real prediction costs more than a nanosecond, so
                // the profile's recorded cost vetoes tier 0 on repeat.
                compute_budget: Some(std::time::Duration::from_nanos(1)),
                ..Default::default()
            },
        );
        let first = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(first.tier, ServedTier::Full, "no profile yet: must try");
        let second = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(
            second.tier,
            ServedTier::MeanOnly,
            "profiled cost over budget: straight to the cheap tier"
        );
        assert_eq!(second.prediction.mean_ms(), first.prediction.mean_ms());
        service.shutdown();
    }

    #[test]
    fn shed_ties_break_on_arrival_seq_at_every_shard_count() {
        // Two queued never-profiled requests share the maximum (infinite)
        // shed priority; the tie must fall to the newest arrival (highest
        // seq) — and because seq is intrinsic to the job, the victim must
        // be the same id no matter how the queue is sharded.
        let (predictor, catalog, samples, plan_a) = setup();
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("a", Value::Int(10)));
        let plan_b = Arc::new(b.build(t));
        for queue_shards in [1usize, 2, 4] {
            let injector = FireAt::disarmed(
                FaultSite::Predict,
                Fault::Delay(std::time::Duration::from_millis(150)),
            );
            let service = PredictionService::start_with_faults(
                predictor.clone(),
                Arc::clone(&catalog),
                Arc::clone(&samples),
                ServiceConfig {
                    workers: 1,
                    queue_shards,
                    queue_capacity: Some(2),
                    shed: ShedPolicy::HighestRelativeVariance,
                    ..Default::default()
                },
                Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
            );
            // Profile plan A so later A-submissions carry a finite priority.
            assert_eq!(
                service.predict_blocking(Arc::clone(&plan_a), None).tier,
                ServedTier::Full
            );
            injector.arm();
            let rx_stalled = service.submit(PredictRequest {
                id: 10,
                plan: Arc::clone(&plan_a),
                deadline_ms: None,
                tenant: TenantId::default(),
            });
            while service.backlog() > 0 {
                std::thread::yield_now();
            }
            // Queue: two B's (both ∞ priority), tie on priority alone.
            let rx_b1 = service.submit(PredictRequest {
                id: 11,
                plan: Arc::clone(&plan_b),
                deadline_ms: Some(100.0),
                tenant: TenantId::default(),
            });
            let rx_b2 = service.submit(PredictRequest {
                id: 12,
                plan: Arc::clone(&plan_b),
                deadline_ms: Some(100.0),
                tenant: TenantId::default(),
            });
            // A finite-priority A arrives at the high-water mark: the
            // victim among the tied ∞ pair is the newest, id 12.
            let rx_a = service.submit(PredictRequest {
                id: 13,
                plan: Arc::clone(&plan_a),
                deadline_ms: Some(100.0),
                tenant: TenantId::default(),
            });
            let shed = rx_b2
                .recv_timeout(std::time::Duration::from_secs(5))
                .expect("victim answered on the submitter's thread");
            assert_eq!(shed.id, 12, "shards={queue_shards}: newest tied job");
            assert_eq!(shed.tier, ServedTier::Shed);
            injector.disarm();
            for rx in [rx_stalled, rx_b1, rx_a] {
                let resp = rx
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .expect("survivors resolve");
                assert_ne!(resp.tier, ServedTier::Shed, "shards={queue_shards}");
            }
            service.shutdown();
        }
    }

    #[test]
    fn tenant_classes_override_policy_and_default_deadline() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let hopeless = (reference.mean_ms() - 10.0 * reference.std_dev_ms()).max(0.0);
        let lenient = TenantId(1);
        let strict = TenantId(2);
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                tenants: vec![
                    (
                        lenient,
                        TenantClass {
                            policy: Some(AdmissionPolicy::mean_only()),
                            ..TenantClass::default()
                        },
                    ),
                    (
                        strict,
                        TenantClass {
                            default_deadline_ms: Some(hopeless),
                            ..TenantClass::default()
                        },
                    ),
                ],
                ..Default::default()
            },
        );
        let ask = |tenant: TenantId, deadline_ms: Option<f64>| {
            let rx = service.submit(PredictRequest {
                id: 0,
                plan: Arc::clone(&plan),
                deadline_ms,
                tenant,
            });
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("served")
        };
        // Anonymous tenant, service-wide θ: the border deadline defers.
        assert_eq!(
            ask(TenantId::default(), Some(border)).decision,
            Decision::Defer
        );
        // Lenient class swaps in mean-only admission: border > mean admits.
        assert_eq!(ask(lenient, Some(border)).decision, Decision::Admit);
        // Strict class fills in a hopeless default deadline when the
        // request carries none; the service-wide θ then rejects it.
        assert_eq!(ask(strict, None).decision, Decision::Reject);
        // The default applies only to deadline-less requests.
        assert_eq!(ask(strict, Some(border)).decision, Decision::Defer);
        // And the anonymous tenant keeps its no-deadline unconditional admit.
        assert_eq!(ask(TenantId::default(), None).decision, Decision::Admit);
        service.shutdown();
    }

    #[test]
    fn weighted_shed_targets_low_weight_tenants_and_counters_sum() {
        let (predictor, catalog, samples, plan) = setup();
        let light = TenantId(9); // quarter-weight: 4× the shedding pressure
        let injector = FireAt::disarmed(
            FaultSite::Predict,
            Fault::Delay(std::time::Duration::from_millis(150)),
        );
        let service = PredictionService::start_with_faults(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                queue_capacity: Some(2),
                shed: ShedPolicy::HighestRelativeVariance,
                tenants: vec![(
                    light,
                    TenantClass {
                        shed_weight: 0.25,
                        ..TenantClass::default()
                    },
                )],
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn crate::fault::FaultInjector>,
        );
        // Profile the shape: every request below carries the same finite
        // relative variance, so only the tenant weights differ.
        assert_eq!(
            service.predict_blocking(Arc::clone(&plan), None).tier,
            ServedTier::Full
        );
        injector.arm();
        let rx_stalled = service.submit(PredictRequest {
            id: 10,
            plan: Arc::clone(&plan),
            deadline_ms: None,
            tenant: TenantId::default(),
        });
        while service.backlog() > 0 {
            std::thread::yield_now();
        }
        let rx_anon = service.submit(PredictRequest {
            id: 11,
            plan: Arc::clone(&plan),
            deadline_ms: Some(100.0),
            tenant: TenantId::default(),
        });
        let rx_light = service.submit(PredictRequest {
            id: 12,
            plan: Arc::clone(&plan),
            deadline_ms: Some(100.0),
            tenant: light,
        });
        // Same shape everywhere: the quarter-weight tenant's job is the
        // one shed when a full-weight request hits the high-water mark.
        let rx_anon2 = service.submit(PredictRequest {
            id: 13,
            plan: Arc::clone(&plan),
            deadline_ms: Some(100.0),
            tenant: TenantId::default(),
        });
        let shed = rx_light
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("low-weight victim answered");
        assert_eq!(shed.id, 12);
        assert_eq!(shed.tier, ServedTier::Shed);
        // Equal weights tie ⇒ the newcomer sheds itself (anonymous tenant).
        let rx_anon3 = service.submit(PredictRequest {
            id: 14,
            plan: Arc::clone(&plan),
            deadline_ms: Some(100.0),
            tenant: TenantId::default(),
        });
        let self_shed = rx_anon3
            .recv_timeout(std::time::Duration::from_secs(5))
            .expect("tied newcomer answered");
        assert_eq!(self_shed.tier, ServedTier::Shed);
        injector.disarm();
        for rx in [rx_stalled, rx_anon, rx_anon2] {
            let resp = rx
                .recv_timeout(std::time::Duration::from_secs(10))
                .expect("queued requests survive");
            assert_ne!(resp.tier, ServedTier::Shed);
        }
        // Per-tenant shed series sum to the total shed count.
        let stats = service.robustness_stats();
        assert_eq!(stats.shed, 2, "{stats:?}");
        let snap = service.telemetry();
        assert_eq!(
            snap.counter("uaq_requests_shed_total", &[("tenant", "9")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("uaq_requests_shed_total", &[("tenant", "0")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_total("uaq_requests_shed_total"),
            stats.shed as u64
        );
        service.shutdown();
    }

    #[test]
    fn hostile_shape_labels_round_trip_through_prometheus() {
        // A table name carrying every character the exposition format
        // must escape (backslash, quote, newline) flows into the shape
        // key, the `uaq_request_seconds{shape}` label, and back out of
        // the text format bit-identically.
        let hostile_table = "e\\v\"i\nl";
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..500)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new(hostile_table, s, rows));
        let mut rng = Rng::new(11);
        let units = calibrate(
            &HardwareProfile::pc1(),
            &CalibrationConfig::default(),
            &mut rng,
        );
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let t = b.seq_scan(hostile_table, Pred::lt("b", Value::Int(100)));
        let plan = Arc::new(b.build(t));
        let catalog = Arc::new(c);
        let shape = Predictor::shape_key(&plan, &catalog);
        assert!(shape.contains(hostile_table), "key embeds the raw name");
        let service = PredictionService::start(
            Predictor::new(units, PredictorConfig::default()),
            Arc::clone(&catalog),
            Arc::new(samples),
            ServiceConfig {
                record_spans: true,
                ..Default::default()
            },
        );
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.tier, ServedTier::Full);
        let snap = service.telemetry();
        let hist = snap
            .histogram("uaq_request_seconds", &[("shape", &shape)])
            .expect("per-shape series recorded under the hostile label");
        assert_eq!(hist.count(), 1);
        let text = snap.to_prometheus();
        assert!(text.contains("\\\\"), "backslash escaped on export");
        assert!(text.contains("\\\""), "quote escaped on export");
        assert!(text.contains("\\n"), "newline escaped on export");
        let round = Snapshot::from_prometheus(&text).expect("parses");
        assert_eq!(round, snap, "hostile labels survive the round trip");
        service.shutdown();
    }

    #[test]
    fn zero_probe_hit_rates_export_as_zero_never_nan() {
        // With caches disabled there are zero probes: the stats-level
        // convention is NaN ("no data"), but the Prometheus gauge clamps
        // to 0.0 so no NaN ever reaches the text exposition.
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                cache_enabled: false,
                ..Default::default()
            },
        );
        let _ = service.predict_blocking(Arc::clone(&plan), None);
        let stats = service.cache_stats();
        assert!(stats.fit_hit_rate().is_nan(), "zero probes: NaN at the API");
        assert!(stats.sel_hit_rate().is_nan());
        let snap = service.telemetry();
        assert_eq!(
            snap.gauge("uaq_cache_hit_rate", &[("cache", "fit")]),
            Some(0.0)
        );
        assert_eq!(
            snap.gauge("uaq_cache_hit_rate", &[("cache", "selest")]),
            Some(0.0)
        );
        assert!(
            !snap.to_prometheus().contains("NaN"),
            "no NaN in the exposition"
        );
        service.shutdown();
    }
}
