//! The prediction service: an MPMC work queue feeding a worker pool that
//! shares one predictor, one catalog, one sample set, and one fit cache.
//!
//! ```text
//!  clients ──submit──▶ WorkQueue ──pop──▶ worker 0..N
//!                                          │  predict_with_cache(plan)
//!                                          │  policy.decide(prediction)
//!                                          ▼
//!                            mpsc reply channel per request
//! ```
//!
//! Every response carries the full [`Prediction`] (the distribution, not
//! just a mean) plus the admission [`Decision`] against the request's
//! deadline. Predictions are pure functions of (plan, catalog, samples,
//! predictor config) and the cache is bit-transparent, so responses are
//! deterministic regardless of worker count, scheduling order, or cache
//! state — the property the integration tests pin down.
//!
//! ## Deferred requests are not a black hole
//!
//! With a [`RetryPolicy`] enabled, a `Defer` verdict no longer terminates
//! the request: the job parks in a deferred queue and is **re-decided on
//! the same reply channel** with its recomputed remaining budget
//! (`deadline − time spent deferred`) every time a worker completes a
//! request (the service's "server freed" event), with an idle tick as a
//! fallback when no traffic flows. Re-decisions are bounded: after
//! `max_retries` consecutive `Defer` outcomes the service closes the
//! request with a final `Reject`, and `shutdown` gives every still-parked
//! request a final verdict — **every submitted request receives exactly
//! one response**. Retried decisions depend on wall-clock elapsed time,
//! so the bit-exact response determinism above holds for the default
//! terminal policy; with retries enabled it holds for every request that
//! is not deferred.
//!
//! One honest limitation: the service's re-decision budget can only
//! *shrink* (the prediction is fixed and the client-quoted deadline
//! drains in wall-clock time), so with today's budget model a deferred
//! request resolves to `Reject` — never `Admit`. The re-decision handles
//! all three verdicts because the protocol is written against
//! [`AdmissionPolicy::decide`]'s full contract: a budget model that can
//! *grow* — e.g. subtracting the service's own backlog from the initial
//! budget the way the deadline scenario's queue-aware admission does
//! ([`AdmissionPolicy::decide_queued`]) — makes defer→admit conversions
//! live here too, at the cost of response determinism (see ROADMAP).
//! What bounded retries buy today is the guarantee itself: a final,
//! observable verdict (`attempts`, `deferred_ms`) instead of a terminal
//! `Defer` the client must re-submit by hand.

use crate::admission::{AdmissionPolicy, Decision};
use crate::cache::{CacheConfig, CacheStats, SharedFitCache, SharedSelEstCache};
use crate::queue::{Popped, WorkQueue};
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use uaq_core::{Prediction, Predictor};
use uaq_cost::{FitCache, NoFitCache, NoSelEstCache, SelEstCache};
use uaq_engine::Plan;
use uaq_storage::{Catalog, SampleCatalog};

/// One prediction request.
#[derive(Clone)]
pub struct PredictRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    pub plan: Arc<Plan>,
    /// Remaining time budget for the deadline SLO, in milliseconds
    /// (deadline minus whatever wait the caller already accounts for).
    /// `None` means no deadline.
    pub deadline_ms: Option<f64>,
}

/// The service's answer to one request.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    pub id: u64,
    pub prediction: Prediction,
    pub decision: Decision,
    /// `Pr(T ≤ deadline)` under the predicted distribution (1.0 when the
    /// request had no deadline). For retried requests this is the
    /// probability at the *final* re-decision, against the recomputed
    /// budget.
    pub prob_in_time: f64,
    /// Which worker served the request (diagnostics).
    pub worker: usize,
    /// Wall-clock seconds from dequeue to decision.
    pub service_seconds: f64,
    /// Number of admission evaluations this response took: 1 = decided at
    /// first sight; >1 = the request sat in the deferred queue and was
    /// re-decided on completion events / idle ticks.
    pub attempts: u32,
    /// Milliseconds spent in the deferred queue (0 when `attempts == 1`).
    pub deferred_ms: f64,
}

/// What the service does with a `Defer` verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of `Defer` re-decisions before the service closes
    /// the request with a final `Reject`. `0` keeps `Defer` as a terminal
    /// response (the pre-retry behaviour, and the default: it is the only
    /// mode whose responses are bit-deterministic, because re-decisions
    /// consume wall-clock budget).
    pub max_retries: u32,
    /// Fallback re-decision cadence when no completion events occur (an
    /// idle pool with parked requests): workers wake on this tick and
    /// re-decide the deferred queue, so a parked request resolves within
    /// roughly `max_retries × idle_tick` even with zero traffic.
    pub idle_tick: Duration,
}

impl RetryPolicy {
    /// `Defer` is a terminal response (the client decides what to do).
    pub fn terminal() -> Self {
        Self {
            max_retries: 0,
            idle_tick: Duration::from_millis(5),
        }
    }

    /// Deferred requests are re-decided up to `max_retries` times on the
    /// same reply channel, then finally rejected.
    pub fn bounded(max_retries: u32) -> Self {
        Self {
            max_retries,
            idle_tick: Duration::from_millis(5),
        }
    }

    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::terminal()
    }
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads. 0 is clamped to 1.
    pub workers: usize,
    pub policy: AdmissionPolicy,
    /// When false, workers predict with [`NoFitCache`] — the A/B switch the
    /// cold-vs-warm benchmarks and golden tests use.
    pub cache_enabled: bool,
    pub cache: CacheConfig,
    /// Deferred-request handling; see [`RetryPolicy`].
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            policy: AdmissionPolicy::default(),
            cache_enabled: true,
            cache: CacheConfig::default(),
            retry: RetryPolicy::default(),
        }
    }
}

struct Job {
    request: PredictRequest,
    reply: mpsc::Sender<PredictResponse>,
}

/// A parked request: decided `Defer`, waiting for a re-decision event.
struct DeferredJob {
    id: u64,
    deadline_ms: f64,
    reply: mpsc::Sender<PredictResponse>,
    prediction: Prediction,
    /// When the deferring decision was made (re-decisions recompute the
    /// budget as `deadline_ms − elapsed since then`).
    parked_at: Instant,
    /// `Defer` re-decisions so far.
    retries: u32,
    service_seconds: f64,
}

struct Shared {
    queue: WorkQueue<Job>,
    predictor: Predictor,
    catalog: Arc<Catalog>,
    samples: Arc<SampleCatalog>,
    cache: SharedFitCache,
    sel_cache: SharedSelEstCache,
    policy: AdmissionPolicy,
    cache_enabled: bool,
    retry: RetryPolicy,
    deferred: Mutex<VecDeque<DeferredJob>>,
}

impl Shared {
    /// Re-decides every parked request once with its recomputed remaining
    /// budget. Called whenever a worker completes a request (the service's
    /// "server freed" event), on the idle tick, and — with `final_pass` —
    /// at shutdown, where a still-deferring request gets a final `Reject`
    /// because no further events can ever resolve it.
    fn redecide_deferred(&self, worker: usize, final_pass: bool) {
        let mut q = self.deferred.lock().expect("deferred lock");
        let parked = q.len();
        for _ in 0..parked {
            let mut d = q.pop_front().expect("len checked");
            let waited_ms = d.parked_at.elapsed().as_secs_f64() * 1e3;
            let budget = d.deadline_ms - waited_ms;
            let (decision, prob) = self.policy.decide(&d.prediction, Some(budget));
            d.retries += 1;
            let exhausted = final_pass || d.retries >= self.retry.max_retries;
            let verdict = match decision {
                Decision::Defer if !exhausted => {
                    q.push_back(d);
                    continue;
                }
                // Out of events (shutdown) or retries: the defer band
                // resolves to rejection, never to silence.
                Decision::Defer => Decision::Reject,
                other => other,
            };
            let _ = d.reply.send(PredictResponse {
                id: d.id,
                prediction: d.prediction,
                decision: verdict,
                prob_in_time: prob,
                worker,
                service_seconds: d.service_seconds,
                attempts: d.retries + 1,
                deferred_ms: waited_ms,
            });
        }
    }

    fn has_deferred(&self) -> bool {
        !self.deferred.lock().expect("deferred lock").is_empty()
    }
}

/// A running prediction service. Dropping it (or calling
/// [`PredictionService::shutdown`]) closes the queue, drains pending
/// requests, and joins the workers.
pub struct PredictionService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PredictionService {
    /// Starts the worker pool.
    pub fn start(
        predictor: Predictor,
        catalog: Arc<Catalog>,
        samples: Arc<SampleCatalog>,
        config: ServiceConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: WorkQueue::new(),
            predictor,
            catalog,
            samples,
            cache: SharedFitCache::new(config.cache),
            sel_cache: SharedSelEstCache::new(config.cache.max_sel_entries, config.cache.eviction),
            policy: config.policy,
            cache_enabled: config.cache_enabled,
            retry: config.retry,
            deferred: Mutex::new(VecDeque::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("uaq-service-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues a request; the response arrives on the returned channel.
    ///
    /// Contract: every request accepted before shutdown receives exactly
    /// one response (deferred requests included — they are re-decided and
    /// finally resolved at shutdown). Once shutdown has begun the queue is
    /// closed: the request is dropped together with its reply sender, so
    /// the returned receiver's `recv()` fails immediately with
    /// `RecvError` instead of blocking — submitting after shutdown never
    /// hangs and never panics.
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<PredictResponse> {
        let (reply, rx) = mpsc::channel();
        // On a closed queue the job (and its reply sender) is dropped,
        // disconnecting `rx` right away.
        let _ = self.shared.queue.push(Job { request, reply });
        rx
    }

    /// Convenience: submit and block for the response.
    pub fn predict_blocking(&self, plan: Arc<Plan>, deadline_ms: Option<f64>) -> PredictResponse {
        self.submit(PredictRequest {
            id: 0,
            plan,
            deadline_ms,
        })
        .recv()
        .expect("service workers alive")
    }

    /// Snapshot of both shared caches' hit/miss counters: the fit cache's
    /// fields plus the selectivity-estimate cache's `sel_*` fields.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.shared.cache.stats();
        let sel = self.shared.sel_cache.stats();
        stats.sel_hits = sel.hits;
        stats.sel_misses = sel.misses;
        stats.sel_entries = sel.entries;
        stats.sel_evictions = sel.evictions;
        stats
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn backlog(&self) -> usize {
        self.shared.queue.len()
    }

    /// Requests currently parked in the deferred queue awaiting a
    /// re-decision (0 unless a [`RetryPolicy`] is enabled).
    pub fn deferred_backlog(&self) -> usize {
        self.shared.deferred.lock().expect("deferred lock").len()
    }

    /// Closes the queue, drains pending requests, joins the workers, and
    /// gives every still-deferred request a final verdict.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Workers are gone: no further completion events or ticks can
        // resolve a parked request, so re-decide each one final time
        // (still-deferring ⇒ Reject — never silence).
        self.shared.redecide_deferred(usize::MAX, true);
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    loop {
        // Bound the wait only while requests are parked: the tick is the
        // fallback re-decision event for a quiet pool.
        let timeout =
            (shared.retry.enabled() && shared.has_deferred()).then_some(shared.retry.idle_tick);
        match shared.queue.pop_timeout(timeout) {
            Popped::Item(job) => {
                let completed = serve_job(shared, worker, job);
                if completed {
                    // A completed request is the service's "server freed"
                    // event: offer the parked requests a re-decision.
                    shared.redecide_deferred(worker, false);
                }
            }
            Popped::TimedOut => shared.redecide_deferred(worker, false),
            Popped::Closed => break,
        }
    }
}

/// Serves one request. Returns `false` when the request was parked in the
/// deferred queue (no response yet), `true` when a response was sent.
fn serve_job(shared: &Shared, worker: usize, job: Job) -> bool {
    let t0 = Instant::now();
    let (fit_cache, sel_cache): (&dyn FitCache, &dyn SelEstCache) = if shared.cache_enabled {
        (&shared.cache, &shared.sel_cache)
    } else {
        (&NoFitCache, &NoSelEstCache)
    };
    let prediction = shared.predictor.predict_with_caches(
        &job.request.plan,
        &shared.catalog,
        &shared.samples,
        fit_cache,
        sel_cache,
    );
    let (decision, prob_in_time) = shared.policy.decide(&prediction, job.request.deadline_ms);
    if decision == Decision::Defer && shared.retry.enabled() {
        if let Some(deadline_ms) = job.request.deadline_ms {
            shared
                .deferred
                .lock()
                .expect("deferred lock")
                .push_back(DeferredJob {
                    id: job.request.id,
                    deadline_ms,
                    reply: job.reply,
                    prediction,
                    parked_at: Instant::now(),
                    retries: 0,
                    service_seconds: t0.elapsed().as_secs_f64(),
                });
            return false;
        }
    }
    // A dropped receiver just means the client stopped waiting; the
    // worker moves on.
    let _ = job.reply.send(PredictResponse {
        id: job.request.id,
        prediction,
        decision,
        prob_in_time,
        worker,
        service_seconds: t0.elapsed().as_secs_f64(),
        attempts: 1,
        deferred_ms: 0.0,
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_core::PredictorConfig;
    use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
    use uaq_engine::{PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table, Value};

    fn setup() -> (Predictor, Arc<Catalog>, Arc<SampleCatalog>, Arc<Plan>) {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..4000)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let mut rng = Rng::new(11);
        let units = calibrate(
            &HardwareProfile::pc1(),
            &CalibrationConfig::default(),
            &mut rng,
        );
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(2000)));
        let plan = b.build(t);
        (
            Predictor::new(units, PredictorConfig::default()),
            Arc::new(c),
            Arc::new(samples),
            Arc::new(plan),
        )
    }

    #[test]
    fn predict_blocking_round_trips() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.decision, Decision::Admit);
        assert_eq!(resp.prob_in_time, 1.0);
        assert_eq!(resp.prediction.mean_ms(), reference.mean_ms());
        assert_eq!(resp.prediction.var(), reference.var());
        service.shutdown();
    }

    #[test]
    fn warm_cache_hits_on_repeat() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let first = service.predict_blocking(Arc::clone(&plan), None);
        let second = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(first.prediction.mean_ms(), second.prediction.mean_ms());
        assert_eq!(first.prediction.var(), second.prediction.var());
        let stats = service.cache_stats();
        assert_eq!(stats.fit_hits, 1, "{stats:?}");
        assert_eq!(stats.fit_misses, 1, "{stats:?}");
        // The repeat also skipped the sample pass entirely.
        assert_eq!(stats.sel_hits, 1, "{stats:?}");
        assert_eq!(stats.sel_misses, 1, "{stats:?}");
        assert!(first.prediction.sample_pass_seconds > 0.0);
        assert_eq!(second.prediction.sample_pass_seconds, 0.0);
        service.shutdown();
    }

    #[test]
    fn cache_disabled_still_serves() {
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                cache_enabled: false,
                ..Default::default()
            },
        );
        let a = service.predict_blocking(Arc::clone(&plan), None);
        let b = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(a.prediction.mean_ms(), b.prediction.mean_ms());
        let stats = service.cache_stats();
        assert_eq!(stats.fit_hits + stats.fit_misses, 0, "{stats:?}");
        assert_eq!(stats.sel_hits + stats.sel_misses, 0, "{stats:?}");
        service.shutdown();
    }

    #[test]
    fn deadline_thresholds_produce_all_decisions() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let generous = reference.mean_ms() + 10.0 * reference.std_dev_ms();
        let hopeless = (reference.mean_ms() - 10.0 * reference.std_dev_ms()).max(0.0);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(generous))
                .decision,
            Decision::Admit
        );
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(hopeless))
                .decision,
            Decision::Reject
        );
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(border))
                .decision,
            Decision::Defer
        );
        service.shutdown();
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 0,
                ..Default::default()
            },
        );
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.decision, Decision::Admit);
        service.shutdown();
    }

    #[test]
    fn negative_budget_rejects_with_zero_probability() {
        let (predictor, catalog, samples, plan) = setup();
        for policy in [
            AdmissionPolicy::uncertainty_aware(0.9),
            AdmissionPolicy::mean_only(),
        ] {
            let service = PredictionService::start(
                predictor.clone(),
                Arc::clone(&catalog),
                Arc::clone(&samples),
                ServiceConfig {
                    policy,
                    ..Default::default()
                },
            );
            let resp = service.predict_blocking(Arc::clone(&plan), Some(-10.0));
            assert_eq!(resp.decision, Decision::Reject);
            assert_eq!(resp.prob_in_time, 0.0);
            service.shutdown();
        }
    }

    #[test]
    fn submit_after_shutdown_fails_fast_without_panicking() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        // Simulate the shutdown race: the queue closes while a client
        // still holds a handle (e.g. another thread called shutdown).
        service.shared.queue.close();
        let rx = service.submit(PredictRequest {
            id: 99,
            plan: Arc::clone(&plan),
            deadline_ms: None,
        });
        // The request was dropped with its reply sender: recv fails
        // immediately instead of blocking forever.
        assert!(rx.recv().is_err(), "no response can ever arrive");
    }

    #[test]
    fn deferred_request_is_redecided_on_completion_events() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                retry: RetryPolicy::bounded(3),
                ..Default::default()
            },
        );
        // The border request defers and parks; follow-up no-deadline
        // requests complete and each completion re-decides it. The budget
        // only shrinks (elapsed wall-clock), so the defer band drains to
        // a final Reject on the same reply channel — never silence, never
        // a terminal Defer.
        let rx = service.submit(PredictRequest {
            id: 7,
            plan: Arc::clone(&plan),
            deadline_ms: Some(border),
        });
        for i in 0..8 {
            let _ = service
                .submit(PredictRequest {
                    id: 100 + i,
                    plan: Arc::clone(&plan),
                    deadline_ms: None,
                })
                .recv()
                .expect("worker alive");
        }
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("deferred request must resolve via completion events or ticks");
        assert_eq!(resp.id, 7);
        assert_ne!(resp.decision, Decision::Defer, "defer is not terminal");
        assert_eq!(resp.decision, Decision::Reject);
        assert!(resp.attempts > 1, "went through the retry queue");
        assert!(resp.attempts <= 4, "initial decision + at most 3 retries");
        assert!(resp.deferred_ms >= 0.0);
        assert_eq!(service.deferred_backlog(), 0);
        service.shutdown();
    }

    #[test]
    fn idle_tick_resolves_a_lone_deferred_request() {
        // No follow-up traffic at all: the fallback tick must still
        // resolve the parked request (bounded retries ⇒ final Reject)
        // without waiting for shutdown.
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 2,
                retry: RetryPolicy {
                    max_retries: 2,
                    idle_tick: std::time::Duration::from_millis(2),
                },
                ..Default::default()
            },
        );
        let rx = service.submit(PredictRequest {
            id: 1,
            plan: Arc::clone(&plan),
            deadline_ms: Some(border),
        });
        let resp = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("resolved by idle ticks");
        assert_eq!(resp.decision, Decision::Reject);
        assert!(resp.attempts > 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_gives_parked_requests_a_final_verdict() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                workers: 1,
                // A huge retry budget and a long tick: only the shutdown
                // pass can resolve the request within the test's patience.
                retry: RetryPolicy {
                    max_retries: u32::MAX,
                    idle_tick: std::time::Duration::from_secs(3600),
                },
                ..Default::default()
            },
        );
        let rx = service.submit(PredictRequest {
            id: 3,
            plan: Arc::clone(&plan),
            deadline_ms: Some(border),
        });
        // Give the worker a moment to park it, then shut down.
        while service.backlog() > 0 {
            std::thread::yield_now();
        }
        service.shutdown();
        let resp = rx.recv().expect("shutdown resolves parked requests");
        assert_eq!(resp.decision, Decision::Reject);
        assert!(resp.attempts > 1);
    }

    #[test]
    fn terminal_policy_keeps_defer_as_a_terminal_response() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig::default(), // retry: RetryPolicy::terminal()
        );
        let resp = service.predict_blocking(Arc::clone(&plan), Some(border));
        assert_eq!(resp.decision, Decision::Defer);
        assert_eq!(resp.attempts, 1);
        assert_eq!(resp.deferred_ms, 0.0);
        service.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly_with_pending_work() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        // Fire-and-forget a burst; drop the receivers immediately.
        for i in 0..32 {
            let _ = service.submit(PredictRequest {
                id: i,
                plan: Arc::clone(&plan),
                deadline_ms: None,
            });
        }
        drop(service); // must drain + join without deadlock or panic
    }
}
