//! The prediction service: an MPMC work queue feeding a worker pool that
//! shares one predictor, one catalog, one sample set, and one fit cache.
//!
//! ```text
//!  clients ──submit──▶ WorkQueue ──pop──▶ worker 0..N
//!                                          │  predict_with_cache(plan)
//!                                          │  policy.decide(prediction)
//!                                          ▼
//!                            mpsc reply channel per request
//! ```
//!
//! Every response carries the full [`Prediction`] (the distribution, not
//! just a mean) plus the admission [`Decision`] against the request's
//! deadline. Predictions are pure functions of (plan, catalog, samples,
//! predictor config) and the cache is bit-transparent, so responses are
//! deterministic regardless of worker count, scheduling order, or cache
//! state — the property the integration tests pin down.

use crate::admission::{AdmissionPolicy, Decision};
use crate::cache::{CacheConfig, CacheStats, SharedFitCache, SharedSelEstCache};
use crate::queue::WorkQueue;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;
use uaq_core::{Prediction, Predictor};
use uaq_cost::{FitCache, NoFitCache, NoSelEstCache, SelEstCache};
use uaq_engine::Plan;
use uaq_storage::{Catalog, SampleCatalog};

/// One prediction request.
#[derive(Clone)]
pub struct PredictRequest {
    /// Caller-chosen id, echoed in the response.
    pub id: u64,
    pub plan: Arc<Plan>,
    /// Remaining time budget for the deadline SLO, in milliseconds
    /// (deadline minus whatever wait the caller already accounts for).
    /// `None` means no deadline.
    pub deadline_ms: Option<f64>,
}

/// The service's answer to one request.
#[derive(Debug, Clone)]
pub struct PredictResponse {
    pub id: u64,
    pub prediction: Prediction,
    pub decision: Decision,
    /// `Pr(T ≤ deadline)` under the predicted distribution (1.0 when the
    /// request had no deadline).
    pub prob_in_time: f64,
    /// Which worker served the request (diagnostics).
    pub worker: usize,
    /// Wall-clock seconds from dequeue to decision.
    pub service_seconds: f64,
}

/// Service configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Worker threads. 0 is clamped to 1.
    pub workers: usize,
    pub policy: AdmissionPolicy,
    /// When false, workers predict with [`NoFitCache`] — the A/B switch the
    /// cold-vs-warm benchmarks and golden tests use.
    pub cache_enabled: bool,
    pub cache: CacheConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            policy: AdmissionPolicy::default(),
            cache_enabled: true,
            cache: CacheConfig::default(),
        }
    }
}

struct Job {
    request: PredictRequest,
    reply: mpsc::Sender<PredictResponse>,
}

struct Shared {
    queue: WorkQueue<Job>,
    predictor: Predictor,
    catalog: Arc<Catalog>,
    samples: Arc<SampleCatalog>,
    cache: SharedFitCache,
    sel_cache: SharedSelEstCache,
    policy: AdmissionPolicy,
    cache_enabled: bool,
}

/// A running prediction service. Dropping it (or calling
/// [`PredictionService::shutdown`]) closes the queue, drains pending
/// requests, and joins the workers.
pub struct PredictionService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl PredictionService {
    /// Starts the worker pool.
    pub fn start(
        predictor: Predictor,
        catalog: Arc<Catalog>,
        samples: Arc<SampleCatalog>,
        config: ServiceConfig,
    ) -> Self {
        let shared = Arc::new(Shared {
            queue: WorkQueue::new(),
            predictor,
            catalog,
            samples,
            cache: SharedFitCache::new(config.cache),
            sel_cache: SharedSelEstCache::new(config.cache.max_sel_entries, config.cache.eviction),
            policy: config.policy,
            cache_enabled: config.cache_enabled,
        });
        let workers = (0..config.workers.max(1))
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("uaq-service-{worker}"))
                    .spawn(move || worker_loop(&shared, worker))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Enqueues a request; the response arrives on the returned channel.
    /// Panics if called after shutdown (the only way to lose the reply).
    pub fn submit(&self, request: PredictRequest) -> mpsc::Receiver<PredictResponse> {
        let (reply, rx) = mpsc::channel();
        let accepted = self.shared.queue.push(Job { request, reply });
        assert!(accepted, "submit after shutdown");
        rx
    }

    /// Convenience: submit and block for the response.
    pub fn predict_blocking(&self, plan: Arc<Plan>, deadline_ms: Option<f64>) -> PredictResponse {
        self.submit(PredictRequest {
            id: 0,
            plan,
            deadline_ms,
        })
        .recv()
        .expect("service workers alive")
    }

    /// Snapshot of both shared caches' hit/miss counters: the fit cache's
    /// fields plus the selectivity-estimate cache's `sel_*` fields.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.shared.cache.stats();
        let sel = self.shared.sel_cache.stats();
        stats.sel_hits = sel.hits;
        stats.sel_misses = sel.misses;
        stats.sel_entries = sel.entries;
        stats.sel_evictions = sel.evictions;
        stats
    }

    /// Requests currently queued (not yet picked up by a worker).
    pub fn backlog(&self) -> usize {
        self.shared.queue.len()
    }

    /// Closes the queue, drains pending requests, joins the workers.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for PredictionService {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(job) = shared.queue.pop() {
        let t0 = Instant::now();
        let (fit_cache, sel_cache): (&dyn FitCache, &dyn SelEstCache) = if shared.cache_enabled {
            (&shared.cache, &shared.sel_cache)
        } else {
            (&NoFitCache, &NoSelEstCache)
        };
        let prediction = shared.predictor.predict_with_caches(
            &job.request.plan,
            &shared.catalog,
            &shared.samples,
            fit_cache,
            sel_cache,
        );
        let (decision, prob_in_time) = shared.policy.decide(&prediction, job.request.deadline_ms);
        // A dropped receiver just means the client stopped waiting; the
        // worker moves on.
        let _ = job.reply.send(PredictResponse {
            id: job.request.id,
            prediction,
            decision,
            prob_in_time,
            worker,
            service_seconds: t0.elapsed().as_secs_f64(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_core::PredictorConfig;
    use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
    use uaq_engine::{PlanBuilder, Pred};
    use uaq_stats::Rng;
    use uaq_storage::{Column, Schema, Table, Value};

    fn setup() -> (Predictor, Arc<Catalog>, Arc<SampleCatalog>, Arc<Plan>) {
        let mut c = Catalog::new();
        let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
        let rows = (0..4000)
            .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
            .collect();
        c.add_table(Table::new("t", s, rows));
        let mut rng = Rng::new(11);
        let units = calibrate(
            &HardwareProfile::pc1(),
            &CalibrationConfig::default(),
            &mut rng,
        );
        let samples = c.draw_samples(0.1, 1, &mut rng);
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(2000)));
        let plan = b.build(t);
        (
            Predictor::new(units, PredictorConfig::default()),
            Arc::new(c),
            Arc::new(samples),
            Arc::new(plan),
        )
    }

    #[test]
    fn predict_blocking_round_trips() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let resp = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(resp.decision, Decision::Admit);
        assert_eq!(resp.prob_in_time, 1.0);
        assert_eq!(resp.prediction.mean_ms(), reference.mean_ms());
        assert_eq!(resp.prediction.var(), reference.var());
        service.shutdown();
    }

    #[test]
    fn warm_cache_hits_on_repeat() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let first = service.predict_blocking(Arc::clone(&plan), None);
        let second = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(first.prediction.mean_ms(), second.prediction.mean_ms());
        assert_eq!(first.prediction.var(), second.prediction.var());
        let stats = service.cache_stats();
        assert_eq!(stats.fit_hits, 1, "{stats:?}");
        assert_eq!(stats.fit_misses, 1, "{stats:?}");
        // The repeat also skipped the sample pass entirely.
        assert_eq!(stats.sel_hits, 1, "{stats:?}");
        assert_eq!(stats.sel_misses, 1, "{stats:?}");
        assert!(first.prediction.sample_pass_seconds > 0.0);
        assert_eq!(second.prediction.sample_pass_seconds, 0.0);
        service.shutdown();
    }

    #[test]
    fn cache_disabled_still_serves() {
        let (predictor, catalog, samples, plan) = setup();
        let service = PredictionService::start(
            predictor,
            catalog,
            samples,
            ServiceConfig {
                cache_enabled: false,
                ..Default::default()
            },
        );
        let a = service.predict_blocking(Arc::clone(&plan), None);
        let b = service.predict_blocking(Arc::clone(&plan), None);
        assert_eq!(a.prediction.mean_ms(), b.prediction.mean_ms());
        let stats = service.cache_stats();
        assert_eq!(stats.fit_hits + stats.fit_misses, 0, "{stats:?}");
        assert_eq!(stats.sel_hits + stats.sel_misses, 0, "{stats:?}");
        service.shutdown();
    }

    #[test]
    fn deadline_thresholds_produce_all_decisions() {
        let (predictor, catalog, samples, plan) = setup();
        let reference = predictor.predict(&plan, &catalog, &samples);
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        let generous = reference.mean_ms() + 10.0 * reference.std_dev_ms();
        let hopeless = (reference.mean_ms() - 10.0 * reference.std_dev_ms()).max(0.0);
        let border = reference.mean_ms() + 0.5 * reference.std_dev_ms();
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(generous))
                .decision,
            Decision::Admit
        );
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(hopeless))
                .decision,
            Decision::Reject
        );
        assert_eq!(
            service
                .predict_blocking(Arc::clone(&plan), Some(border))
                .decision,
            Decision::Defer
        );
        service.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly_with_pending_work() {
        let (predictor, catalog, samples, plan) = setup();
        let service =
            PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
        // Fire-and-forget a burst; drop the receivers immediately.
        for i in 0..32 {
            let _ = service.submit(PredictRequest {
                id: i,
                plan: Arc::clone(&plan),
                deadline_ms: None,
            });
        }
        drop(service); // must drain + join without deadlock or panic
    }
}
