//! Deterministic fault injection for the serving layer.
//!
//! A [`FaultInjector`] is consulted at fixed probe points of the serving
//! path (the [`FaultSite`]s) and may answer with a [`Fault`] to apply
//! right there: a panic, artificial latency, or a forced cache miss. The
//! production service runs with [`NoFaults`] — every probe is a single
//! inlined `bool` check — while the chaos test suite threads a
//! [`SeededFaultInjector`] through [`PredictionService::start_with_faults`]
//! (and the engine's test-only sample-pass hook) to prove the supervision
//! invariants under hundreds of seeded fault schedules:
//!
//! * **no lost or duplicate responses** — every accepted request gets
//!   exactly one response, even when the worker serving it is killed
//!   mid-request;
//! * **no deadlocked shutdown** — `shutdown` completes while faults fire;
//! * **bit-transparency survives recovery** — after the injector is
//!   disarmed, warm cached predictions are bit-identical to uncached ones
//!   (poisoned cache locks recover by invalidating, never by serving
//!   suspect state).
//!
//! The schedule is *seeded*, not scripted: each probe draws from a
//! counter-indexed splitmix64 stream, so a given seed reproduces the same
//! fault density and mix while thread interleaving chooses which request
//! each fault lands on. The invariants above are interleaving-independent
//! by design, which is exactly what makes them worth asserting.
//!
//! [`PredictionService::start_with_faults`]: crate::PredictionService::start_with_faults

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Marker carried by every injected panic's message; the chaos suites use
/// it to keep deliberate panics out of test output (see
/// [`silence_injected_panics`]) without hiding genuine failures.
pub const INJECTED_PANIC: &str = "injected fault";

/// Where in the serving path a fault probe fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Top of a worker's loop iteration, between requests. A `Panic` here
    /// is a worker kill (respawned by supervision); a `Delay` is a worker
    /// stall.
    WorkerLoop,
    /// Immediately before the full prediction pipeline runs for a
    /// request. Caught by the degradation ladder's tier-0 `catch_unwind`.
    Predict,
    /// Inside the engine's sample-pass execution (via the test-only
    /// thread-local hook each worker installs). Also caught by tier 0.
    SamplePass,
    /// After the prediction, while the worker still holds the request —
    /// a `Panic` here escapes the ladder and exercises the outer
    /// supervision path: response-on-panic plus worker respawn.
    MidRequest,
    /// Inside a fit-cache probe, with the cache lock held. A `Panic`
    /// poisons the lock (recovered by invalidation); a `ProbeMiss` forces
    /// the probe to miss.
    FitCacheProbe,
    /// Inside a selectivity-estimate-cache probe, with the lock held.
    SelCacheProbe,
}

/// The fault to apply at a probe point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the probe point (message tagged [`INJECTED_PANIC`]).
    Panic,
    /// Sleep for the given duration before continuing.
    Delay(Duration),
    /// Cache-probe sites only: report a miss regardless of contents.
    ProbeMiss,
}

/// A fault source consulted at every [`FaultSite`] probe. `worker` is the
/// consulting worker's id (`usize::MAX` from inside the shared caches,
/// which have no worker context).
pub trait FaultInjector: Send + Sync {
    fn inject(&self, site: FaultSite, worker: usize) -> Option<Fault>;

    /// `false` lets the service skip probe plumbing entirely (the
    /// engine-hook install and per-iteration checks); [`NoFaults`]
    /// overrides this so the production path pays one branch per probe.
    fn active(&self) -> bool {
        true
    }
}

/// The production injector: never faults.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn inject(&self, _site: FaultSite, _worker: usize) -> Option<Fault> {
        None
    }

    fn active(&self) -> bool {
        false
    }
}

/// Per-probe fault probabilities, in permille (0..=1000), per site. The
/// default plan injects nothing; [`FaultPlan::chaos`] is the moderate mix
/// the seeded chaos suite runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// `Panic` at [`FaultSite::Predict`] (caught by the ladder).
    pub predict_panic: u16,
    /// `Delay` at [`FaultSite::Predict`] (artificial prediction latency).
    pub predict_delay: u16,
    /// `Panic` inside the engine sample pass ([`FaultSite::SamplePass`]).
    pub sample_pass_panic: u16,
    /// `Panic` inside a cache probe (poisons the cache lock).
    pub cache_panic: u16,
    /// Forced miss on a cache probe ([`Fault::ProbeMiss`]).
    pub cache_miss: u16,
    /// Worker kill at the loop top ([`FaultSite::WorkerLoop`] `Panic`).
    pub worker_kill: u16,
    /// Worker stall at the loop top ([`FaultSite::WorkerLoop`] `Delay`).
    pub worker_stall: u16,
    /// Mid-request kill ([`FaultSite::MidRequest`] `Panic` — escapes the
    /// ladder, exercising response-on-panic + respawn).
    pub mid_request_kill: u16,
    /// Length of every injected `Delay`.
    pub delay: Duration,
}

impl FaultPlan {
    /// Injects nothing (every rate zero).
    pub fn none() -> Self {
        Self {
            predict_panic: 0,
            predict_delay: 0,
            sample_pass_panic: 0,
            cache_panic: 0,
            cache_miss: 0,
            worker_kill: 0,
            worker_stall: 0,
            mid_request_kill: 0,
            delay: Duration::from_millis(1),
        }
    }

    /// The chaos suite's moderate mix: every fault kind fires with a few
    /// percent probability per probe, with short injected delays so a
    /// schedule of hundreds of requests stays fast.
    pub fn chaos() -> Self {
        Self {
            predict_panic: 40,
            predict_delay: 30,
            sample_pass_panic: 30,
            cache_panic: 25,
            cache_miss: 40,
            worker_kill: 15,
            worker_stall: 10,
            mid_request_kill: 20,
            delay: Duration::from_millis(1),
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A seeded, deterministic fault schedule: probe `n` at site `s` draws
/// `splitmix64(seed ⊕ h(n, s))` and maps it to the [`FaultPlan`]'s rates.
/// The stream is lock-free (one shared atomic counter) and can be
/// [`disarm`](Self::disarm)ed, which the chaos tests use to check
/// post-fault recovery on a now-healthy service.
pub struct SeededFaultInjector {
    seed: u64,
    plan: FaultPlan,
    probes: AtomicU64,
    injected: AtomicU64,
    armed: AtomicBool,
}

impl SeededFaultInjector {
    pub fn new(seed: u64, plan: FaultPlan) -> Self {
        Self {
            seed,
            plan,
            probes: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            armed: AtomicBool::new(true),
        }
    }

    /// Stops injecting (probes still count). Used by the chaos tests to
    /// enter the post-fault recovery phase.
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Resumes injecting after a [`disarm`](Self::disarm).
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Faults injected so far (schedules that fire nothing prove nothing).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Probes consulted so far.
    pub fn probes(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

impl FaultInjector for SeededFaultInjector {
    fn inject(&self, site: FaultSite, _worker: usize) -> Option<Fault> {
        let n = self.probes.fetch_add(1, Ordering::Relaxed);
        if !self.armed.load(Ordering::Relaxed) {
            return None;
        }
        let h =
            splitmix64(self.seed ^ n.wrapping_mul(0xA24B_AED4_963E_E407) ^ ((site as u64) << 56));
        let roll = (h % 1000) as u16;
        let p = &self.plan;
        // Within a site, fault kinds occupy disjoint bands of the roll.
        let fault = match site {
            FaultSite::WorkerLoop => in_bands(
                roll,
                &[
                    (p.worker_kill, Fault::Panic),
                    (p.worker_stall, Fault::Delay(p.delay)),
                ],
            ),
            FaultSite::Predict => in_bands(
                roll,
                &[
                    (p.predict_panic, Fault::Panic),
                    (p.predict_delay, Fault::Delay(p.delay)),
                ],
            ),
            FaultSite::SamplePass => in_bands(roll, &[(p.sample_pass_panic, Fault::Panic)]),
            FaultSite::MidRequest => in_bands(roll, &[(p.mid_request_kill, Fault::Panic)]),
            FaultSite::FitCacheProbe | FaultSite::SelCacheProbe => in_bands(
                roll,
                &[
                    (p.cache_panic, Fault::Panic),
                    (p.cache_miss, Fault::ProbeMiss),
                ],
            ),
        };
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

fn in_bands(roll: u16, bands: &[(u16, Fault)]) -> Option<Fault> {
    let mut lo = 0u16;
    for &(width, fault) in bands {
        if roll < lo + width {
            return Some(fault);
        }
        lo += width;
    }
    None
}

/// Applies an injected fault at a non-cache probe point: panics (tagged
/// [`INJECTED_PANIC`]) or sleeps. Used by the service's worker loop and
/// ladder; cache probes interpret [`Fault::ProbeMiss`] themselves.
pub(crate) fn apply(fault: Fault, site: FaultSite) {
    match fault {
        Fault::Panic => panic!("{INJECTED_PANIC}: {site:?}"),
        Fault::Delay(d) => std::thread::sleep(d),
        Fault::ProbeMiss => {}
    }
}

/// Installs a process-wide panic hook that suppresses the backtrace spam
/// of *injected* panics (message tagged [`INJECTED_PANIC`]) while leaving
/// every other panic's report intact. Chaos suites inject hundreds of
/// deliberate panics; without this, their output drowns real failures.
/// Idempotent in effect (re-installation just re-wraps the current hook).
pub fn silence_injected_panics() {
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message_is_injected = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .is_some_and(|m| m.contains(INJECTED_PANIC));
        if !message_is_injected {
            previous(info);
        }
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_inactive_and_never_fires() {
        assert!(!NoFaults.active());
        for site in [
            FaultSite::WorkerLoop,
            FaultSite::Predict,
            FaultSite::MidRequest,
        ] {
            assert_eq!(NoFaults.inject(site, 0), None);
        }
    }

    #[test]
    fn seeded_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| -> Vec<Option<Fault>> {
            let inj = SeededFaultInjector::new(seed, FaultPlan::chaos());
            (0..500)
                .map(|_| inj.inject(FaultSite::Predict, 0))
                .collect()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seeds diverge");
    }

    #[test]
    fn chaos_plan_fires_every_fault_kind() {
        let inj = SeededFaultInjector::new(7, FaultPlan::chaos());
        let mut saw_panic = [false; 3];
        let mut saw_delay = false;
        let mut saw_miss = false;
        for _ in 0..4000 {
            for (i, site) in [
                FaultSite::WorkerLoop,
                FaultSite::Predict,
                FaultSite::MidRequest,
            ]
            .into_iter()
            .enumerate()
            {
                match inj.inject(site, 0) {
                    Some(Fault::Panic) => saw_panic[i] = true,
                    Some(Fault::Delay(_)) => saw_delay = true,
                    _ => {}
                }
            }
            if inj.inject(FaultSite::SelCacheProbe, usize::MAX) == Some(Fault::ProbeMiss) {
                saw_miss = true;
            }
        }
        assert!(saw_panic.iter().all(|&s| s), "kills at every panic site");
        assert!(saw_delay && saw_miss);
        assert!(inj.injected() > 0);
        assert!(inj.probes() >= inj.injected());
    }

    #[test]
    fn disarm_stops_injection_and_arm_resumes_it() {
        let inj = SeededFaultInjector::new(1, FaultPlan::chaos());
        inj.disarm();
        for _ in 0..2000 {
            assert_eq!(inj.inject(FaultSite::Predict, 0), None);
        }
        assert_eq!(inj.injected(), 0);
        inj.arm();
        let fired = (0..2000)
            .filter(|_| inj.inject(FaultSite::Predict, 0).is_some())
            .count();
        assert!(fired > 0, "re-armed injector fires again");
    }

    #[test]
    fn empty_plan_never_fires() {
        let inj = SeededFaultInjector::new(9, FaultPlan::none());
        for _ in 0..2000 {
            assert_eq!(inj.inject(FaultSite::WorkerLoop, 0), None);
        }
    }
}
