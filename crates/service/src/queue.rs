//! A blocking MPMC work queue on `Mutex<VecDeque>` + `Condvar`.
//!
//! Std-only by constraint (the container has no crates.io access) and by
//! sufficiency: the unit of work behind each pop is a full prediction —
//! sample-pass execution plus fitting — which is microseconds to
//! milliseconds, so a single well-held lock around the deque is nowhere
//! near contention. Lock-free MPMC would buy nothing here.
//!
//! The queue is poison-tolerant (a consumer that panics mid-pop must not
//! take the whole service down — see [`crate::sync`]) and optionally
//! bounded: [`WorkQueue::bounded`] plus [`WorkQueue::push_bounded`] give
//! the service's overload control a high-water mark at which it can shed
//! a *chosen* queued item instead of growing without bound.

use crate::sync::lock_recover;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Outcome of a [`WorkQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// The next queued item.
    Item(T),
    /// The timeout elapsed with the queue still open and empty.
    TimedOut,
    /// The queue is closed and drained: the consumer should exit.
    Closed,
}

/// Outcome of a [`WorkQueue::push_bounded`] against a capacity-limited
/// queue. The non-`Queued` variants hand the displaced item back to the
/// caller, who owes it a response.
#[derive(Debug, PartialEq, Eq)]
pub enum Pushed<T> {
    /// The item was enqueued (possibly after shedding an older item —
    /// that case is reported as `Shed` carrying the *victim*).
    Queued,
    /// The queue was at capacity: the carried item (either an older
    /// queued victim displaced by the new item, or the new item itself)
    /// was shed.
    Shed(T),
    /// The queue is closed; the new item is handed back untouched.
    Closed(T),
}

/// Multi-producer multi-consumer FIFO queue with blocking pop,
/// close-to-drain shutdown, and optional bounded capacity.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: Option<usize>,
}

impl<T> WorkQueue<T> {
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// A queue that holds at most `capacity` items; [`Self::push_bounded`]
    /// sheds past that mark. Plain [`Self::push`] ignores the bound (the
    /// caller opts into shedding per call site).
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity.max(1)))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues one item. Returns `false` (dropping the item) if the queue
    /// has been closed.
    pub fn push(&self, item: T) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Enqueues one item against the capacity bound. At the high-water
    /// mark, `select_victim` inspects the queued items plus the incoming
    /// one and names the queued index to shed — or `None` to shed the
    /// incoming item itself. Either way the shed item is returned in
    /// [`Pushed::Shed`] so the caller can answer it; nothing is silently
    /// dropped. On an unbounded queue this is exactly [`Self::push`].
    pub fn push_bounded(
        &self,
        item: T,
        select_victim: impl FnOnce(&VecDeque<T>, &T) -> Option<usize>,
    ) -> Pushed<T> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Pushed::Closed(item);
        }
        if let Some(cap) = self.capacity {
            if inner.items.len() >= cap {
                match select_victim(&inner.items, &item) {
                    Some(idx) if idx < inner.items.len() => {
                        let victim = inner.items.remove(idx).expect("victim index in bounds");
                        inner.items.push_back(item);
                        drop(inner);
                        self.ready.notify_one();
                        return Pushed::Shed(victim);
                    }
                    _ => return Pushed::Shed(item),
                }
            }
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Pushed::Queued
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, in which case `None` signals workers to exit.
    pub fn pop(&self) -> Option<T> {
        match self.pop_timeout(None) {
            Popped::Item(item) => Some(item),
            Popped::Closed => None,
            Popped::TimedOut => unreachable!("no timeout requested"),
        }
    }

    /// Like [`Self::pop`], but with an optional wait bound: `None` blocks
    /// indefinitely, `Some(d)` returns [`Popped::TimedOut`] once `d` has
    /// elapsed with nothing to pop. The service's retry scheduler uses the
    /// bounded form as its fallback tick so deferred requests are
    /// re-decided even when no completion events occur.
    ///
    /// The bound is a *deadline*, not a per-wait budget: the deadline is
    /// fixed once up front and each `wait_timeout` gets only the remaining
    /// slice, so spurious wakeups cannot stretch the total wait beyond `d`
    /// (re-waiting with the full original timeout after every wakeup
    /// would).
    pub fn pop_timeout(&self, timeout: Option<Duration>) -> Popped<T> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            match deadline {
                None => inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner()),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Popped::TimedOut;
                    }
                    let (guard, result) = self
                        .ready
                        .wait_timeout(inner, remaining)
                        .unwrap_or_else(|p| p.into_inner());
                    inner = guard;
                    if result.timed_out()
                        && deadline.saturating_duration_since(Instant::now()).is_zero()
                    {
                        // One last look under the lock before reporting the
                        // timeout (an item may have raced the wakeup).
                        return match inner.items.pop_front() {
                            Some(item) => Popped::Item(item),
                            None if inner.closed => Popped::Closed,
                            None => Popped::TimedOut,
                        };
                    }
                }
            }
        }
    }

    /// Closes the queue: pending items still drain, further pushes are
    /// rejected, and blocked poppers wake up.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }

    /// Items currently waiting (diagnostics only — stale by the time the
    /// caller looks at it).
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test-only: wake every waiter without delivering anything, to force
    /// the spurious-wakeup path of [`Self::pop_timeout`].
    #[cfg(test)]
    pub(crate) fn notify_spuriously(&self) {
        self.ready.notify_all();
    }
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = WorkQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = WorkQueue::new();
        q.push(7);
        q.close();
        assert!(q.is_closed());
        assert!(!q.push(8), "push after close must be rejected");
        assert_eq!(q.pop(), Some(7), "pending items drain after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_timeout_times_out_then_delivers() {
        let q: WorkQueue<u32> = WorkQueue::new();
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::TimedOut
        );
        q.push(9);
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::Item(9)
        );
        q.close();
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::Closed
        );
    }

    #[test]
    fn spurious_wakeups_do_not_extend_the_timeout() {
        let q: Arc<WorkQueue<u32>> = Arc::new(WorkQueue::new());
        let waker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Hammer the condvar with empty wakeups for longer than the
                // pop's deadline. With per-wait timeout restarts, each
                // wakeup would rearm the full 50ms and the pop would hang
                // until the hammering stops.
                let end = Instant::now() + Duration::from_millis(400);
                while Instant::now() < end {
                    q.notify_spuriously();
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let start = Instant::now();
        let popped = q.pop_timeout(Some(Duration::from_millis(50)));
        let waited = start.elapsed();
        waker.join().expect("waker");
        assert_eq!(popped, Popped::TimedOut);
        assert!(
            waited < Duration::from_millis(300),
            "deadline must hold under spurious wakeups; waited {waited:?}"
        );
    }

    #[test]
    fn bounded_queue_sheds_selected_victim_or_incoming() {
        let q: WorkQueue<u32> = WorkQueue::bounded(2);
        assert_eq!(q.push_bounded(1, |_, _| None), Pushed::Queued);
        assert_eq!(q.push_bounded(2, |_, _| None), Pushed::Queued);
        // At capacity, selector declines: the incoming item is shed.
        assert_eq!(q.push_bounded(3, |_, _| None), Pushed::Shed(3));
        // Selector names a queued victim: it is displaced by the new item.
        assert_eq!(
            q.push_bounded(4, |items, _| {
                assert_eq!(items.len(), 2);
                Some(0)
            }),
            Pushed::Shed(1)
        );
        // An out-of-bounds victim index degrades to shedding the incoming.
        assert_eq!(q.push_bounded(5, |_, _| Some(99)), Pushed::Shed(5));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        q.close();
        assert_eq!(q.push_bounded(6, |_, _| None), Pushed::Closed(6));
    }

    #[test]
    fn unbounded_push_bounded_never_sheds() {
        let q: WorkQueue<u32> = WorkQueue::new();
        for i in 0..100 {
            assert_eq!(q.push_bounded(i, |_, _| Some(0)), Pushed::Queued);
        }
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        let q: Arc<WorkQueue<u32>> = Arc::new(WorkQueue::new());
        q.push(1);
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = lock_recover(&q.inner);
                panic!("poison the queue lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(q.push(2), "push works through the poisoned lock");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_everything() {
        let q = Arc::new(WorkQueue::new());
        let producers = 4;
        let per_producer = 500;
        let consumers = 3;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    assert!(q.push(p * per_producer + i));
                }
            }));
        }
        let mut consumers_h = Vec::new();
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            consumers_h.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        q.close();
        let mut all: Vec<usize> = consumers_h
            .into_iter()
            .flat_map(|h| h.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(all, expect);
    }
}
