//! A blocking MPMC work queue on `Mutex<VecDeque>` + `Condvar`.
//!
//! Std-only by constraint (the container has no crates.io access) and by
//! sufficiency: the unit of work behind each pop is a full prediction —
//! sample-pass execution plus fitting — which is microseconds to
//! milliseconds, so a single well-held lock around the deque is nowhere
//! near contention. Lock-free MPMC would buy nothing here.
//!
//! The queue is poison-tolerant (a consumer that panics mid-pop must not
//! take the whole service down — see [`crate::sync`]) and optionally
//! bounded: [`WorkQueue::bounded`] plus [`WorkQueue::push_bounded`] give
//! the service's overload control a high-water mark at which it can shed
//! a *chosen* queued item instead of growing without bound.

use crate::sync::lock_recover;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Outcome of a [`WorkQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// The next queued item.
    Item(T),
    /// The timeout elapsed with the queue still open and empty.
    TimedOut,
    /// The queue is closed and drained: the consumer should exit.
    Closed,
}

/// Outcome of a [`WorkQueue::push_bounded`] against a capacity-limited
/// queue. The non-`Queued` variants hand the displaced item back to the
/// caller, who owes it a response.
#[derive(Debug, PartialEq, Eq)]
pub enum Pushed<T> {
    /// The item was enqueued (possibly after shedding an older item —
    /// that case is reported as `Shed` carrying the *victim*).
    Queued,
    /// The queue was at capacity: the carried item (either an older
    /// queued victim displaced by the new item, or the new item itself)
    /// was shed.
    Shed(T),
    /// The queue is closed; the new item is handed back untouched.
    Closed(T),
}

/// Multi-producer multi-consumer FIFO queue with blocking pop,
/// close-to-drain shutdown, and optional bounded capacity.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: Option<usize>,
}

impl<T> WorkQueue<T> {
    pub fn new() -> Self {
        Self::with_capacity(None)
    }

    /// A queue that holds at most `capacity` items; [`Self::push_bounded`]
    /// sheds past that mark. Plain [`Self::push`] ignores the bound (the
    /// caller opts into shedding per call site).
    pub fn bounded(capacity: usize) -> Self {
        Self::with_capacity(Some(capacity.max(1)))
    }

    fn with_capacity(capacity: Option<usize>) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues one item. Returns `false` (dropping the item) if the queue
    /// has been closed.
    pub fn push(&self, item: T) -> bool {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Enqueues one item against the capacity bound. At the high-water
    /// mark, `select_victim` inspects the queued items plus the incoming
    /// one and names the queued index to shed — or `None` to shed the
    /// incoming item itself. Either way the shed item is returned in
    /// [`Pushed::Shed`] so the caller can answer it; nothing is silently
    /// dropped. On an unbounded queue this is exactly [`Self::push`].
    pub fn push_bounded(
        &self,
        item: T,
        select_victim: impl FnOnce(&VecDeque<T>, &T) -> Option<usize>,
    ) -> Pushed<T> {
        let mut inner = lock_recover(&self.inner);
        if inner.closed {
            return Pushed::Closed(item);
        }
        if let Some(cap) = self.capacity {
            if inner.items.len() >= cap {
                match select_victim(&inner.items, &item) {
                    Some(idx) if idx < inner.items.len() => {
                        let victim = inner.items.remove(idx).expect("victim index in bounds");
                        inner.items.push_back(item);
                        drop(inner);
                        self.ready.notify_one();
                        return Pushed::Shed(victim);
                    }
                    _ => return Pushed::Shed(item),
                }
            }
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Pushed::Queued
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, in which case `None` signals workers to exit.
    pub fn pop(&self) -> Option<T> {
        match self.pop_timeout(None) {
            Popped::Item(item) => Some(item),
            Popped::Closed => None,
            Popped::TimedOut => unreachable!("no timeout requested"),
        }
    }

    /// Like [`Self::pop`], but with an optional wait bound: `None` blocks
    /// indefinitely, `Some(d)` returns [`Popped::TimedOut`] once `d` has
    /// elapsed with nothing to pop. The service's retry scheduler uses the
    /// bounded form as its fallback tick so deferred requests are
    /// re-decided even when no completion events occur.
    ///
    /// The bound is a *deadline*, not a per-wait budget: the deadline is
    /// fixed once up front and each `wait_timeout` gets only the remaining
    /// slice, so spurious wakeups cannot stretch the total wait beyond `d`
    /// (re-waiting with the full original timeout after every wakeup
    /// would).
    pub fn pop_timeout(&self, timeout: Option<Duration>) -> Popped<T> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            match deadline {
                None => inner = self.ready.wait(inner).unwrap_or_else(|p| p.into_inner()),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Popped::TimedOut;
                    }
                    let (guard, result) = self
                        .ready
                        .wait_timeout(inner, remaining)
                        .unwrap_or_else(|p| p.into_inner());
                    inner = guard;
                    if result.timed_out()
                        && deadline.saturating_duration_since(Instant::now()).is_zero()
                    {
                        // One last look under the lock before reporting the
                        // timeout (an item may have raced the wakeup).
                        return match inner.items.pop_front() {
                            Some(item) => Popped::Item(item),
                            None if inner.closed => Popped::Closed,
                            None => Popped::TimedOut,
                        };
                    }
                }
            }
        }
    }

    /// Closes the queue: pending items still drain, further pushes are
    /// rejected, and blocked poppers wake up.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.ready.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.inner).closed
    }

    /// Items currently waiting (diagnostics only — stale by the time the
    /// caller looks at it).
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test-only: wake every waiter without delivering anything, to force
    /// the spurious-wakeup path of [`Self::pop_timeout`].
    #[cfg(test)]
    pub(crate) fn notify_spuriously(&self) {
        self.ready.notify_all();
    }
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// One step of the splitmix64 generator — the steal-order RNG. Seeded per
/// consumer, so a given consumer's victim order is a pure function of its
/// index and how many pops it has made: fault schedules that replay the
/// same request stream see the same steal attempts.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Close flag, guarded by the queue's sleep lock. Every push and every
/// close linearizes through this mutex, which is what makes "push after
/// close returns false" and "a popper that saw closed+empty may exit"
/// simultaneously sound — no item can sneak into a shard after a popper's
/// authoritative empty scan without the pusher first observing `closed`.
struct SharedState {
    closed: bool,
}

/// A blocking MPMC queue sharded into per-consumer deques with randomized
/// work stealing — the multi-core replacement for [`WorkQueue`].
///
/// * **Push** routes round-robin across shards (arrival order is preserved
///   per shard; the global order is FIFO-per-shard, which collapses to
///   exact FIFO at one shard).
/// * **Pop** drains the consumer's own shard first, then makes one seeded
///   steal round over the other shards (splitmix64 victim order, seeded by
///   consumer index), and only then takes the global sleep lock for an
///   authoritative re-scan before blocking. The fast path touches one
///   uncontended shard mutex.
/// * **Overload** ([`Self::push_bounded`]) locks *all* shards in index
///   order at the high-water mark and presents the selector one flattened
///   view — the same semantics as [`WorkQueue::push_bounded`], paid only
///   under overload.
/// * **Close-to-drain**, deadline-based `pop_timeout`, and poison
///   tolerance carry over from [`WorkQueue`] unchanged.
///
/// Lock order: sleep lock (`state`) before any shard lock; shard locks in
/// ascending index order; never the reverse.
pub struct ShardedWorkQueue<T> {
    shards: Vec<Mutex<VecDeque<T>>>,
    state: Mutex<SharedState>,
    ready: Condvar,
    /// Advisory total (exact under the state lock, stale otherwise): the
    /// capacity check reads it lock-free and re-verifies under all shard
    /// locks before shedding.
    len: AtomicUsize,
    capacity: Option<usize>,
    next_shard: AtomicUsize,
}

impl<T> ShardedWorkQueue<T> {
    /// An unbounded queue with `shards` independent deques (clamped ≥ 1).
    pub fn new(shards: usize) -> Self {
        Self::build(shards, None)
    }

    /// A bounded queue: [`Self::push_bounded`] sheds past `capacity`
    /// items total (across all shards).
    pub fn bounded(shards: usize, capacity: usize) -> Self {
        Self::build(shards, Some(capacity.max(1)))
    }

    fn build(shards: usize, capacity: Option<usize>) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            state: Mutex::new(SharedState { closed: false }),
            ready: Condvar::new(),
            len: AtomicUsize::new(0),
            capacity,
            next_shard: AtomicUsize::new(0),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn route(&self) -> usize {
        self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len()
    }

    /// Pops the front of one shard, maintaining the advisory length.
    fn try_pop_shard(&self, idx: usize) -> Option<T> {
        let item = lock_recover(&self.shards[idx]).pop_front();
        if item.is_some() {
            self.len.fetch_sub(1, Ordering::Relaxed);
        }
        item
    }

    /// One pass over every shard in index order. Callers hold the state
    /// lock, making the scan authoritative: a concurrent push cannot
    /// complete (it needs the state lock) while this scan runs.
    fn scan_all(&self) -> Option<T> {
        (0..self.shards.len()).find_map(|i| self.try_pop_shard(i))
    }

    /// Enqueues one item. Returns `false` (dropping the item) if the
    /// queue has been closed. Holding the state lock across the shard
    /// insert is what rules out both lost wakeups (a sleeper's empty scan
    /// and its wait are atomic against pushes) and pushes that land after
    /// a popper already observed closed-and-drained.
    pub fn push(&self, item: T) -> bool {
        let state = lock_recover(&self.state);
        if state.closed {
            return false;
        }
        let idx = self.route();
        lock_recover(&self.shards[idx]).push_back(item);
        self.len.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.ready.notify_one();
        true
    }

    /// Enqueues against the capacity bound; see [`WorkQueue::push_bounded`]
    /// for the contract. The selector sees one flattened read-only view of
    /// every queued item (shard 0 front→back, then shard 1, …) and names a
    /// flat index to shed, or `None` to shed the incoming item.
    pub fn push_bounded(
        &self,
        item: T,
        select_victim: impl FnOnce(&[&T], &T) -> Option<usize>,
    ) -> Pushed<T> {
        let state = lock_recover(&self.state);
        if state.closed {
            return Pushed::Closed(item);
        }
        if let Some(cap) = self.capacity {
            if self.len.load(Ordering::Relaxed) >= cap {
                // Lock every shard (index order) and re-verify: the
                // advisory length may have raced a pop.
                let mut guards: Vec<_> = self.shards.iter().map(lock_recover).collect();
                let total: usize = guards.iter().map(|g| g.len()).sum();
                if total >= cap {
                    let view: Vec<&T> = guards.iter().flat_map(|g| g.iter()).collect();
                    let chosen = select_victim(&view, &item).filter(|&i| i < total);
                    let Some(flat) = chosen else {
                        return Pushed::Shed(item);
                    };
                    // Map the flat index back to (shard, position).
                    let mut offset = 0;
                    for g in guards.iter_mut() {
                        if flat < offset + g.len() {
                            let victim = g.remove(flat - offset).expect("index in bounds");
                            drop(guards);
                            let idx = self.route();
                            lock_recover(&self.shards[idx]).push_back(item);
                            drop(state);
                            self.ready.notify_one();
                            return Pushed::Shed(victim);
                        }
                        offset += g.len();
                    }
                    unreachable!("flat index checked against total");
                }
            }
        }
        let idx = self.route();
        lock_recover(&self.shards[idx]).push_back(item);
        self.len.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.ready.notify_one();
        Pushed::Queued
    }

    /// Blocks until an item is available or the queue is closed *and*
    /// drained. `me` selects the consumer's home shard (taken modulo the
    /// shard count) and `steal_rng` is the consumer's seeded steal-order
    /// state (seed it once per consumer, e.g. with the consumer index).
    pub fn pop(&self, me: usize, steal_rng: &mut u64) -> Option<T> {
        match self.pop_timeout(me, steal_rng, None) {
            Popped::Item(item) => Some(item),
            Popped::Closed => None,
            Popped::TimedOut => unreachable!("no timeout requested"),
        }
    }

    /// Like [`Self::pop`] with an optional wait bound; deadline semantics
    /// are identical to [`WorkQueue::pop_timeout`] (the bound is fixed up
    /// front; spurious wakeups cannot stretch it).
    pub fn pop_timeout(
        &self,
        me: usize,
        steal_rng: &mut u64,
        timeout: Option<Duration>,
    ) -> Popped<T> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let n = self.shards.len();
        let home = me % n;
        loop {
            // Fast path: the home shard, then one seeded steal round over
            // the other shards, each visited exactly once in a randomly
            // rotated order.
            if let Some(item) = self.try_pop_shard(home) {
                return Popped::Item(item);
            }
            if n > 1 {
                let start = (splitmix64(steal_rng) as usize) % (n - 1);
                for k in 0..n - 1 {
                    let victim = (home + 1 + (start + k) % (n - 1)) % n;
                    if let Some(item) = self.try_pop_shard(victim) {
                        return Popped::Item(item);
                    }
                }
            }
            // Slow path: authoritative re-scan under the state lock, then
            // sleep. A push that this scan misses must acquire the state
            // lock to complete, so its notify lands after the wait starts.
            let mut state = lock_recover(&self.state);
            if let Some(item) = self.scan_all() {
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Closed;
            }
            match deadline {
                None => {
                    let guard = self.ready.wait(state).unwrap_or_else(|p| p.into_inner());
                    drop(guard);
                }
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return Popped::TimedOut;
                    }
                    let (guard, result) = self
                        .ready
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(|p| p.into_inner());
                    state = guard;
                    if result.timed_out()
                        && deadline.saturating_duration_since(Instant::now()).is_zero()
                    {
                        // One last authoritative look before reporting the
                        // timeout (an item may have raced the wakeup).
                        return match self.scan_all() {
                            Some(item) => Popped::Item(item),
                            None if state.closed => Popped::Closed,
                            None => Popped::TimedOut,
                        };
                    }
                    drop(state);
                }
            }
        }
    }

    /// Closes the queue: pending items still drain, further pushes are
    /// rejected, and blocked poppers wake up.
    pub fn close(&self) {
        lock_recover(&self.state).closed = true;
        self.ready.notify_all();
    }

    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }

    /// Items currently waiting across all shards (advisory — stale by the
    /// time the caller looks at it).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Test-only: wake every waiter without delivering anything.
    #[cfg(test)]
    pub(crate) fn notify_spuriously(&self) {
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = WorkQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = WorkQueue::new();
        q.push(7);
        q.close();
        assert!(q.is_closed());
        assert!(!q.push(8), "push after close must be rejected");
        assert_eq!(q.pop(), Some(7), "pending items drain after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_timeout_times_out_then_delivers() {
        let q: WorkQueue<u32> = WorkQueue::new();
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::TimedOut
        );
        q.push(9);
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::Item(9)
        );
        q.close();
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::Closed
        );
    }

    #[test]
    fn spurious_wakeups_do_not_extend_the_timeout() {
        let q: Arc<WorkQueue<u32>> = Arc::new(WorkQueue::new());
        let waker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // Hammer the condvar with empty wakeups for longer than the
                // pop's deadline. With per-wait timeout restarts, each
                // wakeup would rearm the full 50ms and the pop would hang
                // until the hammering stops.
                let end = Instant::now() + Duration::from_millis(400);
                while Instant::now() < end {
                    q.notify_spuriously();
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let start = Instant::now();
        let popped = q.pop_timeout(Some(Duration::from_millis(50)));
        let waited = start.elapsed();
        waker.join().expect("waker");
        assert_eq!(popped, Popped::TimedOut);
        assert!(
            waited < Duration::from_millis(300),
            "deadline must hold under spurious wakeups; waited {waited:?}"
        );
    }

    #[test]
    fn bounded_queue_sheds_selected_victim_or_incoming() {
        let q: WorkQueue<u32> = WorkQueue::bounded(2);
        assert_eq!(q.push_bounded(1, |_, _| None), Pushed::Queued);
        assert_eq!(q.push_bounded(2, |_, _| None), Pushed::Queued);
        // At capacity, selector declines: the incoming item is shed.
        assert_eq!(q.push_bounded(3, |_, _| None), Pushed::Shed(3));
        // Selector names a queued victim: it is displaced by the new item.
        assert_eq!(
            q.push_bounded(4, |items, _| {
                assert_eq!(items.len(), 2);
                Some(0)
            }),
            Pushed::Shed(1)
        );
        // An out-of-bounds victim index degrades to shedding the incoming.
        assert_eq!(q.push_bounded(5, |_, _| Some(99)), Pushed::Shed(5));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        q.close();
        assert_eq!(q.push_bounded(6, |_, _| None), Pushed::Closed(6));
    }

    #[test]
    fn unbounded_push_bounded_never_sheds() {
        let q: WorkQueue<u32> = WorkQueue::new();
        for i in 0..100 {
            assert_eq!(q.push_bounded(i, |_, _| Some(0)), Pushed::Queued);
        }
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn queue_survives_a_poisoned_lock() {
        let q: Arc<WorkQueue<u32>> = Arc::new(WorkQueue::new());
        q.push(1);
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = lock_recover(&q.inner);
                panic!("poison the queue lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(q.push(2), "push works through the poisoned lock");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_everything() {
        let q = Arc::new(WorkQueue::new());
        let producers = 4;
        let per_producer = 500;
        let consumers = 3;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    assert!(q.push(p * per_producer + i));
                }
            }));
        }
        let mut consumers_h = Vec::new();
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            consumers_h.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        q.close();
        let mut all: Vec<usize> = consumers_h
            .into_iter()
            .flat_map(|h| h.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(all, expect);
    }

    // ---- ShardedWorkQueue ----

    #[test]
    fn one_shard_is_exact_fifo_and_drains_after_close() {
        let q: ShardedWorkQueue<u32> = ShardedWorkQueue::new(1);
        let mut rng = 7;
        for i in 0..8 {
            assert!(q.push(i));
        }
        q.close();
        assert!(!q.push(99), "push after close is rejected");
        for i in 0..8 {
            assert_eq!(
                q.pop(0, &mut rng),
                Some(i),
                "close-to-drain keeps FIFO order"
            );
        }
        assert_eq!(q.pop(0, &mut rng), None);
    }

    #[test]
    fn stealing_delivers_items_pushed_to_other_shards() {
        let q: ShardedWorkQueue<u32> = ShardedWorkQueue::new(4);
        // Round-robin routing spreads 8 items over all 4 shards; a single
        // consumer homed on shard 0 must still drain everything.
        for i in 0..8 {
            assert!(q.push(i));
        }
        q.close();
        let mut rng = 42;
        let mut got: Vec<u32> = std::iter::from_fn(|| q.pop(0, &mut rng)).collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn sharded_pop_timeout_expires_without_items() {
        let q: ShardedWorkQueue<u32> = ShardedWorkQueue::new(3);
        let mut rng = 0;
        let start = Instant::now();
        let popped = q.pop_timeout(1, &mut rng, Some(Duration::from_millis(30)));
        assert_eq!(popped, Popped::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(30));
        assert_eq!(
            q.pop_timeout(1, &mut rng, Some(Duration::ZERO)),
            Popped::TimedOut,
            "zero timeout polls without blocking"
        );
    }

    #[test]
    fn sharded_deadline_holds_under_spurious_wakeups() {
        let q: Arc<ShardedWorkQueue<u32>> = Arc::new(ShardedWorkQueue::new(2));
        let waker = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let end = Instant::now() + Duration::from_millis(400);
                while Instant::now() < end {
                    q.notify_spuriously();
                    std::thread::sleep(Duration::from_millis(5));
                }
            })
        };
        let mut rng = 3;
        let start = Instant::now();
        let popped = q.pop_timeout(0, &mut rng, Some(Duration::from_millis(50)));
        let waited = start.elapsed();
        waker.join().expect("waker");
        assert_eq!(popped, Popped::TimedOut);
        assert!(
            waited < Duration::from_millis(300),
            "deadline must hold under spurious wakeups; waited {waited:?}"
        );
    }

    #[test]
    fn sharded_bounded_sheds_with_a_cross_shard_flattened_view() {
        let q: ShardedWorkQueue<u32> = ShardedWorkQueue::bounded(3, 3);
        assert_eq!(q.push_bounded(10, |_, _| None), Pushed::Queued);
        assert_eq!(q.push_bounded(11, |_, _| None), Pushed::Queued);
        assert_eq!(q.push_bounded(12, |_, _| None), Pushed::Queued);
        // Selector declines: incoming is shed, queue untouched.
        assert_eq!(
            q.push_bounded(13, |view, _| {
                assert_eq!(view.len(), 3, "selector sees every queued item");
                None
            },),
            Pushed::Shed(13)
        );
        // Selector picks a victim by value through the flattened view; the
        // flat index maps back to the owning shard regardless of routing.
        let shed = q.push_bounded(14, |view, _| view.iter().position(|&&v| v == 11));
        assert_eq!(shed, Pushed::Shed(11));
        // Out-of-bounds victim index degrades to shedding the incoming.
        assert_eq!(q.push_bounded(15, |_, _| Some(99)), Pushed::Shed(15));
        q.close();
        assert_eq!(q.push_bounded(16, |_, _| None), Pushed::Closed(16));
        let mut rng = 1;
        let mut left: Vec<u32> = std::iter::from_fn(|| q.pop(0, &mut rng)).collect();
        left.sort_unstable();
        assert_eq!(left, vec![10, 12, 14], "victim gone, replacement present");
    }

    #[test]
    fn sharded_queue_survives_a_poisoned_shard_lock() {
        let q: Arc<ShardedWorkQueue<u32>> = Arc::new(ShardedWorkQueue::new(2));
        assert!(q.push(1));
        let poisoner = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let _guard = lock_recover(&q.shards[0]);
                panic!("poison a shard lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(q.push(2));
        q.close();
        let mut rng = 5;
        let mut got: Vec<u32> = std::iter::from_fn(|| q.pop(0, &mut rng)).collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn sharded_concurrent_producers_and_stealing_consumers_deliver_everything() {
        let q = Arc::new(ShardedWorkQueue::new(4));
        let producers = 4;
        let per_producer = 500;
        let consumers = 3;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    assert!(q.push(p * per_producer + i));
                }
            }));
        }
        let mut consumers_h = Vec::new();
        for c in 0..consumers {
            let q = Arc::clone(&q);
            consumers_h.push(std::thread::spawn(move || {
                let mut rng = 0x5EED ^ c as u64;
                let mut got = Vec::new();
                while let Some(v) = q.pop(c, &mut rng) {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        q.close();
        let mut all: Vec<usize> = consumers_h
            .into_iter()
            .flat_map(|h| h.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(all, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn steal_order_is_a_pure_function_of_the_seed() {
        // Two identical queues, two consumers with the same seed: the
        // popped sequences must match exactly (determinism contract the
        // chaos suite leans on).
        let run = || {
            let q: ShardedWorkQueue<u32> = ShardedWorkQueue::new(4);
            for i in 0..32 {
                q.push(i);
            }
            q.close();
            let mut rng = 0xC0FFEE;
            std::iter::from_fn(|| q.pop(2, &mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
