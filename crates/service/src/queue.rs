//! A blocking MPMC work queue on `Mutex<VecDeque>` + `Condvar`.
//!
//! Std-only by constraint (the container has no crates.io access) and by
//! sufficiency: the unit of work behind each pop is a full prediction —
//! sample-pass execution plus fitting — which is microseconds to
//! milliseconds, so a single well-held lock around the deque is nowhere
//! near contention. Lock-free MPMC would buy nothing here.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Outcome of a [`WorkQueue::pop_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// The next queued item.
    Item(T),
    /// The timeout elapsed with the queue still open and empty.
    TimedOut,
    /// The queue is closed and drained: the consumer should exit.
    Closed,
}

/// Multi-producer multi-consumer FIFO queue with blocking pop and
/// close-to-drain shutdown.
pub struct WorkQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

impl<T> WorkQueue<T> {
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues one item. Returns `false` (dropping the item) if the queue
    /// has been closed.
    pub fn push(&self, item: T) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return false;
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        true
    }

    /// Blocks until an item is available (FIFO) or the queue is closed
    /// *and* drained, in which case `None` signals workers to exit.
    pub fn pop(&self) -> Option<T> {
        match self.pop_timeout(None) {
            Popped::Item(item) => Some(item),
            Popped::Closed => None,
            Popped::TimedOut => unreachable!("no timeout requested"),
        }
    }

    /// Like [`Self::pop`], but with an optional wait bound: `None` blocks
    /// indefinitely, `Some(d)` returns [`Popped::TimedOut`] once `d` has
    /// elapsed with nothing to pop. The service's retry scheduler uses the
    /// bounded form as its fallback tick so deferred requests are
    /// re-decided even when no completion events occur.
    pub fn pop_timeout(&self, timeout: Option<Duration>) -> Popped<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            match timeout {
                None => inner = self.ready.wait(inner).expect("queue lock"),
                Some(d) => {
                    let (guard, result) = self.ready.wait_timeout(inner, d).expect("queue lock");
                    inner = guard;
                    if result.timed_out() {
                        // One last look under the lock before reporting the
                        // timeout (an item may have raced the wakeup).
                        return match inner.items.pop_front() {
                            Some(item) => Popped::Item(item),
                            None if inner.closed => Popped::Closed,
                            None => Popped::TimedOut,
                        };
                    }
                }
            }
        }
    }

    /// Closes the queue: pending items still drain, further pushes are
    /// rejected, and blocked poppers wake up.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting (diagnostics only — stale by the time the
    /// caller looks at it).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_single_thread() {
        let q = WorkQueue::new();
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = WorkQueue::new();
        q.push(7);
        q.close();
        assert!(!q.push(8), "push after close must be rejected");
        assert_eq!(q.pop(), Some(7), "pending items drain after close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn pop_timeout_times_out_then_delivers() {
        let q: WorkQueue<u32> = WorkQueue::new();
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::TimedOut
        );
        q.push(9);
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::Item(9)
        );
        q.close();
        assert_eq!(
            q.pop_timeout(Some(std::time::Duration::from_millis(1))),
            Popped::Closed
        );
    }

    #[test]
    fn concurrent_producers_and_consumers_deliver_everything() {
        let q = Arc::new(WorkQueue::new());
        let producers = 4;
        let per_producer = 500;
        let consumers = 3;

        let mut handles = Vec::new();
        for p in 0..producers {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    assert!(q.push(p * per_producer + i));
                }
            }));
        }
        let mut consumers_h = Vec::new();
        for _ in 0..consumers {
            let q = Arc::clone(&q);
            consumers_h.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            }));
        }
        for h in handles {
            h.join().expect("producer");
        }
        q.close();
        let mut all: Vec<usize> = consumers_h
            .into_iter()
            .flat_map(|h| h.join().expect("consumer"))
            .collect();
        all.sort_unstable();
        let expect: Vec<usize> = (0..producers * per_producer).collect();
        assert_eq!(all, expect);
    }
}
