//! The concurrent plan-shape fit cache shared by the worker pool.
//!
//! Implements [`uaq_cost::FitCache`] with a mutex-guarded two-level map:
//! shape signature → (`Arc<Vec<NodeCostContext>>`, fit-signature →
//! `Arc<NodeFits>`). Values are `Arc`s, so the lock is held only for the
//! map probe — never across a fit or a prediction — and hits are a clone
//! of a pointer.
//!
//! Capacity is bounded per level (shapes, and fit variants per shape).
//! Eviction is "reject new" rather than LRU: the serving workloads this
//! cache exists for are template-shaped (a stable set of plan shapes
//! recurring indefinitely), where the first-seen working set *is* the hot
//! set and pointer-chasing LRU bookkeeping would be pure overhead. A full
//! cache still serves hits for everything it already holds; new shapes
//! simply pay the uncached cost.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use uaq_cost::{FitCache, FitSignature, NodeCostContext, NodeFits};

/// Hit/miss counters, cheap enough to keep always-on (relaxed atomics).
#[derive(Debug, Default)]
struct Counters {
    context_hits: AtomicU64,
    context_misses: AtomicU64,
    fit_hits: AtomicU64,
    fit_misses: AtomicU64,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Plan-shape (context-level) hits: the `NodeCostContext`s were reused.
    pub context_hits: u64,
    pub context_misses: u64,
    /// Full-fit hits: the grid fits were skipped entirely.
    pub fit_hits: u64,
    pub fit_misses: u64,
    /// Distinct plan shapes currently cached.
    pub shapes: usize,
}

impl CacheStats {
    /// Fraction of fit lookups that skipped the grid fits.
    pub fn fit_hit_rate(&self) -> f64 {
        let total = self.fit_hits + self.fit_misses;
        if total == 0 {
            0.0
        } else {
            self.fit_hits as f64 / total as f64
        }
    }
}

struct ShapeEntry {
    contexts: Option<Arc<Vec<NodeCostContext>>>,
    fits: HashMap<FitSignature, Arc<NodeFits>>,
}

/// Bounds for [`SharedFitCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum distinct plan shapes held.
    pub max_shapes: usize,
    /// Maximum fit variants (distinct selectivity-distribution signatures)
    /// held per shape.
    pub max_fits_per_shape: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_shapes: 4096,
            max_fits_per_shape: 64,
        }
    }
}

/// Thread-safe fit cache. Safe to share across catalogs and predictor
/// configs: the predictor keys entries on (plan shape, catalog
/// fingerprint) and fits additionally on everything they depend on.
pub struct SharedFitCache {
    config: CacheConfig,
    map: Mutex<HashMap<String, ShapeEntry>>,
    counters: Counters,
}

impl SharedFitCache {
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            map: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            context_hits: self.counters.context_hits.load(Ordering::Relaxed),
            context_misses: self.counters.context_misses.load(Ordering::Relaxed),
            fit_hits: self.counters.fit_hits.load(Ordering::Relaxed),
            fit_misses: self.counters.fit_misses.load(Ordering::Relaxed),
            shapes: self.map.lock().expect("cache lock").len(),
        }
    }

    /// Drops every entry (counters are retained).
    pub fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
    }
}

impl Default for SharedFitCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl FitCache for SharedFitCache {
    fn get_contexts(&self, shape: &str) -> Option<Arc<Vec<NodeCostContext>>> {
        let map = self.map.lock().expect("cache lock");
        let hit = map.get(shape).and_then(|e| e.contexts.clone());
        drop(map);
        match &hit {
            Some(_) => self.counters.context_hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.context_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn put_contexts(&self, shape: &str, contexts: &Arc<Vec<NodeCostContext>>) {
        let mut map = self.map.lock().expect("cache lock");
        if let Some(entry) = map.get_mut(shape) {
            entry.contexts.get_or_insert_with(|| Arc::clone(contexts));
        } else if map.len() < self.config.max_shapes {
            map.insert(
                shape.to_owned(),
                ShapeEntry {
                    contexts: Some(Arc::clone(contexts)),
                    fits: HashMap::new(),
                },
            );
        }
    }

    fn get_fits(&self, shape: &str, sig: &FitSignature) -> Option<Arc<NodeFits>> {
        let map = self.map.lock().expect("cache lock");
        let hit = map.get(shape).and_then(|e| e.fits.get(sig).cloned());
        drop(map);
        match &hit {
            Some(_) => self.counters.fit_hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.fit_misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    fn put_fits(&self, shape: &str, sig: &FitSignature, fits: &Arc<NodeFits>) {
        let mut map = self.map.lock().expect("cache lock");
        if !map.contains_key(shape) {
            if map.len() >= self.config.max_shapes {
                return;
            }
            map.insert(
                shape.to_owned(),
                ShapeEntry {
                    contexts: None,
                    fits: HashMap::new(),
                },
            );
        }
        let entry = map.get_mut(shape).expect("present or just inserted");
        if entry.fits.len() < self.config.max_fits_per_shape {
            entry
                .fits
                .entry(sig.clone())
                .or_insert_with(|| Arc::clone(fits));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_stats::Normal;

    fn sig(mean: f64) -> FitSignature {
        FitSignature::new(8, &[Normal::new(mean, 0.01)])
    }

    #[test]
    fn contexts_round_trip_and_count() {
        let cache = SharedFitCache::default();
        assert!(cache.get_contexts("s1").is_none());
        let ctxs = Arc::new(Vec::new());
        cache.put_contexts("s1", &ctxs);
        assert!(cache.get_contexts("s1").is_some());
        let stats = cache.stats();
        assert_eq!(stats.context_hits, 1);
        assert_eq!(stats.context_misses, 1);
        assert_eq!(stats.shapes, 1);
    }

    #[test]
    fn fits_key_on_signature() {
        let cache = SharedFitCache::default();
        let fits = Arc::new(Vec::new());
        cache.put_fits("s1", &sig(0.5), &fits);
        assert!(cache.get_fits("s1", &sig(0.5)).is_some());
        assert!(cache.get_fits("s1", &sig(0.6)).is_none());
        assert!(cache.get_fits("s2", &sig(0.5)).is_none());
        assert!((cache.stats().fit_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_reject_new_entries_but_keep_existing() {
        let cache = SharedFitCache::new(CacheConfig {
            max_shapes: 1,
            max_fits_per_shape: 1,
        });
        let fits = Arc::new(Vec::new());
        cache.put_fits("s1", &sig(0.1), &fits);
        cache.put_fits("s1", &sig(0.2), &fits); // over per-shape bound
        cache.put_fits("s2", &sig(0.1), &fits); // over shape bound
        assert!(cache.get_fits("s1", &sig(0.1)).is_some());
        assert!(cache.get_fits("s1", &sig(0.2)).is_none());
        assert!(cache.get_fits("s2", &sig(0.1)).is_none());
        assert_eq!(cache.stats().shapes, 1);
        // Contexts for the held shape still land.
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
    }

    #[test]
    fn clear_retains_counters() {
        let cache = SharedFitCache::default();
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
        cache.clear();
        assert!(cache.get_contexts("s1").is_none());
        let stats = cache.stats();
        assert_eq!(stats.shapes, 0);
        assert_eq!(stats.context_hits, 1);
        assert_eq!(stats.context_misses, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(SharedFitCache::default());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let shape = format!("shape-{}", i % 10);
                        let s = sig((t * 200 + i) as f64 / 4000.0);
                        if cache.get_fits(&shape, &s).is_none() {
                            cache.put_fits(&shape, &s, &Arc::new(Vec::new()));
                        }
                        cache.put_contexts(&shape, &Arc::new(Vec::new()));
                        assert!(cache.get_contexts(&shape).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().shapes, 10);
    }
}
