//! The concurrent caches shared by the worker pool: the plan-shape fit
//! cache and the selectivity-estimate cache, both bounded by a pluggable
//! [`EvictionPolicy`].
//!
//! * [`SharedFitCache`] implements [`uaq_cost::FitCache`]: shape signature
//!   → (`Arc<Vec<NodeCostContext>>`, fit-signature → `Arc<NodeFits>`).
//! * [`SharedSelEstCache`] implements [`uaq_cost::SelEstCache`]: fully
//!   qualified instance key (shape + catalog + literals + sample
//!   fingerprint) → `SelEstimates`. A hit skips the sample pass entirely.
//!
//! Values are `Arc`-backed, so each lock is held only for the map probe —
//! never across a sample pass, a fit, or a prediction — and hits are a
//! pointer clone. Both caches are bit-transparent: everything a cached
//! value depends on is part of its key, so a hit returns exactly what a
//! fresh computation would produce.
//!
//! Eviction is policy-driven. PR 2 shipped "reject new when full"
//! ([`EvictionPolicy::RejectNew`]), which is right for stable template
//! sets — the first-seen working set *is* the hot set — but starves bursty
//! ad-hoc traffic: once full, new templates never get cached. The default
//! is now [`EvictionPolicy::Segmented`] (SLRU): new entries churn through
//! a probation segment and only entries hit at least twice earn a
//! protected slot, so an ad-hoc scan cannot flush the recurring templates
//! plain [`EvictionPolicy::Lru`] would sacrifice.

use crate::fault::{Fault, FaultInjector, FaultSite};
use crate::sync::{lock_recover_with, Published};
use std::borrow::Borrow;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard};
use uaq_cost::{FitCache, FitSignature, NodeCostContext, NodeFits, SelEstCache};
use uaq_selest::SelEstimates;
use uaq_telemetry::{Counter, Registry};

/// What happens when a bounded cache is full and a new entry arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// PR 2's original policy: a full cache keeps serving what it already
    /// holds and rejects new entries. Zero bookkeeping; right when the
    /// first-seen working set is the hot set, pathological for bursty
    /// ad-hoc traffic.
    RejectNew,
    /// Evict the least-recently-used entry to admit the new one.
    Lru,
    /// Segmented LRU: new entries land in a probation segment; a hit
    /// promotes to the protected segment (up to 4/5 of capacity), whose
    /// overflow demotes its LRU member back to probation. One-shot ad-hoc
    /// queries churn through probation without displacing the recurring
    /// templates that earned protection — scan-resistant where plain LRU
    /// is not.
    #[default]
    Segmented,
}

/// Protected-segment share of capacity under [`EvictionPolicy::Segmented`].
const PROTECTED_NUM: usize = 4;
const PROTECTED_DEN: usize = 5;

#[derive(Debug)]
struct Slot<V> {
    value: V,
    /// Stamp of the most recent touch; queue entries with older stamps are
    /// stale markers and get skipped.
    touch: u64,
    /// Segmented only: lives in the protected segment.
    protected: bool,
}

/// A bounded map with policy-driven eviction. Recency is tracked with lazy
/// queues — a touch pushes a `(stamp, key)` marker and bumps the slot's
/// stamp, invalidating older markers — so every operation is amortized
/// O(1) with no intrusive list bookkeeping. Not thread-safe on its own;
/// the shared caches wrap it in a `Mutex`.
#[derive(Debug)]
pub(crate) struct EvictingMap<K: Hash + Eq + Clone, V> {
    capacity: usize,
    policy: EvictionPolicy,
    map: HashMap<K, Slot<V>>,
    /// Recency queues: `[probation, protected]`. `RejectNew`/`Lru` only
    /// use probation.
    queues: [VecDeque<(u64, K)>; 2],
    protected_len: usize,
    tick: u64,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> EvictingMap<K, V> {
    pub fn new(capacity: usize, policy: EvictionPolicy) -> Self {
        Self {
            capacity,
            policy,
            map: HashMap::new(),
            queues: [VecDeque::new(), VecDeque::new()],
            protected_len: 0,
            tick: 0,
            evictions: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.contains_key(key)
    }

    pub fn clear(&mut self) {
        self.map.clear();
        self.queues[0].clear();
        self.queues[1].clear();
        self.protected_len = 0;
    }

    /// Looks an entry up and records the touch (promoting it under the
    /// segmented policy).
    pub fn get<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        // RejectNew never evicts, so recency is meaningless: keep it at
        // its advertised zero bookkeeping (no key clones, no markers).
        if self.policy != EvictionPolicy::RejectNew {
            let owned = self.map.get_key_value(key).map(|(k, _)| k.clone())?;
            if self.policy == EvictionPolicy::Segmented {
                self.promote(&owned);
            }
            self.stamp(owned);
        }
        self.map.get_mut(key).map(|slot| &mut slot.value)
    }

    /// Looks an entry up without recording a touch or needing `&mut` —
    /// the snapshot builder reads entries through this without disturbing
    /// recency.
    pub fn peek<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get(key).map(|slot| &slot.value)
    }

    /// Iterates entries in arbitrary order, touching nothing.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter().map(|(k, slot)| (k, &slot.value))
    }

    /// Looks an entry up **without** recording a touch. For fill paths
    /// (`put_*`): the request that computes a value already touched the
    /// entry on its lookup, and counting the fill as a second use would
    /// promote brand-new entries straight into the protected segment —
    /// exactly the scan resistance `Segmented` exists to provide.
    pub fn peek_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.get_mut(key).map(|slot| &mut slot.value)
    }

    /// Inserts a new entry, evicting per policy when full. Returns false
    /// when the entry was rejected (`RejectNew` at capacity, or capacity
    /// zero). The key must not already be present.
    pub fn try_insert(&mut self, key: K, value: V) -> bool {
        debug_assert!(!self.map.contains_key(&key), "insert of present key");
        if self.capacity == 0 {
            return false;
        }
        if self.map.len() >= self.capacity {
            if self.policy == EvictionPolicy::RejectNew {
                return false;
            }
            self.evict_one();
            if self.map.len() >= self.capacity {
                return false;
            }
        }
        self.map.insert(
            key.clone(),
            Slot {
                value,
                touch: 0,
                protected: false,
            },
        );
        self.stamp(key);
        true
    }

    /// Moves a probation entry to the protected segment, demoting the
    /// protected LRU back to probation when the segment overflows.
    fn promote(&mut self, key: &K) {
        let protected_cap = self.capacity * PROTECTED_NUM / PROTECTED_DEN;
        if protected_cap == 0 {
            return;
        }
        let slot = self.map.get_mut(key).expect("promote of present key");
        if slot.protected {
            return;
        }
        slot.protected = true;
        self.protected_len += 1;
        while self.protected_len > protected_cap {
            // The just-promoted key has no marker in the protected queue
            // yet, so it can never demote itself here.
            match self.pop_valid(1) {
                Some(victim) => {
                    let s = self.map.get_mut(&victim).expect("popped key present");
                    s.protected = false;
                    self.protected_len -= 1;
                    // Demotion re-enters probation at the MRU end.
                    self.stamp(victim);
                }
                None => break,
            }
        }
    }

    /// Records a touch: bumps the slot stamp and pushes a fresh marker to
    /// the slot's segment queue. No-op under `RejectNew` (nothing ever
    /// consumes the markers).
    fn stamp(&mut self, key: K) {
        if self.policy == EvictionPolicy::RejectNew {
            return;
        }
        self.tick += 1;
        let slot = self.map.get_mut(&key).expect("stamp of present key");
        slot.touch = self.tick;
        let segment = slot.protected as usize;
        self.queues[segment].push_back((self.tick, key));
        // Lazy invalidation means stale markers accumulate; rebuild the
        // queue when they dominate (amortized O(1) per touch).
        if self.queues[segment].len() > 2 * self.map.len() + 8 {
            let map = &self.map;
            self.queues[segment].retain(|(stamp, k)| {
                map.get(k)
                    .is_some_and(|s| s.touch == *stamp && s.protected as usize == segment)
            });
        }
    }

    /// Pops queue markers until one still names its segment's live LRU.
    fn pop_valid(&mut self, segment: usize) -> Option<K> {
        while let Some((stamp, key)) = self.queues[segment].pop_front() {
            if let Some(slot) = self.map.get(&key) {
                if slot.touch == stamp && slot.protected as usize == segment {
                    return Some(key);
                }
            }
        }
        None
    }

    fn evict_one(&mut self) {
        let victim = match self.policy {
            EvictionPolicy::RejectNew => None,
            EvictionPolicy::Lru => self.pop_valid(0),
            // Probation first; an all-protected cache falls back to the
            // protected LRU.
            EvictionPolicy::Segmented => self.pop_valid(0).or_else(|| self.pop_valid(1)),
        };
        if let Some(key) = victim {
            let slot = self.map.remove(&key).expect("victim present");
            if slot.protected {
                self.protected_len -= 1;
            }
            self.evictions += 1;
        }
    }
}

/// Hit/miss counters, cheap enough to keep always-on: each is a
/// [`uaq_telemetry::Counter`] (a relaxed atomic under the hood), detached
/// for standalone caches and registry-bound when the owning service
/// constructs the cache with [`SharedFitCache::instrumented`] — the same
/// cells then feed `PredictionService::telemetry()` with zero extra work
/// on the probe path.
#[derive(Debug, Default)]
struct Counters {
    context_hits: Counter,
    context_misses: Counter,
    fit_hits: Counter,
    fit_misses: Counter,
    poison_recoveries: Counter,
}

impl Counters {
    /// Counters registered under `uaq_cache_probes_total{cache,outcome}`
    /// and `uaq_cache_poison_recoveries_total{cache}`.
    fn registered(registry: &Registry) -> Self {
        let probe = |cache: &str, outcome: &str| {
            registry.counter(
                "uaq_cache_probes_total",
                &[("cache", cache), ("outcome", outcome)],
            )
        };
        Self {
            context_hits: probe("fit_context", "hit"),
            context_misses: probe("fit_context", "miss"),
            fit_hits: probe("fit", "hit"),
            fit_misses: probe("fit", "miss"),
            poison_recoveries: registry
                .counter("uaq_cache_poison_recoveries_total", &[("cache", "fit")]),
        }
    }
}

/// A point-in-time snapshot of the service's cache counters. The
/// `sel_*` fields belong to the selectivity-estimate cache and are zero on
/// a [`SharedFitCache::stats`] snapshot (the service merges both caches in
/// `PredictionService::cache_stats`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Plan-shape (context-level) hits: the `NodeCostContext`s were reused.
    pub context_hits: u64,
    pub context_misses: u64,
    /// Full-fit hits: the grid fits were skipped entirely.
    pub fit_hits: u64,
    pub fit_misses: u64,
    /// Selectivity-estimate hits: the sample pass was skipped entirely.
    pub sel_hits: u64,
    pub sel_misses: u64,
    /// Distinct plan shapes currently cached.
    pub shapes: usize,
    /// Distinct query instances currently held by the estimate cache.
    pub sel_entries: usize,
    /// Shapes evicted from the fit cache since startup.
    pub shape_evictions: u64,
    /// Instances evicted from the estimate cache since startup.
    pub sel_evictions: u64,
    /// Times a cache lock was found poisoned (a holder panicked) and
    /// recovered by invalidating the cache. Bit-transparency makes the
    /// invalidation conservatively correct: the next miss recomputes
    /// exactly what the dropped entries held. Sums both caches in the
    /// service's merged snapshot.
    pub poison_recoveries: u64,
}

impl CacheStats {
    /// Fraction of fit lookups that skipped the grid fits. NaN when no
    /// probe has happened — the same zero-denominator convention as the
    /// experiment crate's `violation_rate` ("no data" is not "0%"); render
    /// with a NaN-aware formatter (`n/a`), and clamp before exporting to
    /// a gauge so NaN never reaches the Prometheus text path.
    pub fn fit_hit_rate(&self) -> f64 {
        let total = self.fit_hits + self.fit_misses;
        if total == 0 {
            f64::NAN
        } else {
            self.fit_hits as f64 / total as f64
        }
    }

    /// Fraction of estimate lookups that skipped the sample pass. NaN on
    /// zero probes; see [`Self::fit_hit_rate`].
    pub fn sel_hit_rate(&self) -> f64 {
        let total = self.sel_hits + self.sel_misses;
        if total == 0 {
            f64::NAN
        } else {
            self.sel_hits as f64 / total as f64
        }
    }
}

struct ShapeEntry {
    contexts: Option<Arc<Vec<NodeCostContext>>>,
    fits: EvictingMap<FitSignature, Arc<NodeFits>>,
}

/// Bounds and policy for the service caches.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Maximum distinct plan shapes held by the fit cache.
    pub max_shapes: usize,
    /// Maximum fit variants (distinct selectivity-distribution signatures)
    /// held per shape.
    pub max_fits_per_shape: usize,
    /// Maximum query instances (shape + literals + samples) held by the
    /// selectivity-estimate cache.
    pub max_sel_entries: usize,
    /// Eviction policy applied to every bounded level.
    pub eviction: EvictionPolicy,
    /// Requested shard count for both shared caches. The effective count
    /// is clamped so every shard keeps at least [`MIN_KEYS_PER_SHARD`]
    /// slots (tiny caches collapse to one shard and behave exactly like
    /// the unsharded PR 7 code, eviction order included).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            max_shapes: 4096,
            max_fits_per_shape: 64,
            max_sel_entries: 16384,
            eviction: EvictionPolicy::default(),
            shards: DEFAULT_SHARDS,
        }
    }
}

/// Default requested shard count for the shared caches.
pub const DEFAULT_SHARDS: usize = 8;

/// Sharding is only worth its per-shard eviction state when shards stay
/// reasonably full; below this many slots per shard the cache collapses
/// toward one shard.
const MIN_KEYS_PER_SHARD: usize = 64;

/// Locked hits accumulated in a shard before its warm snapshot is
/// republished. The first hit after an empty snapshot publishes
/// immediately so a newly warm key reaches the lock-free path at once.
const PUBLISH_BATCH: usize = 4;

/// Shard count actually used for a cache of `capacity` total slots.
fn effective_shards(requested: usize, capacity: usize) -> usize {
    requested.max(1).min((capacity / MIN_KEYS_PER_SHARD).max(1))
}

/// FNV-1a over the key bytes — the shard router. Stable across platforms
/// and process runs (unlike `RandomState`), so a key's shard is a pure
/// function of the key and the shard count; the golden differential tests
/// lean on that.
fn shard_of(key: &str, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Read-only copy of one shape's cached state, owned by a warm snapshot.
#[derive(Default)]
struct ShapeSnap {
    contexts: Option<Arc<Vec<NodeCostContext>>>,
    fits: HashMap<FitSignature, Arc<NodeFits>>,
}

/// An immutable published view of a fit shard's hot entries. Readers get
/// it via [`Published::load`] — a refcount bump, never the shard's map
/// lock — so a warm predict takes zero contended locks.
#[derive(Default)]
struct FitSnapshot {
    shapes: HashMap<String, ShapeSnap>,
}

/// One fit-cache shard: the mutable map behind its own mutex, plus the
/// lock-free-read warm snapshot. Lock order is map before snapshot slot;
/// snapshot loads take only the slot.
struct FitShard {
    map: Mutex<FitShardInner>,
    warm: Published<FitSnapshot>,
}

struct FitShardInner {
    map: EvictingMap<String, ShapeEntry>,
    /// Shapes that took a locked hit since the last publish — the
    /// candidates to add to the next snapshot.
    pending: Vec<String>,
    /// Shape count of the currently published snapshot (0 after clear or
    /// poison recovery, which is what forces an eager republish).
    snapshot_len: usize,
}

impl FitShardInner {
    fn invalidate(&mut self) {
        self.map.clear();
        self.pending.clear();
        self.snapshot_len = 0;
    }
}

/// Thread-safe fit cache, sharded by FNV-1a of the shape signature. Safe
/// to share across catalogs and predictor configs: the predictor keys
/// entries on (plan shape, catalog fingerprint) and fits additionally on
/// everything they depend on.
///
/// Each shard evicts independently (a hot shard can evict while a cold
/// one has room — the price of independent locks), and each publishes a
/// read-only snapshot of its hot entries so warm lookups bypass the map
/// lock entirely. Snapshots lag the map by design; bit-transparency means
/// a stale snapshot can only miss or serve the exact value a fresh
/// computation would produce, never a wrong one.
pub struct SharedFitCache {
    config: CacheConfig,
    shards: Vec<FitShard>,
    counters: Counters,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl SharedFitCache {
    pub fn new(config: CacheConfig) -> Self {
        let n = effective_shards(config.shards, config.max_shapes);
        let per_shard = config.max_shapes.div_ceil(n);
        Self {
            config,
            shards: (0..n)
                .map(|_| FitShard {
                    map: Mutex::new(FitShardInner {
                        map: EvictingMap::new(per_shard, config.eviction),
                        pending: Vec::new(),
                        snapshot_len: 0,
                    }),
                    warm: Published::new(FitSnapshot::default()),
                })
                .collect(),
            counters: Counters::default(),
            injector: None,
        }
    }

    /// Test-only in spirit: wires a fault injector into the lookup paths
    /// ([`FaultSite::FitCacheProbe`]) so the chaos harness can poison the
    /// cache lock mid-probe and force misses.
    pub fn with_injector(config: CacheConfig, injector: Arc<dyn FaultInjector>) -> Self {
        Self {
            injector: injector.active().then_some(injector),
            ..Self::new(config)
        }
    }

    /// Rebinds the probe counters onto `registry` (series
    /// `uaq_cache_probes_total{cache="fit"|"fit_context"}`). Call right
    /// after construction, before any probes — earlier counts stay on the
    /// detached cells and are lost.
    pub fn instrumented(mut self, registry: &Registry) -> Self {
        self.counters = Counters::registered(registry);
        self
    }

    /// The shard owning `shape`.
    fn shard(&self, shape: &str) -> &FitShard {
        &self.shards[shard_of(shape, self.shards.len())]
    }

    /// Locks one shard's map, recovering from poison by invalidating that
    /// shard (map, pending, and published snapshot): the panicking holder
    /// may have died mid-update, and bit-transparency makes
    /// drop-and-recompute always correct.
    fn lock_shard<'a>(&'a self, shard: &'a FitShard) -> MutexGuard<'a, FitShardInner> {
        lock_recover_with(&shard.map, &self.counters.poison_recoveries, |inner| {
            inner.invalidate();
            shard.warm.store(Arc::new(FitSnapshot::default()));
        })
    }

    /// Test-only seam: locks the shard owning `shape` (the poison tests
    /// hold this guard across a panic).
    #[cfg(test)]
    fn lock_map_for(&self, shape: &str) -> MutexGuard<'_, FitShardInner> {
        self.lock_shard(self.shard(shape))
    }

    /// Exposed for the service/tests: how many shards this cache runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn probe_fault(&self) -> Option<Fault> {
        self.injector
            .as_ref()
            .and_then(|i| i.inject(FaultSite::FitCacheProbe, usize::MAX))
    }

    /// Records a locked hit on `shape` and republishes the shard's warm
    /// snapshot when enough hits accumulated (or eagerly while the
    /// snapshot is empty). Skipped entirely when a fault injector is
    /// wired in: the chaos schedules predate snapshots and their replay
    /// determinism depends on every probe taking the locked path.
    fn note_warm_hit(&self, shard: &FitShard, inner: &mut FitShardInner, shape: &str) {
        if self.injector.is_some() {
            return;
        }
        if !inner.pending.iter().any(|p| p == shape) {
            inner.pending.push(shape.to_owned());
        }
        if inner.pending.len() >= PUBLISH_BATCH || inner.snapshot_len == 0 {
            self.publish_locked(shard, inner);
        }
    }

    /// Rebuilds and swaps in the shard's snapshot: previous snapshot keys
    /// plus pending hits, filtered to what the map still holds (so the
    /// snapshot size is bounded by the shard capacity).
    fn publish_locked(&self, shard: &FitShard, inner: &mut FitShardInner) {
        let prev = shard.warm.load();
        let mut shapes: HashMap<String, ShapeSnap> = HashMap::new();
        for key in prev.shapes.keys().chain(inner.pending.iter()) {
            if shapes.contains_key(key) {
                continue;
            }
            if let Some(entry) = inner.map.peek(key) {
                shapes.insert(
                    key.clone(),
                    ShapeSnap {
                        contexts: entry.contexts.clone(),
                        fits: entry
                            .fits
                            .iter()
                            .map(|(s, f)| (s.clone(), Arc::clone(f)))
                            .collect(),
                    },
                );
            }
        }
        inner.pending.clear();
        inner.snapshot_len = shapes.len();
        shard.warm.store(Arc::new(FitSnapshot { shapes }));
    }

    pub fn stats(&self) -> CacheStats {
        let (mut shapes, mut evictions) = (0, 0);
        for shard in &self.shards {
            let inner = self.lock_shard(shard);
            shapes += inner.map.len();
            evictions += inner.map.evictions();
        }
        CacheStats {
            context_hits: self.counters.context_hits.get(),
            context_misses: self.counters.context_misses.get(),
            fit_hits: self.counters.fit_hits.get(),
            fit_misses: self.counters.fit_misses.get(),
            shapes,
            shape_evictions: evictions,
            poison_recoveries: self.counters.poison_recoveries.get(),
            ..CacheStats::default()
        }
    }

    /// Drops every entry and every published snapshot (counters are
    /// retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = self.lock_shard(shard);
            inner.invalidate();
            shard.warm.store(Arc::new(FitSnapshot::default()));
        }
    }

    fn empty_entry(&self) -> ShapeEntry {
        ShapeEntry {
            contexts: None,
            fits: EvictingMap::new(self.config.max_fits_per_shape, self.config.eviction),
        }
    }
}

impl Default for SharedFitCache {
    fn default() -> Self {
        Self::new(CacheConfig::default())
    }
}

impl FitCache for SharedFitCache {
    fn get_contexts(&self, shape: &str) -> Option<Arc<Vec<NodeCostContext>>> {
        let shard = self.shard(shape);
        // Warm path: the published snapshot, no map lock. Disabled under
        // a fault injector so chaos replays keep their locked-path
        // schedules.
        if self.injector.is_none() {
            if let Some(ctxs) = shard
                .warm
                .load()
                .shapes
                .get(shape)
                .and_then(|s| s.contexts.clone())
            {
                self.counters.context_hits.inc();
                return Some(ctxs);
            }
        }
        let mut inner = self.lock_shard(shard);
        let forced_miss = match self.probe_fault() {
            Some(Fault::ProbeMiss) => true,
            // A `Panic` fires while the guard is held, poisoning the
            // lock — the scenario `lock_shard` recovery exists for.
            Some(f) => {
                crate::fault::apply(f, FaultSite::FitCacheProbe);
                false
            }
            None => false,
        };
        let hit = if forced_miss {
            None
        } else {
            inner.map.get(shape).and_then(|e| e.contexts.clone())
        };
        if hit.is_some() {
            self.note_warm_hit(shard, &mut inner, shape);
        }
        drop(inner);
        match &hit {
            Some(_) => self.counters.context_hits.inc(),
            None => self.counters.context_misses.inc(),
        };
        hit
    }

    fn put_contexts(&self, shape: &str, contexts: &Arc<Vec<NodeCostContext>>) {
        let shard = self.shard(shape);
        let mut inner = self.lock_shard(shard);
        if let Some(entry) = inner.map.peek_mut(shape) {
            entry.contexts.get_or_insert_with(|| Arc::clone(contexts));
        } else {
            let mut entry = self.empty_entry();
            entry.contexts = Some(Arc::clone(contexts));
            inner.map.try_insert(shape.to_owned(), entry);
        }
    }

    fn get_fits(&self, shape: &str, sig: &FitSignature) -> Option<Arc<NodeFits>> {
        let shard = self.shard(shape);
        if self.injector.is_none() {
            if let Some(fits) = shard
                .warm
                .load()
                .shapes
                .get(shape)
                .and_then(|s| s.fits.get(sig).cloned())
            {
                self.counters.fit_hits.inc();
                return Some(fits);
            }
        }
        let mut inner = self.lock_shard(shard);
        let forced_miss = match self.probe_fault() {
            Some(Fault::ProbeMiss) => true,
            Some(f) => {
                crate::fault::apply(f, FaultSite::FitCacheProbe);
                false
            }
            None => false,
        };
        let hit = if forced_miss {
            None
        } else {
            inner
                .map
                .get(shape)
                .and_then(|e| e.fits.get(sig).map(|f| Arc::clone(f)))
        };
        if hit.is_some() {
            self.note_warm_hit(shard, &mut inner, shape);
        }
        drop(inner);
        match &hit {
            Some(_) => self.counters.fit_hits.inc(),
            None => self.counters.fit_misses.inc(),
        };
        hit
    }

    fn put_fits(&self, shape: &str, sig: &FitSignature, fits: &Arc<NodeFits>) {
        let shard = self.shard(shape);
        let mut inner = self.lock_shard(shard);
        if !inner.map.contains(shape) && !inner.map.try_insert(shape.to_owned(), self.empty_entry())
        {
            return;
        }
        if let Some(entry) = inner.map.peek_mut(shape) {
            if !entry.fits.contains(sig) {
                entry.fits.try_insert(sig.clone(), Arc::clone(fits));
            }
        }
    }
}

/// A point-in-time snapshot of [`SharedSelEstCache`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelCacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
    pub evictions: u64,
    /// Poisoned-lock recoveries (see [`CacheStats::poison_recoveries`]).
    pub poison_recoveries: u64,
}

/// One sel-cache shard; mirrors [`FitShard`].
struct SelShard {
    map: Mutex<SelShardInner>,
    warm: Published<HashMap<String, SelEstimates>>,
}

struct SelShardInner {
    map: EvictingMap<String, SelEstimates>,
    pending: Vec<String>,
    snapshot_len: usize,
}

impl SelShardInner {
    fn invalidate(&mut self) {
        self.map.clear();
        self.pending.clear();
        self.snapshot_len = 0;
    }
}

/// Thread-safe selectivity-estimate cache: fully qualified instance key →
/// [`SelEstimates`]. The key already encodes shape, catalog fingerprint,
/// literal key, sample fingerprint, and the aggregate-cardinality source
/// (built by `Predictor::predict_with_caches`), so one instance is safe to
/// share across catalogs, sample sets, and predictor configs.
///
/// Sharded by FNV-1a of the instance key, with a per-shard published
/// snapshot serving warm reads without the map lock — the same layout and
/// caveats as [`SharedFitCache`].
pub struct SharedSelEstCache {
    shards: Vec<SelShard>,
    hits: Counter,
    misses: Counter,
    poison_recoveries: Counter,
    injector: Option<Arc<dyn FaultInjector>>,
}

impl SharedSelEstCache {
    pub fn new(max_entries: usize, eviction: EvictionPolicy) -> Self {
        Self::sharded(max_entries, eviction, DEFAULT_SHARDS)
    }

    /// Builds the cache with an explicit requested shard count (clamped
    /// exactly like [`SharedFitCache`]); `new` uses [`DEFAULT_SHARDS`].
    pub fn sharded(max_entries: usize, eviction: EvictionPolicy, shards: usize) -> Self {
        let n = effective_shards(shards, max_entries);
        let per_shard = max_entries.div_ceil(n);
        Self {
            shards: (0..n)
                .map(|_| SelShard {
                    map: Mutex::new(SelShardInner {
                        map: EvictingMap::new(per_shard, eviction),
                        pending: Vec::new(),
                        snapshot_len: 0,
                    }),
                    warm: Published::new(HashMap::new()),
                })
                .collect(),
            hits: Counter::detached(),
            misses: Counter::detached(),
            poison_recoveries: Counter::detached(),
            injector: None,
        }
    }

    /// Wires a fault injector into the lookup path
    /// ([`FaultSite::SelCacheProbe`]); see [`SharedFitCache::with_injector`].
    pub fn with_injector(
        max_entries: usize,
        eviction: EvictionPolicy,
        injector: Arc<dyn FaultInjector>,
    ) -> Self {
        Self {
            injector: injector.active().then_some(injector),
            ..Self::new(max_entries, eviction)
        }
    }

    /// Rebinds the probe counters onto `registry` (series
    /// `uaq_cache_probes_total{cache="selest"}`); see
    /// [`SharedFitCache::instrumented`].
    pub fn instrumented(mut self, registry: &Registry) -> Self {
        let probe = |outcome: &str| {
            registry.counter(
                "uaq_cache_probes_total",
                &[("cache", "selest"), ("outcome", outcome)],
            )
        };
        self.hits = probe("hit");
        self.misses = probe("miss");
        self.poison_recoveries =
            registry.counter("uaq_cache_poison_recoveries_total", &[("cache", "selest")]);
        self
    }

    /// The shard owning `key`.
    fn shard(&self, key: &str) -> &SelShard {
        &self.shards[shard_of(key, self.shards.len())]
    }

    fn lock_shard<'a>(&'a self, shard: &'a SelShard) -> MutexGuard<'a, SelShardInner> {
        lock_recover_with(&shard.map, &self.poison_recoveries, |inner| {
            inner.invalidate();
            shard.warm.store(Arc::new(HashMap::new()));
        })
    }

    /// Test-only seam: locks the shard owning `key`.
    #[cfg(test)]
    fn lock_map_for(&self, key: &str) -> MutexGuard<'_, SelShardInner> {
        self.lock_shard(self.shard(key))
    }

    /// Exposed for the service/tests: how many shards this cache runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// See [`SharedFitCache::note_warm_hit`].
    fn note_warm_hit(&self, shard: &SelShard, inner: &mut SelShardInner, key: &str) {
        if self.injector.is_some() {
            return;
        }
        if !inner.pending.iter().any(|p| p == key) {
            inner.pending.push(key.to_owned());
        }
        if inner.pending.len() >= PUBLISH_BATCH || inner.snapshot_len == 0 {
            let prev = shard.warm.load();
            let mut snap: HashMap<String, SelEstimates> = HashMap::new();
            for k in prev.keys().chain(inner.pending.iter()) {
                if snap.contains_key(k) {
                    continue;
                }
                if let Some(est) = inner.map.peek(k) {
                    snap.insert(k.clone(), est.clone());
                }
            }
            inner.pending.clear();
            inner.snapshot_len = snap.len();
            shard.warm.store(Arc::new(snap));
        }
    }

    pub fn stats(&self) -> SelCacheStats {
        let (mut entries, mut evictions) = (0, 0);
        for shard in &self.shards {
            let inner = self.lock_shard(shard);
            entries += inner.map.len();
            evictions += inner.map.evictions();
        }
        SelCacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries,
            evictions,
            poison_recoveries: self.poison_recoveries.get(),
        }
    }

    /// Drops every entry and every published snapshot (counters are
    /// retained).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut inner = self.lock_shard(shard);
            inner.invalidate();
            shard.warm.store(Arc::new(HashMap::new()));
        }
    }
}

impl Default for SharedSelEstCache {
    fn default() -> Self {
        let config = CacheConfig::default();
        Self::new(config.max_sel_entries, config.eviction)
    }
}

impl SelEstCache for SharedSelEstCache {
    fn get(&self, key: &str) -> Option<SelEstimates> {
        let shard = self.shard(key);
        // Warm path: the published snapshot, no map lock (disabled under
        // a fault injector — see `SharedFitCache`).
        if self.injector.is_none() {
            if let Some(est) = shard.warm.load().get(key).cloned() {
                self.hits.inc();
                return Some(est);
            }
        }
        let mut inner = self.lock_shard(shard);
        let forced_miss = match self
            .injector
            .as_ref()
            .and_then(|i| i.inject(FaultSite::SelCacheProbe, usize::MAX))
        {
            Some(Fault::ProbeMiss) => true,
            // Fires while the guard is held: a `Panic` poisons the lock.
            Some(f) => {
                crate::fault::apply(f, FaultSite::SelCacheProbe);
                false
            }
            None => false,
        };
        let hit = if forced_miss {
            None
        } else {
            inner.map.get(key).map(|e| e.clone())
        };
        if hit.is_some() {
            self.note_warm_hit(shard, &mut inner, key);
        }
        drop(inner);
        match &hit {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        hit
    }

    fn put(&self, key: &str, estimates: &SelEstimates) {
        let shard = self.shard(key);
        let mut inner = self.lock_shard(shard);
        if !inner.map.contains(key) {
            inner.map.try_insert(key.to_owned(), estimates.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaq_stats::Normal;

    fn sig(mean: f64) -> FitSignature {
        FitSignature::new(8, &[Normal::new(mean, 0.01)])
    }

    fn fit_cache(policy: EvictionPolicy, max_shapes: usize) -> SharedFitCache {
        SharedFitCache::new(CacheConfig {
            max_shapes,
            eviction: policy,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn contexts_round_trip_and_count() {
        let cache = SharedFitCache::default();
        assert!(cache.get_contexts("s1").is_none());
        let ctxs = Arc::new(Vec::new());
        cache.put_contexts("s1", &ctxs);
        assert!(cache.get_contexts("s1").is_some());
        let stats = cache.stats();
        assert_eq!(stats.context_hits, 1);
        assert_eq!(stats.context_misses, 1);
        assert_eq!(stats.shapes, 1);
    }

    #[test]
    fn fits_key_on_signature() {
        let cache = SharedFitCache::default();
        let fits = Arc::new(Vec::new());
        cache.put_fits("s1", &sig(0.5), &fits);
        assert!(cache.get_fits("s1", &sig(0.5)).is_some());
        assert!(cache.get_fits("s1", &sig(0.6)).is_none());
        assert!(cache.get_fits("s2", &sig(0.5)).is_none());
        assert!((cache.stats().fit_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn reject_new_policy_is_still_selectable() {
        // The PR 2 behavior, verbatim: a full cache rejects new entries
        // but keeps serving (and touching) what it holds.
        let cache = SharedFitCache::new(CacheConfig {
            max_shapes: 1,
            max_fits_per_shape: 1,
            eviction: EvictionPolicy::RejectNew,
            ..CacheConfig::default()
        });
        let fits = Arc::new(Vec::new());
        cache.put_fits("s1", &sig(0.1), &fits);
        cache.put_fits("s1", &sig(0.2), &fits); // over per-shape bound
        cache.put_fits("s2", &sig(0.1), &fits); // over shape bound
        assert!(cache.get_fits("s1", &sig(0.1)).is_some());
        assert!(cache.get_fits("s1", &sig(0.2)).is_none());
        assert!(cache.get_fits("s2", &sig(0.1)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.shapes, 1);
        assert_eq!(stats.shape_evictions, 0);
        // Contexts for the held shape still land.
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
    }

    #[test]
    fn lru_evicts_least_recently_used_shape() {
        let cache = fit_cache(EvictionPolicy::Lru, 2);
        cache.put_contexts("a", &Arc::new(Vec::new()));
        cache.put_contexts("b", &Arc::new(Vec::new()));
        // Touch "a" so "b" is the LRU.
        assert!(cache.get_contexts("a").is_some());
        cache.put_contexts("c", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("a").is_some(), "recently used survives");
        assert!(cache.get_contexts("b").is_none(), "LRU evicted");
        assert!(cache.get_contexts("c").is_some(), "new entry admitted");
        let stats = cache.stats();
        assert_eq!(stats.shapes, 2);
        assert_eq!(stats.shape_evictions, 1);
    }

    #[test]
    fn lru_order_follows_touches_exactly() {
        let mut m: EvictingMap<&'static str, u32> = EvictingMap::new(3, EvictionPolicy::Lru);
        assert!(m.try_insert("a", 1));
        assert!(m.try_insert("b", 2));
        assert!(m.try_insert("c", 3));
        // Recency order (LRU→MRU) is now a, b, c. Touch a twice, then b:
        // order becomes c, a, b.
        m.get("a");
        m.get("a");
        m.get("b");
        assert!(m.try_insert("d", 4)); // evicts c
        assert!(!m.contains("c"));
        assert!(m.try_insert("e", 5)); // evicts a
        assert!(!m.contains("a"));
        assert!(m.contains("b") && m.contains("d") && m.contains("e"));
        assert_eq!(m.evictions(), 2);
    }

    #[test]
    fn segmented_promotion_protects_hot_entries_from_a_scan() {
        // Capacity 5 ⇒ protected segment of 4. Promote two hot entries,
        // then stream one-shot keys through: the scan churns probation
        // while every protected entry survives.
        let mut m: EvictingMap<String, u32> = EvictingMap::new(5, EvictionPolicy::Segmented);
        assert!(m.try_insert("hot1".into(), 1));
        assert!(m.try_insert("hot2".into(), 2));
        m.get("hot1"); // promote
        m.get("hot2"); // promote
        for i in 0..50 {
            m.try_insert(format!("scan{i}"), i);
        }
        assert!(m.contains("hot1"), "protected entry flushed by scan");
        assert!(m.contains("hot2"), "protected entry flushed by scan");
        assert_eq!(m.len(), 5);
        // A plain LRU of the same capacity loses both under the same scan.
        let mut lru: EvictingMap<String, u32> = EvictingMap::new(5, EvictionPolicy::Lru);
        lru.try_insert("hot1".into(), 1);
        lru.try_insert("hot2".into(), 2);
        lru.get("hot1");
        lru.get("hot2");
        for i in 0..50 {
            lru.try_insert(format!("scan{i}"), i);
        }
        assert!(!lru.contains("hot1") && !lru.contains("hot2"));
    }

    #[test]
    fn fill_paths_do_not_promote_new_shapes() {
        // Regression: the full miss sequence a service worker runs
        // (get_fits miss → get_contexts miss → put_contexts → put_fits)
        // must count as ONE use, not two — otherwise every one-shot shape
        // is promoted straight into the protected segment and an ad-hoc
        // burst demotes and flushes the genuinely hot templates.
        let cache = fit_cache(EvictionPolicy::Segmented, 5);
        for hot in ["hot1", "hot2"] {
            cache.put_contexts(hot, &Arc::new(Vec::new()));
            assert!(cache.get_contexts(hot).is_some()); // a real reuse: promote
        }
        for i in 0..50 {
            let shape = format!("adhoc{i}");
            assert!(cache.get_fits(&shape, &sig(0.5)).is_none());
            assert!(cache.get_contexts(&shape).is_none());
            cache.put_contexts(&shape, &Arc::new(Vec::new()));
            cache.put_fits(&shape, &sig(0.5), &Arc::new(Vec::new()));
        }
        assert!(
            cache.get_contexts("hot1").is_some(),
            "ad-hoc burst must not flush a protected template"
        );
        assert!(cache.get_contexts("hot2").is_some());
        assert_eq!(cache.stats().shapes, 5);
    }

    #[test]
    fn reject_new_keeps_no_recency_markers() {
        let mut m: EvictingMap<&'static str, u32> = EvictingMap::new(2, EvictionPolicy::RejectNew);
        assert!(m.try_insert("a", 1));
        assert!(m.try_insert("b", 2));
        for _ in 0..100 {
            m.get("a");
            m.get("b");
        }
        assert!(
            m.queues[0].is_empty() && m.queues[1].is_empty(),
            "RejectNew advertises zero bookkeeping"
        );
        assert!(!m.try_insert("c", 3));
        assert_eq!(m.evictions(), 0);
    }

    #[test]
    fn segmented_protected_overflow_demotes_lru_protected() {
        // Capacity 5 ⇒ protected cap 4. Promote 5 entries; the first
        // promoted is demoted back to probation and becomes evictable.
        let mut m: EvictingMap<String, u32> = EvictingMap::new(5, EvictionPolicy::Segmented);
        for (i, k) in ["a", "b", "c", "d", "e"].iter().enumerate() {
            assert!(m.try_insert((*k).into(), i as u32));
        }
        for k in ["a", "b", "c", "d", "e"] {
            m.get(k); // promote in order; promoting e demotes a
        }
        // One insert evicts from probation — which now holds exactly "a".
        assert!(m.try_insert("f".into(), 9));
        assert!(!m.contains("a"), "demoted LRU-protected entry evicted");
        for k in ["b", "c", "d", "e"] {
            assert!(m.contains(k), "{k} should still be protected");
        }
    }

    #[test]
    fn capacity_zero_behaves_as_no_cache() {
        let cache = fit_cache(EvictionPolicy::Segmented, 0);
        let fits = Arc::new(Vec::new());
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        cache.put_fits("s1", &sig(0.5), &fits);
        assert!(cache.get_contexts("s1").is_none());
        assert!(cache.get_fits("s1", &sig(0.5)).is_none());
        let stats = cache.stats();
        assert_eq!(stats.shapes, 0);
        assert_eq!(stats.shape_evictions, 0);

        let sel = SharedSelEstCache::new(0, EvictionPolicy::Lru);
        sel.put("k", &SelEstimates::from_vec(Vec::new()));
        assert!(uaq_cost::SelEstCache::get(&sel, "k").is_none());
        assert_eq!(sel.stats().entries, 0);
    }

    #[test]
    fn sel_cache_round_trips_shared_allocation() {
        let sel = SharedSelEstCache::default();
        let est = SelEstimates::from_vec(Vec::new());
        sel.put("k1", &est);
        let hit = uaq_cost::SelEstCache::get(&sel, "k1").expect("stored");
        assert!(hit.ptr_eq(&est), "hit must share the cached allocation");
        assert!(uaq_cost::SelEstCache::get(&sel, "k2").is_none());
        let stats = sel.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        sel.clear();
        assert!(uaq_cost::SelEstCache::get(&sel, "k1").is_none());
        assert_eq!(sel.stats().entries, 0);
    }

    #[test]
    fn sel_cache_eviction_counts() {
        let sel = SharedSelEstCache::new(2, EvictionPolicy::Lru);
        for k in ["a", "b", "c", "d"] {
            sel.put(k, &SelEstimates::from_vec(Vec::new()));
        }
        let stats = sel.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
        assert!(uaq_cost::SelEstCache::get(&sel, "a").is_none());
        assert!(uaq_cost::SelEstCache::get(&sel, "d").is_some());
    }

    #[test]
    fn clear_retains_counters() {
        let cache = SharedFitCache::default();
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
        cache.clear();
        assert!(cache.get_contexts("s1").is_none());
        let stats = cache.stats();
        assert_eq!(stats.shapes, 0);
        assert_eq!(stats.context_hits, 1);
        assert_eq!(stats.context_misses, 1);
    }

    #[test]
    fn lazy_queue_compaction_keeps_memory_bounded() {
        let mut m: EvictingMap<&'static str, u32> = EvictingMap::new(2, EvictionPolicy::Lru);
        m.try_insert("a", 1);
        m.try_insert("b", 2);
        for _ in 0..10_000 {
            m.get("a");
            m.get("b");
        }
        assert!(
            m.queues[0].len() <= 2 * m.len() + 8,
            "queue grew unboundedly: {}",
            m.queues[0].len()
        );
    }

    #[test]
    fn poisoned_fit_cache_recovers_by_invalidating() {
        let cache = Arc::new(SharedFitCache::default());
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        let poisoner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.lock_map_for("s1");
                panic!("poison the cache lock");
            })
        };
        assert!(poisoner.join().is_err());
        // The next probe recovers: no panic, contents invalidated, counted.
        assert!(cache.get_contexts("s1").is_none());
        let stats = cache.stats();
        assert_eq!(stats.poison_recoveries, 1);
        assert_eq!(stats.shapes, 0);
        // And the cache is fully serviceable again.
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
        assert_eq!(
            cache.stats().poison_recoveries,
            1,
            "recovered once, not per lock"
        );
    }

    #[test]
    fn poisoned_sel_cache_recovers_by_invalidating() {
        let sel = Arc::new(SharedSelEstCache::default());
        sel.put("k", &SelEstimates::from_vec(Vec::new()));
        let poisoner = {
            let sel = Arc::clone(&sel);
            std::thread::spawn(move || {
                let _guard = sel.lock_map_for("k");
                panic!("poison the sel cache lock");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(uaq_cost::SelEstCache::get(&*sel, "k").is_none());
        let stats = sel.stats();
        assert_eq!(stats.poison_recoveries, 1);
        assert_eq!(stats.entries, 0);
        sel.put("k", &SelEstimates::from_vec(Vec::new()));
        assert!(uaq_cost::SelEstCache::get(&*sel, "k").is_some());
    }

    #[test]
    fn injected_probe_miss_forces_misses_without_corrupting_contents() {
        struct AlwaysMiss;
        impl crate::fault::FaultInjector for AlwaysMiss {
            fn inject(&self, _site: FaultSite, _worker: usize) -> Option<Fault> {
                Some(Fault::ProbeMiss)
            }
        }
        let cache = SharedFitCache::with_injector(CacheConfig::default(), Arc::new(AlwaysMiss));
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_none(), "probe forced to miss");
        assert_eq!(cache.stats().shapes, 1, "the entry itself is intact");

        let sel =
            SharedSelEstCache::with_injector(64, EvictionPolicy::default(), Arc::new(AlwaysMiss));
        sel.put("k", &SelEstimates::from_vec(Vec::new()));
        assert!(uaq_cost::SelEstCache::get(&sel, "k").is_none());
        assert_eq!(sel.stats().entries, 1);
    }

    #[test]
    fn inactive_injector_is_dropped_at_construction() {
        let cache =
            SharedFitCache::with_injector(CacheConfig::default(), Arc::new(crate::fault::NoFaults));
        assert!(cache.injector.is_none(), "inactive injector adds no probes");
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
    }

    #[test]
    fn instrumented_caches_count_into_the_registry() {
        let registry = Registry::new();
        let cache = SharedFitCache::default().instrumented(&registry);
        let sel = SharedSelEstCache::default().instrumented(&registry);
        assert!(cache.get_contexts("s1").is_none());
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some());
        sel.put("k", &SelEstimates::from_vec(Vec::new()));
        assert!(uaq_cost::SelEstCache::get(&sel, "k").is_some());
        let snap = registry.snapshot();
        let probe = |cache: &str, outcome: &str| {
            snap.counter(
                "uaq_cache_probes_total",
                &[("cache", cache), ("outcome", outcome)],
            )
        };
        assert_eq!(probe("fit_context", "hit"), Some(1));
        assert_eq!(probe("fit_context", "miss"), Some(1));
        assert_eq!(probe("selest", "hit"), Some(1));
        // The same cells back `stats()` — no second bookkeeping path.
        assert_eq!(cache.stats().context_hits, 1);
        assert_eq!(sel.stats().hits, 1);
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache = Arc::new(SharedFitCache::default());
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200 {
                        let shape = format!("shape-{}", i % 10);
                        let s = sig((t * 200 + i) as f64 / 4000.0);
                        if cache.get_fits(&shape, &s).is_none() {
                            cache.put_fits(&shape, &s, &Arc::new(Vec::new()));
                        }
                        cache.put_contexts(&shape, &Arc::new(Vec::new()));
                        assert!(cache.get_contexts(&shape).is_some());
                    }
                });
            }
        });
        assert_eq!(cache.stats().shapes, 10);
    }

    #[test]
    fn hit_rates_are_nan_on_zero_probes() {
        // The unified zero-denominator convention: "no probes yet" is not
        // "0% hit rate" — it renders as n/a, matching violation_rate.
        let stats = CacheStats::default();
        assert!(stats.fit_hit_rate().is_nan());
        assert!(stats.sel_hit_rate().is_nan());
        let one_miss = CacheStats {
            fit_misses: 1,
            sel_misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(one_miss.fit_hit_rate(), 0.0, "a real 0% stays 0%");
        assert_eq!(one_miss.sel_hit_rate(), 0.0);
    }

    #[test]
    fn shard_counts_follow_capacity_clamp() {
        assert_eq!(SharedFitCache::default().shard_count(), DEFAULT_SHARDS);
        assert_eq!(fit_cache(EvictionPolicy::Lru, 2).shard_count(), 1);
        assert_eq!(fit_cache(EvictionPolicy::Lru, 0).shard_count(), 1);
        assert_eq!(SharedSelEstCache::default().shard_count(), DEFAULT_SHARDS);
        assert_eq!(
            SharedSelEstCache::new(2, EvictionPolicy::Lru).shard_count(),
            1
        );
        assert_eq!(
            SharedSelEstCache::sharded(16384, EvictionPolicy::Lru, 3).shard_count(),
            3
        );
        // Routing is deterministic and in range for every shard count.
        for shards in 1..=16 {
            let a = shard_of("shape-a", shards);
            assert!(a < shards);
            assert_eq!(a, shard_of("shape-a", shards), "routing is stable");
        }
    }

    #[test]
    fn warm_snapshot_serves_after_a_locked_hit_without_the_map_lock() {
        let cache = SharedFitCache::default();
        let ctxs = Arc::new(Vec::new());
        cache.put_contexts("s1", &ctxs);
        // First get: locked hit — publishes eagerly (snapshot was empty).
        assert!(cache.get_contexts("s1").is_some());
        // The snapshot now holds the shape: a warm read succeeds even
        // while another thread wedges the shard's map lock.
        let shard = cache.shard("s1");
        let _wedge = cache.lock_shard(shard);
        let snap = shard.warm.load();
        assert!(
            snap.shapes
                .get("s1")
                .and_then(|s| s.contexts.clone())
                .is_some(),
            "published snapshot must hold the warm shape"
        );
        assert!(
            Arc::ptr_eq(&snap.shapes["s1"].contexts.clone().unwrap(), &ctxs),
            "snapshot shares the cached allocation"
        );
    }

    #[test]
    fn sel_warm_snapshot_publishes_and_clear_invalidates_it() {
        let sel = SharedSelEstCache::default();
        let est = SelEstimates::from_vec(Vec::new());
        sel.put("k1", &est);
        assert!(uaq_cost::SelEstCache::get(&sel, "k1").is_some()); // publish
        let shard = sel.shard("k1");
        assert!(
            shard.warm.load().get("k1").is_some(),
            "snapshot published after first locked hit"
        );
        // A warm hit shares the cached allocation and counts as a hit.
        let hit = uaq_cost::SelEstCache::get(&sel, "k1").expect("warm hit");
        assert!(hit.ptr_eq(&est));
        assert_eq!(sel.stats().hits, 2);
        sel.clear();
        assert!(
            shard.warm.load().get("k1").is_none(),
            "clear must invalidate published snapshots too"
        );
        assert!(uaq_cost::SelEstCache::get(&sel, "k1").is_none());
    }

    #[test]
    fn poison_recovery_invalidates_the_published_snapshot() {
        let cache = Arc::new(SharedFitCache::default());
        cache.put_contexts("s1", &Arc::new(Vec::new()));
        assert!(cache.get_contexts("s1").is_some()); // publish snapshot
        let poisoner = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let _guard = cache.lock_map_for("s1");
                panic!("poison the shard lock");
            })
        };
        assert!(poisoner.join().is_err());
        // Until someone takes the poisoned lock, the immutable snapshot
        // keeps serving — it was published before the panic, so its
        // values are exactly what a fresh computation would produce.
        assert!(
            cache.get_contexts("s1").is_some(),
            "pre-panic snapshot is still bit-correct"
        );
        // The next lock acquisition (stats locks every shard) runs
        // recovery, which must drop the snapshot along with the map.
        assert_eq!(cache.stats().poison_recoveries, 1);
        assert!(
            cache.get_contexts("s1").is_none(),
            "warm path must not outlive the poison invalidation"
        );
    }

    #[test]
    fn sharded_fit_cache_counts_consistently_across_shards() {
        // Spread keys across all shards; per-shard stats must aggregate.
        let cache = SharedFitCache::default();
        assert_eq!(cache.shard_count(), DEFAULT_SHARDS);
        for i in 0..64 {
            let shape = format!("shape-{i}");
            cache.put_contexts(&shape, &Arc::new(Vec::new()));
            assert!(cache.get_contexts(&shape).is_some());
        }
        let stats = cache.stats();
        assert_eq!(stats.shapes, 64);
        assert_eq!(stats.context_hits, 64);
        assert_eq!(stats.context_misses, 0);
    }
}
