//! Poison-recovering lock helpers.
//!
//! `std::sync::Mutex` poisons itself when a holder panics, and every
//! `.lock().unwrap()` then propagates that panic to innocent threads — one
//! crashed worker cascades into a dead service. None of the service's
//! lock-protected structures actually has a broken-invariant problem under
//! a mid-update panic:
//!
//! * the work queue's deque and closed flag are updated in single
//!   statements (push/pop/assign) that cannot be observed half-done;
//! * the deferred queue's entries are pushed/popped whole;
//! * the caches are *bit-transparent* — every entry equals what a fresh
//!   computation would produce — so the conservatively correct recovery is
//!   to drop the contents and let the next miss recompute them.
//!
//! So poisoning here is pure collateral damage, and the correct response
//! is to recover the guard, not to die. These helpers are the only
//! sanctioned way to take a lock inside `crates/service`; CI greps for raw
//! `.lock().unwrap()` / `.lock().expect(` to keep it that way.

use std::sync::{Mutex, MutexGuard, PoisonError};
use uaq_telemetry::Counter;

/// Locks `m`, recovering the guard if a previous holder panicked. Use for
/// structures whose invariants hold after any single-statement update
/// (queues of whole items, counters).
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Locks `m`; on poison, counts the recovery, runs `on_poison` on the
/// recovered state (e.g. clear a cache whose touched entry is suspect),
/// and clears the poison flag so later lockers take the fast path again.
pub(crate) fn lock_recover_with<'a, T>(
    m: &'a Mutex<T>,
    recoveries: &Counter,
    on_poison: impl FnOnce(&mut T),
) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            recoveries.inc();
            m.clear_poison();
            let mut guard = poisoned.into_inner();
            on_poison(&mut guard);
            guard
        }
    }
}

/// An `ArcSwap`-style published snapshot built from std only: readers
/// clone an `Arc` out from under a mutex (a refcount bump — never blocked
/// on a writer holding the slot, because `store` holds the lock only for
/// the pointer swap), writers build the new immutable value off to the
/// side and swap it in whole.
///
/// This is the warm-path publication primitive for the sharded caches:
/// the mutable `EvictingMap` stays behind its shard mutex, and a read-only
/// snapshot of the hot entries is published here so a warm `predict`
/// touches no contended lock. Snapshots may lag the map (a just-inserted
/// entry appears only after the next publish); that is correct because
/// cache entries are bit-transparent — a stale snapshot can only miss,
/// never serve a wrong value.
pub(crate) struct Published<T> {
    slot: Mutex<std::sync::Arc<T>>,
}

impl<T> Published<T> {
    pub(crate) fn new(initial: T) -> Self {
        Self {
            slot: Mutex::new(std::sync::Arc::new(initial)),
        }
    }

    /// Returns the current snapshot (a refcount bump).
    pub(crate) fn load(&self) -> std::sync::Arc<T> {
        std::sync::Arc::clone(&lock_recover(&self.slot))
    }

    /// Atomically replaces the snapshot.
    pub(crate) fn store(&self, value: std::sync::Arc<T>) {
        *lock_recover(&self.slot) = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn poison(m: &Mutex<Vec<u32>>) {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = m.lock().unwrap_or_else(PoisonError::into_inner);
            panic!("poison the lock");
        }));
        assert!(result.is_err());
        assert!(m.is_poisoned());
    }

    #[test]
    fn lock_recover_survives_a_poisoned_mutex() {
        let m = Mutex::new(vec![1, 2, 3]);
        poison(&m);
        let guard = lock_recover(&m);
        assert_eq!(*guard, vec![1, 2, 3], "state survives the panic");
    }

    #[test]
    fn lock_recover_with_counts_and_clears_poison() {
        let m = Mutex::new(vec![1, 2, 3]);
        let recoveries = Counter::detached();
        {
            let guard = lock_recover_with(&m, &recoveries, |v| v.clear());
            assert_eq!(*guard, vec![1, 2, 3], "healthy lock: on_poison not run");
        }
        assert_eq!(recoveries.get(), 0, "no poison, no count");
        poison(&m);
        {
            let guard = lock_recover_with(&m, &recoveries, |v| v.clear());
            assert!(guard.is_empty(), "on_poison invalidated the state");
        }
        assert_eq!(recoveries.get(), 1);
        assert!(!m.is_poisoned(), "poison flag cleared after recovery");
        // The next lock is an ordinary fast-path lock.
        let _guard = lock_recover_with(&m, &recoveries, |_| {
            panic!("on_poison must not run on a healthy lock")
        });
        assert_eq!(recoveries.get(), 1);
    }

    #[test]
    fn published_snapshots_swap_whole_and_old_readers_keep_theirs() {
        let p = Published::new(vec![1, 2]);
        let before = p.load();
        p.store(std::sync::Arc::new(vec![3]));
        assert_eq!(*before, vec![1, 2], "old readers keep their snapshot");
        assert_eq!(*p.load(), vec![3], "new readers see the swap");
    }
}
