//! # uaq-service
//!
//! The serving layer: a multi-threaded prediction service over the
//! uncertainty-aware predictor, turning the paper's distributions into
//! online *decisions* (Wu et al. §1, §6.5.3: admission control and
//! deadline-aware scheduling via `Pr(T ≤ d)`).
//!
//! Four pieces:
//!
//! * [`PredictionService`] — a [`ShardedWorkQueue`] (per-worker deques
//!   with seeded work stealing; one shard reproduces the single MPMC
//!   [`WorkQueue`] exactly) feeding a pool of worker threads that share
//!   one [`Predictor`](uaq_core::Predictor), catalog, and sample set
//!   behind `Arc`s; each [`PredictRequest`] (plan + optional deadline +
//!   [`TenantId`]) yields a [`PredictResponse`] carrying the full
//!   [`Prediction`](uaq_core::Prediction) and an admission [`Decision`].
//! * [`SharedSelEstCache`] — the concurrent selectivity-estimate cache
//!   (implementing [`uaq_cost::SelEstCache`]): keyed on the full query
//!   *instance* (shape signature + `Plan::literal_key()` + catalog and
//!   sample fingerprints), it skips the sample pass entirely for repeated
//!   queries — the dominant cost of a warm prediction once fits are
//!   cached.
//! * [`SharedFitCache`] — the concurrent plan-shape fit cache
//!   (implementing [`uaq_cost::FitCache`]): keyed on
//!   `Plan::shape_signature()` (literals masked), it shares per-node cost
//!   contexts across literal-perturbed instances of a query template and
//!   skips the oracle-probe grid fits entirely for bit-identical repeats.
//! * [`AdmissionPolicy`] — `Pr(T ≤ budget) ≥ θ` tail-probability admission
//!   (with a defer band), plus the mean-only baseline a point predictor
//!   would be limited to. With a [`RetryPolicy`] enabled, a `Defer`
//!   verdict is no longer terminal: the request parks in a deferred queue
//!   and is re-decided on the same reply channel (recomputed budget) on
//!   every completion event, with bounded retries before a final
//!   `Reject` — no request is ever silently dropped. (The service's
//!   budget only shrinks with wall-clock time, so today the final verdict
//!   of a deferred request is `Reject`; defer→admit conversions happen in
//!   the deadline *scenario*, whose queue-aware budget can grow at a
//!   freed server — see the note in [`service`].)
//!
//! Both caches are bounded with a pluggable [`EvictionPolicy`] (segmented
//! LRU by default; PR 2's reject-new stays selectable). Responses are
//! deterministic: predictions are pure functions of (plan, catalog,
//! samples, config), and hits at either cache level are bit-identical to
//! fresh computations by construction, so worker count, scheduling order,
//! and eviction state cannot change any decision.
//!
//! ```no_run
//! use std::sync::Arc;
//! use uaq_service::{PredictionService, PredictRequest, ServiceConfig};
//! # let predictor: uaq_core::Predictor = unimplemented!();
//! # let catalog: std::sync::Arc<uaq_storage::Catalog> = unimplemented!();
//! # let samples: std::sync::Arc<uaq_storage::SampleCatalog> = unimplemented!();
//! # let plan: std::sync::Arc<uaq_engine::Plan> = unimplemented!();
//! use uaq_service::TenantId;
//! let service = PredictionService::start(predictor, catalog, samples, ServiceConfig::default());
//! let rx = service.submit(PredictRequest {
//!     id: 1,
//!     plan,
//!     deadline_ms: Some(100.0),
//!     tenant: TenantId::default(),
//! });
//! let resp = rx.recv().unwrap();
//! println!("{}: Pr(in time) = {:.3}", resp.decision.label(), resp.prob_in_time);
//! ```

pub mod admission;
pub mod cache;
pub mod fault;
pub mod queue;
pub mod service;
pub(crate) mod sync;

pub use admission::{
    shed_priority, weighted_shed_priority, AdmissionMode, AdmissionPolicy, Decision, TenantClass,
    TenantId,
};
pub use cache::{
    CacheConfig, CacheStats, EvictionPolicy, SelCacheStats, SharedFitCache, SharedSelEstCache,
    DEFAULT_SHARDS,
};
pub use fault::{
    silence_injected_panics, Fault, FaultInjector, FaultPlan, FaultSite, NoFaults,
    SeededFaultInjector, INJECTED_PANIC,
};
pub use queue::{Popped, Pushed, ShardedWorkQueue, WorkQueue};
pub use service::{
    PredictRequest, PredictResponse, PredictionService, RetryPolicy, RobustnessStats, ServedTier,
    ServiceConfig, ShedPolicy,
};
