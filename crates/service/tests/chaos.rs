//! Seeded chaos suite: the supervision invariants under fault schedules.
//!
//! Each test drives the full `PredictionService` with a
//! [`SeededFaultInjector`] firing panics, delays, and cache-probe faults
//! at every probe site, and asserts the invariants that make the serving
//! layer trustworthy under partial failure:
//!
//! * **exactly one response** per accepted request — never lost (a killed
//!   worker's request is answered by the supervisor), never duplicated;
//! * **no deadlocked shutdown** — `shutdown` completes while faults fire,
//!   and every request still in the pipeline gets a final verdict;
//! * **bit-transparent recovery** — once the injector is disarmed, warm
//!   cached predictions are bit-identical to uncached references: poisoned
//!   cache locks recovered by invalidation, never by serving suspect
//!   state.
//!
//! The schedules are seeded (same seed ⇒ same fault stream), and the
//! invariants are interleaving-independent, so the suite is deterministic
//! in what it asserts while still exploring hundreds of distinct fault
//! mixes.

use std::sync::Arc;
use std::time::Duration;
use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
use uaq_engine::{Plan, PlanBuilder, Pred};
use uaq_service::{
    silence_injected_panics, CacheConfig, Decision, FaultInjector, FaultPlan, PredictRequest,
    PredictionService, SeededFaultInjector, ServedTier, ServiceConfig, TenantClass, TenantId,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, SampleCatalog, Value};

fn setup() -> (Predictor, Arc<Catalog>, Arc<SampleCatalog>) {
    use uaq_storage::{Column, Schema, Table};
    let mut c = Catalog::new();
    let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
    let rows = (0..4000)
        .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
        .collect();
    c.add_table(Table::new("t", s, rows));
    let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
    let rows2 = (0..2000)
        .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
        .collect();
    c.add_table(Table::new("u", s2, rows2));
    let mut rng = Rng::new(19);
    let units = calibrate(
        &HardwareProfile::pc2(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = c.draw_samples(0.05, 1, &mut rng);
    (
        Predictor::new(units, PredictorConfig::default()),
        Arc::new(c),
        Arc::new(samples),
    )
}

/// Two scan shapes, one join, one filter: enough shape/instance variety to
/// exercise both cache levels and the shape profile under faults.
fn plans() -> Vec<Arc<Plan>> {
    let scan_t = {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(2000)));
        Arc::new(b.build(t))
    };
    let scan_u = {
        let mut b = PlanBuilder::new();
        let u = b.seq_scan("u", Pred::ge("y", Value::Int(700)));
        Arc::new(b.build(u))
    };
    let join = {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(1500)));
        let u = b.seq_scan("u", Pred::True);
        let j = b.hash_join(t, u, "a", "x");
        Arc::new(b.build(j))
    };
    let filtered = {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::True);
        let f = b.filter(t, Pred::between("a", Value::Int(5), Value::Int(45)));
        Arc::new(b.build(f))
    };
    vec![scan_t, scan_u, join, filtered]
}

/// The headline invariant, across 200 seeded fault schedules: every
/// accepted request gets exactly one response, and shutdown always
/// completes. Aggregated over all schedules the chaos must have actually
/// bitten — faults injected, workers respawned, degraded tiers served —
/// otherwise the suite proves nothing.
#[test]
fn two_hundred_seeded_schedules_never_lose_or_duplicate_a_response() {
    silence_injected_panics();
    let (predictor, catalog, samples) = setup();
    let plans = plans();

    let mut total_injected = 0u64;
    let mut total_respawned = 0u64;
    let mut total_degraded = 0u64;
    let mut total_panics = 0u64;
    for seed in 0..200u64 {
        let injector = Arc::new(SeededFaultInjector::new(seed, FaultPlan::chaos()));
        let service = PredictionService::start_with_faults(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                workers: 3,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn FaultInjector>,
        );
        // 12 requests over 4 plans, deadlines mixed (None / generous /
        // already-blown) — every decision path under fire.
        let n = 12u64;
        let receivers: Vec<_> = (0..n)
            .map(|i| {
                let deadline = match i % 3 {
                    0 => None,
                    1 => Some(1e6),
                    _ => Some(-1.0),
                };
                service.submit(PredictRequest {
                    id: seed * 1000 + i,
                    plan: Arc::clone(&plans[(i as usize) % plans.len()]),
                    deadline_ms: deadline,
                    tenant: TenantId::default(),
                })
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let resp = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} lost ({e})"));
            assert_eq!(resp.id, seed * 1000 + i as u64, "seed {seed}: id mixup");
            assert!(
                rx.try_recv().is_err(),
                "seed {seed}: request {i} answered twice"
            );
            if resp.tier != ServedTier::Full {
                total_degraded += 1;
            }
        }
        let stats = service.robustness_stats();
        total_respawned += stats.workers_respawned;
        total_panics += stats.worker_panics + stats.ladder_panics_caught;
        total_injected += injector.injected();
        // Telemetry exact-count invariant, per schedule: every response
        // received above was counted under exactly one tier, no matter
        // which path (ladder, supervisor, shed) produced it.
        let snap = service.telemetry();
        assert_eq!(
            snap.counter_total("uaq_requests_served_total"),
            n,
            "seed {seed}: tier counters must sum to responses"
        );
        assert_eq!(
            snap.counter("uaq_requests_total", &[]),
            Some(n),
            "seed {seed}: every submit counted"
        );
        // Shutdown under a still-armed injector must terminate.
        service.shutdown();
    }
    assert!(total_injected > 0, "chaos schedules must inject faults");
    assert!(total_panics > 0, "some schedules must panic somewhere");
    assert!(total_respawned > 0, "some schedules must kill workers");
    assert!(total_degraded > 0, "some requests must serve degraded");
}

/// Bit-transparency survives recovery: after a chaos phase (poisoned
/// cache locks, killed workers, forced misses), disarming the injector
/// returns the service to full-tier serving whose predictions are
/// bit-identical to the inline uncached reference — recovered caches hold
/// nothing suspect.
#[test]
fn caches_serve_bit_identical_predictions_after_recovery() {
    silence_injected_panics();
    let (predictor, catalog, samples) = setup();
    let plans = plans();
    let injector = Arc::new(SeededFaultInjector::new(0xFA11, FaultPlan::chaos()));
    let service = PredictionService::start_with_faults(
        predictor.clone(),
        Arc::clone(&catalog),
        Arc::clone(&samples),
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    );
    // Chaos phase: enough traffic to poison and recover the caches.
    let receivers: Vec<_> = (0..80u64)
        .map(|i| {
            service.submit(PredictRequest {
                id: i,
                plan: Arc::clone(&plans[(i as usize) % plans.len()]),
                deadline_ms: None,
                tenant: TenantId::default(),
            })
        })
        .collect();
    for rx in receivers {
        rx.recv_timeout(Duration::from_secs(30)).expect("answered");
    }
    assert!(injector.injected() > 0, "the chaos phase must inject");

    // Recovery phase: healthy service, warm caches.
    injector.disarm();
    for (i, plan) in plans.iter().enumerate() {
        let reference = predictor.predict(plan, &catalog, &samples);
        let first = service.predict_blocking(Arc::clone(plan), None);
        let second = service.predict_blocking(Arc::clone(plan), None);
        for (label, resp) in [("first", &first), ("second", &second)] {
            assert_eq!(
                resp.tier,
                ServedTier::Full,
                "plan {i} {label}: healthy service serves tier 0"
            );
            assert_eq!(
                resp.prediction.mean_ms().to_bits(),
                reference.mean_ms().to_bits(),
                "plan {i} {label}: mean drifted after recovery"
            );
            assert_eq!(
                resp.prediction.var().to_bits(),
                reference.var().to_bits(),
                "plan {i} {label}: variance drifted after recovery"
            );
            assert_eq!(
                resp.prediction.sel_estimates.canonical_bytes(),
                reference.sel_estimates.canonical_bytes(),
                "plan {i} {label}: selectivity traces drifted after recovery"
            );
        }
        assert!(
            !second.prediction.sample_pass_ran,
            "plan {i}: the repeat must be served warm"
        );
    }
    service.shutdown();
}

/// PR 8: the chaos invariants are shard-count independent. Seeded
/// schedules run against the fully sharded configuration (3 queue shards ×
/// 3 workers, 4 cache shards, a half-weight tenant class in the traffic):
/// exactly one response per request, tier counters sum to responses,
/// per-tenant shed counters sum to the total shed count, and once the
/// injector disarms the warm path serves bit-identical to the inline
/// unsharded reference.
#[test]
fn sharded_config_preserves_every_chaos_invariant() {
    silence_injected_panics();
    let (predictor, catalog, samples) = setup();
    let plans = plans();
    let light = TenantId(1);
    let mut total_shed = 0u64;
    for seed in 300..324u64 {
        let injector = Arc::new(SeededFaultInjector::new(seed, FaultPlan::chaos()));
        let service = PredictionService::start_with_faults(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                workers: 3,
                queue_shards: 3,
                queue_capacity: Some(4),
                cache: CacheConfig {
                    shards: 4,
                    ..Default::default()
                },
                tenants: vec![(
                    light,
                    TenantClass {
                        shed_weight: 0.5,
                        ..TenantClass::default()
                    },
                )],
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn FaultInjector>,
        );
        let n = 24u64;
        let receivers: Vec<_> = (0..n)
            .map(|i| {
                service.submit(PredictRequest {
                    id: i,
                    plan: Arc::clone(&plans[(i as usize) % plans.len()]),
                    deadline_ms: (i % 2 == 0).then_some(50.0),
                    tenant: if i % 3 == 0 {
                        light
                    } else {
                        TenantId::default()
                    },
                })
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let resp = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} lost ({e})"));
            assert_eq!(resp.id, i as u64, "seed {seed}: id mixup");
            assert!(
                rx.try_recv().is_err(),
                "seed {seed}: request {i} answered twice"
            );
        }
        let snap = service.telemetry();
        assert_eq!(
            snap.counter_total("uaq_requests_served_total"),
            n,
            "seed {seed}: tier counters must sum to responses"
        );
        let shed = snap
            .counter("uaq_requests_served_total", &[("tier", "shed")])
            .unwrap_or(0);
        assert_eq!(
            snap.counter_total("uaq_requests_shed_total"),
            shed,
            "seed {seed}: per-tenant shed series must sum to total sheds"
        );
        total_shed += shed;
        // Recovery: the sharded warm path is bit-transparent too.
        injector.disarm();
        for (i, plan) in plans.iter().enumerate() {
            let reference = predictor.predict(plan, &catalog, &samples);
            let first = service.predict_blocking(Arc::clone(plan), None);
            let second = service.predict_blocking(Arc::clone(plan), None);
            for (label, resp) in [("first", &first), ("second", &second)] {
                assert_eq!(resp.tier, ServedTier::Full, "seed {seed} plan {i} {label}");
                assert_eq!(
                    resp.prediction.mean_ms().to_bits(),
                    reference.mean_ms().to_bits(),
                    "seed {seed} plan {i} {label}: mean drifted"
                );
                assert_eq!(
                    resp.prediction.var().to_bits(),
                    reference.var().to_bits(),
                    "seed {seed} plan {i} {label}: variance drifted"
                );
            }
        }
        service.shutdown();
    }
    assert!(
        total_shed > 0,
        "the sharded schedules must actually shed somewhere"
    );
}

/// Shutdown while faults fire: a burst of fire-and-forget requests is
/// followed immediately by `shutdown()`. It must terminate (killed
/// workers may not strand the drain) and every accepted request must
/// still receive exactly one final verdict.
#[test]
fn shutdown_under_fire_answers_every_accepted_request() {
    silence_injected_panics();
    let (predictor, catalog, samples) = setup();
    let plans = plans();
    for seed in 200..224u64 {
        let injector = Arc::new(SeededFaultInjector::new(seed, FaultPlan::chaos()));
        let service = PredictionService::start_with_faults(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                workers: 3,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn FaultInjector>,
        );
        let receivers: Vec<_> = (0..40u64)
            .map(|i| {
                service.submit(PredictRequest {
                    id: i,
                    plan: Arc::clone(&plans[(i as usize) % plans.len()]),
                    deadline_ms: (i % 2 == 0).then_some(50.0),
                    tenant: TenantId::default(),
                })
            })
            .collect();
        // The registry outlives the service handle, so the tier counters
        // can be audited after the shutdown drain resolves everything.
        let registry = Arc::clone(service.registry());
        // No draining, no waiting: shut down into the backlog.
        service.shutdown();
        for (i, rx) in receivers.into_iter().enumerate() {
            let resp = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} lost at shutdown ({e})"));
            assert_eq!(resp.id, i as u64);
            assert!(
                rx.try_recv().is_err(),
                "seed {seed}: request {i} answered twice"
            );
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter_total("uaq_requests_served_total"),
            40,
            "seed {seed}: tier counters must sum to responses even through \
             a shutdown drain"
        );
    }
}

/// Malformed plans under fire: a stream mixing valid plans with every
/// class of statically-invalid plan (unknown table, unknown column,
/// string-vs-numeric ordering, duplicate join output columns) must keep
/// the one-response contract — each malformed submission earns exactly
/// one `Reject` on the `invalid` tier carrying a typed diagnostic, each
/// valid one is served normally, and the tier counters still sum to the
/// total even while the injector kills workers around the edge check.
#[test]
fn malformed_submissions_get_exactly_one_typed_rejection() {
    silence_injected_panics();
    let (predictor, catalog, samples) = setup();
    let valid = plans();
    let unknown_table = {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("nosuch", Pred::True);
        Arc::new(b.build(s))
    };
    let unknown_column = {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("ghost", Value::Int(5)));
        Arc::new(b.build(s))
    };
    let str_ordering = {
        let mut b = PlanBuilder::new();
        let s = b.seq_scan("t", Pred::lt("b", Value::str("zzz")));
        Arc::new(b.build(s))
    };
    let dup_join = {
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("t", Pred::True);
        let r = b.seq_scan("t", Pred::True);
        let j = b.hash_join(l, r, "a", "a");
        Arc::new(b.build(j))
    };
    let malformed = [unknown_table, unknown_column, str_ordering, dup_join];
    for seed in 300..316u64 {
        let injector = Arc::new(SeededFaultInjector::new(seed, FaultPlan::chaos()));
        let service = PredictionService::start_with_faults(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                workers: 3,
                ..Default::default()
            },
            Arc::clone(&injector) as Arc<dyn FaultInjector>,
        );
        // Alternate valid and malformed so both paths interleave on the
        // same workers within one schedule.
        let n = 16u64;
        let receivers: Vec<_> = (0..n)
            .map(|i| {
                let plan = if i % 2 == 0 {
                    &valid[(i as usize / 2) % valid.len()]
                } else {
                    &malformed[(i as usize / 2) % malformed.len()]
                };
                service.submit(PredictRequest {
                    id: i,
                    plan: Arc::clone(plan),
                    deadline_ms: Some(1e6),
                    tenant: TenantId::default(),
                })
            })
            .collect();
        for (i, rx) in receivers.into_iter().enumerate() {
            let resp = rx
                .recv_timeout(Duration::from_secs(30))
                .unwrap_or_else(|e| panic!("seed {seed}: request {i} lost ({e})"));
            assert_eq!(resp.id, i as u64, "seed {seed}: id mixup");
            assert!(
                rx.try_recv().is_err(),
                "seed {seed}: request {i} answered twice"
            );
            if i % 2 == 1 {
                // A worker killed mid-request may answer a malformed plan
                // from the supervisor's static fallback instead of the
                // edge check; either way it is exactly one response, and
                // an `Invalid` verdict always carries its diagnostic.
                if resp.tier == ServedTier::Invalid {
                    assert_eq!(resp.decision, Decision::Reject, "seed {seed}: req {i}");
                    assert!(
                        resp.plan_error.is_some(),
                        "seed {seed}: invalid response must carry the typed defect"
                    );
                    assert!(resp.prob_in_time.is_nan(), "seed {seed}: req {i}");
                } else {
                    assert_eq!(
                        resp.tier,
                        ServedTier::Static,
                        "seed {seed}: malformed request {i} served a prediction tier"
                    );
                }
            } else {
                assert_ne!(
                    resp.tier,
                    ServedTier::Invalid,
                    "seed {seed}: valid request {i} rejected as invalid"
                );
                assert!(resp.plan_error.is_none(), "seed {seed}: req {i}");
            }
        }
        let snap = service.telemetry();
        assert_eq!(
            snap.counter_total("uaq_requests_served_total"),
            n,
            "seed {seed}: tier counters must sum to responses"
        );
        service.shutdown();
    }
}
