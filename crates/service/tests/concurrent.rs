//! Service integration: concurrent clients against the worker pool.
//!
//! Pins down the property the service is designed around: with a fixed
//! seed, admission decisions are **deterministic** — independent of worker
//! count, client interleaving, and cache state — because predictions are
//! pure and cache hits are bit-identical to fresh fits. This is the test
//! CI runs with and without `--features parallel`.

use std::sync::Arc;
use uaq_core::{Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile};
use uaq_engine::{plan_query, Plan};
use uaq_service::{
    AdmissionPolicy, CacheConfig, Decision, PredictRequest, PredictionService, ServiceConfig,
    TenantId,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, SampleCatalog};
use uaq_workloads::Benchmark;

const SEED: u64 = 2014;

fn setup() -> (Predictor, Arc<Catalog>, Arc<SampleCatalog>, Vec<Arc<Plan>>) {
    let catalog = uaq_datagen::GenConfig::new(0.002, 0.0, SEED).build();
    let mut rng = Rng::new(SEED ^ 0xF1);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    // A mixed request stream: every SELJOIN template instance plus a slice
    // of the MICRO grid (keeps the test fast while covering scans, joins,
    // and multi-way shapes).
    let mut plans: Vec<Arc<Plan>> = Vec::new();
    for spec in Benchmark::SelJoin.queries(&catalog, 1, &mut rng) {
        plans.push(Arc::new(plan_query(&spec, &catalog)));
    }
    for spec in Benchmark::Micro
        .queries(&catalog, 1, &mut rng)
        .iter()
        .step_by(6)
    {
        plans.push(Arc::new(plan_query(spec, &catalog)));
    }
    (
        Predictor::new(units, PredictorConfig::default()),
        Arc::new(catalog),
        Arc::new(samples),
        plans,
    )
}

/// Deadline per request: a deterministic multiple of the reference mean so
/// the stream contains comfortable, borderline, and hopeless budgets.
fn deadline_for(reference: &[f64], i: usize) -> Option<f64> {
    match i % 4 {
        0 => None,
        1 => Some(reference[i] * 2.0),  // comfortable
        2 => Some(reference[i] * 1.02), // borderline
        _ => Some(reference[i] * 0.5),  // hopeless
    }
}

#[test]
fn concurrent_clients_get_deterministic_decisions() {
    let (predictor, catalog, samples, plans) = setup();

    // Sequential reference: predict + decide inline, no service.
    let policy = AdmissionPolicy::uncertainty_aware(0.9);
    let reference_means: Vec<f64> = plans
        .iter()
        .map(|p| predictor.predict(p, &catalog, &samples).mean_ms())
        .collect();
    let reference: Vec<(Decision, u64)> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let pred = predictor.predict(p, &catalog, &samples);
            let (d, prob) = policy.decide(&pred, deadline_for(&reference_means, i));
            (d, prob.to_bits())
        })
        .collect();

    // 4 client threads × 2 rounds each, all plans, against a 4-worker pool.
    let service = PredictionService::start(
        predictor,
        catalog,
        samples,
        ServiceConfig {
            workers: 4,
            policy,
            ..Default::default()
        },
    );
    let service = Arc::new(service);
    let clients = 4;
    let rounds = 2;
    let mut handles = Vec::new();
    for client in 0..clients {
        let service = Arc::clone(&service);
        let plans = plans.clone();
        let means = reference_means.clone();
        handles.push(std::thread::spawn(move || {
            let mut got: Vec<(u64, Decision, u64)> = Vec::new();
            for round in 0..rounds {
                let receivers: Vec<_> = plans
                    .iter()
                    .enumerate()
                    .map(|(i, plan)| {
                        let id = ((client * rounds + round) * plans.len() + i) as u64;
                        (
                            i,
                            id,
                            service.submit(PredictRequest {
                                id,
                                plan: Arc::clone(plan),
                                deadline_ms: deadline_for(&means, i),
                                tenant: TenantId::default(),
                            }),
                        )
                    })
                    .collect();
                for (i, id, rx) in receivers {
                    let resp = rx.recv().expect("response arrives");
                    assert_eq!(resp.id, id, "responses are matched by channel");
                    got.push((i as u64, resp.decision, resp.prob_in_time.to_bits()));
                }
            }
            got
        }));
    }

    let mut responses = 0;
    for h in handles {
        for (plan_idx, decision, prob_bits) in h.join().expect("client thread") {
            let (ref_d, ref_prob) = reference[plan_idx as usize];
            assert_eq!(decision, ref_d, "plan {plan_idx}: decision drifted");
            assert_eq!(prob_bits, ref_prob, "plan {plan_idx}: probability drifted");
            responses += 1;
        }
    }
    assert_eq!(
        responses,
        clients * rounds * plans.len(),
        "no lost responses"
    );

    // The stream repeats every plan 8×: the warm passes must actually hit.
    let stats = service.cache_stats();
    assert!(
        stats.fit_hits > stats.fit_misses,
        "repeated identical requests should be fit hits: {stats:?}"
    );
}

/// PR 8 golden differential: the sharded configuration (work-stealing
/// queue shards, sharded caches, warm snapshots) must serve bit-identical
/// predictions and decisions to the unsharded baseline on both the cold
/// and the warm pass, across MICRO, SELJOIN, and TPCH shapes.
#[test]
fn sharded_and_unsharded_serving_are_bit_identical() {
    let (predictor, catalog, samples, mut plans) = setup();
    let mut rng = Rng::new(SEED ^ 0x7C);
    for spec in Benchmark::Tpch
        .queries(&catalog, 1, &mut rng)
        .iter()
        .step_by(3)
    {
        plans.push(Arc::new(plan_query(spec, &catalog)));
    }
    let run = |workers: usize, queue_shards: usize, cache_shards: usize| {
        let service = PredictionService::start(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                workers,
                queue_shards,
                cache: CacheConfig {
                    shards: cache_shards,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        // Two passes: the first is all cache misses, the second is the
        // snapshot-served warm path.
        let mut out: Vec<(Decision, u64, u64, u64)> = Vec::new();
        for _pass in 0..2 {
            for p in &plans {
                let r = service.predict_blocking(Arc::clone(p), Some(60.0));
                out.push((
                    r.decision,
                    r.prob_in_time.to_bits(),
                    r.prediction.mean_ms().to_bits(),
                    r.prediction.var().to_bits(),
                ));
            }
        }
        service.shutdown();
        out
    };
    let baseline = run(1, 1, 1);
    assert_eq!(baseline, run(4, 0, 8), "per-worker sharding drifted");
    assert_eq!(baseline, run(2, 3, 2), "odd shard counts drifted");
}

#[test]
fn single_worker_and_many_workers_agree() {
    let (predictor, catalog, samples, plans) = setup();
    let run = |workers: usize| -> Vec<(Decision, u64)> {
        let service = PredictionService::start(
            predictor.clone(),
            Arc::clone(&catalog),
            Arc::clone(&samples),
            ServiceConfig {
                workers,
                ..Default::default()
            },
        );
        let out = plans
            .iter()
            .map(|p| {
                let r = service.predict_blocking(Arc::clone(p), Some(50.0));
                (r.decision, r.prob_in_time.to_bits())
            })
            .collect();
        service.shutdown();
        out
    };
    assert_eq!(run(1), run(8));
}
