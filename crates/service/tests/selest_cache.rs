//! Selectivity-estimate cache correctness: the differential test harness.
//!
//! The cache's contract is the same as the fit cache's, one stage earlier:
//! a prediction served from cached estimates must be **bit-identical** to
//! an uncached one — mean, variance, every breakdown term, every quantile,
//! and every per-node selectivity trace — across cold, warm,
//! literal-perturbed, and evict-then-refill paths, under any worker
//! interleaving. These tests are the proof, not an afterthought: every
//! assertion is exact bit equality, no epsilons anywhere.

use proptest::prelude::*;
use std::sync::Arc;
use uaq_core::{Prediction, Predictor, PredictorConfig};
use uaq_cost::{calibrate, CalibrationConfig, HardwareProfile, SelEstCache};
use uaq_engine::{plan_query, Plan, PlanBuilder, Pred};
use uaq_service::{
    CacheConfig, EvictionPolicy, PredictRequest, PredictionService, ServiceConfig, SharedFitCache,
    SharedSelEstCache, TenantId,
};
use uaq_stats::Rng;
use uaq_storage::{Catalog, SampleCatalog, Value};
use uaq_workloads::Benchmark;

fn setup() -> (Predictor, Catalog, SampleCatalog) {
    let catalog = uaq_datagen::GenConfig::new(0.002, 0.0, 42).build();
    let mut rng = Rng::new(7);
    let units = calibrate(
        &HardwareProfile::pc1(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = catalog.draw_samples(0.05, 2, &mut rng);
    (
        Predictor::new(units, PredictorConfig::default()),
        catalog,
        samples,
    )
}

/// Cheap hand-built catalog for per-case property tests and the stress
/// test (the datagen catalog is too expensive to rebuild dozens of times).
fn small_setup() -> (Predictor, Catalog, SampleCatalog) {
    use uaq_storage::{Column, Schema, Table};
    let mut c = Catalog::new();
    let s = Schema::new(vec![Column::int("a"), Column::int("b")]);
    let rows = (0..4000)
        .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
        .collect();
    c.add_table(Table::new("t", s, rows));
    let s2 = Schema::new(vec![Column::int("x"), Column::int("y")]);
    let rows2 = (0..2000)
        .map(|i| vec![Value::Int((i % 50) as i64), Value::Int(i as i64)])
        .collect();
    c.add_table(Table::new("u", s2, rows2));
    let mut rng = Rng::new(19);
    let units = calibrate(
        &HardwareProfile::pc2(),
        &CalibrationConfig::default(),
        &mut rng,
    );
    let samples = c.draw_samples(0.05, 1, &mut rng);
    (
        Predictor::new(units, PredictorConfig::default()),
        c,
        samples,
    )
}

/// Exact equality on every field a prediction is built from: the
/// distribution, the variance breakdown, representative quantiles, and the
/// full per-node selectivity traces — bit patterns, no epsilons.
fn assert_bit_identical(a: &Prediction, b: &Prediction, what: &str) {
    assert_eq!(a.mean_ms().to_bits(), b.mean_ms().to_bits(), "{what}: mean");
    assert_eq!(a.var().to_bits(), b.var().to_bits(), "{what}: var");
    let (ba, bb) = (&a.breakdown, &b.breakdown);
    for (x, y, field) in [
        (ba.unit_variance, bb.unit_variance, "unit_variance"),
        (
            ba.selectivity_exact,
            bb.selectivity_exact,
            "selectivity_exact",
        ),
        (
            ba.covariance_bounds,
            bb.covariance_bounds,
            "covariance_bounds",
        ),
        (ba.interaction, bb.interaction, "interaction"),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: {field}");
    }
    // Quantiles: the distribution tails admission control thresholds on.
    for p in [0.5, 0.70, 0.95, 0.99] {
        let (lo_a, hi_a) = a.confidence_interval_ms(p);
        let (lo_b, hi_b) = b.confidence_interval_ms(p);
        assert_eq!(lo_a.to_bits(), lo_b.to_bits(), "{what}: q{p} lo");
        assert_eq!(hi_a.to_bits(), hi_b.to_bits(), "{what}: q{p} hi");
    }
    // Per-node traces, every field (canonical_bytes covers rho, var,
    // per-leaf components, sample sizes, and the source tag bit-exactly).
    assert_eq!(
        a.sel_estimates.canonical_bytes(),
        b.sel_estimates.canonical_bytes(),
        "{what}: per-node selectivity traces"
    );
}

/// The golden test of the ISSUE: across MICRO, SELJOIN, and TPCH, a
/// prediction served through both cache levels — cold (miss + fill), warm
/// (sample pass and fits both skipped), and literal-perturbed-warm (shape
/// machinery shared, estimates recomputed) — is bit-identical to the
/// uncached reference.
#[test]
fn cold_warm_and_perturbed_predictions_bit_identical_on_all_workloads() {
    let (predictor, catalog, samples) = setup();
    let fit_cache = SharedFitCache::default();
    let sel_cache = SharedSelEstCache::default();
    let mut rng = Rng::new(123);
    for benchmark in Benchmark::ALL {
        let specs = benchmark.queries(&catalog, 1, &mut rng);
        for spec in &specs {
            let plan = plan_query(spec, &catalog);
            let reference = predictor.predict(&plan, &catalog, &samples);
            let cold =
                predictor.predict_with_caches(&plan, &catalog, &samples, &fit_cache, &sel_cache);
            let warm =
                predictor.predict_with_caches(&plan, &catalog, &samples, &fit_cache, &sel_cache);
            let label = format!("{}/{}", benchmark.label(), spec.name);
            assert_bit_identical(&reference, &cold, &format!("{label} cold"));
            assert_bit_identical(&reference, &warm, &format!("{label} warm"));
            // The warm pass skipped the sample pass: its estimates are the
            // very allocation the cold pass cached, not a recomputation.
            assert!(
                warm.sel_estimates.ptr_eq(&cold.sel_estimates),
                "{label}: warm pass must reuse the cached estimates"
            );
            assert!(
                !warm.sample_pass_ran,
                "{label}: warm pass must skip the sample pass"
            );
        }
    }
    let sel = sel_cache.stats();
    assert_eq!(sel.hits, sel.misses, "every query ran cold once, warm once");
    assert!(sel.entries > 0);
}

/// A literal-perturbed repeat of a warm template: the estimate cache
/// misses (different literals ⇒ different sample-pass output), the shape
/// level still shares contexts, and the result is bit-identical to its
/// own uncached reference.
#[test]
fn literal_perturbed_warm_reuses_shape_machinery_not_estimates() {
    let (predictor, catalog, samples) = setup();
    let fit_cache = SharedFitCache::default();
    let sel_cache = SharedSelEstCache::default();
    let plan_with_cut = |cut: i64| {
        let mut b = PlanBuilder::new();
        let l = b.seq_scan("lineitem", Pred::lt("l_shipdate", Value::Int(cut)));
        b.build(l)
    };
    let p1 = plan_with_cut(800);
    let p2 = plan_with_cut(2000);
    assert_eq!(p1.shape_signature(), p2.shape_signature());
    assert_ne!(p1.literal_key(), p2.literal_key());

    predictor.predict_with_caches(&p1, &catalog, &samples, &fit_cache, &sel_cache);
    let perturbed = predictor.predict_with_caches(&p2, &catalog, &samples, &fit_cache, &sel_cache);
    let stats = fit_cache.stats();
    let sel = sel_cache.stats();
    assert_eq!(stats.context_hits, 1, "shape contexts shared: {stats:?}");
    assert_eq!(stats.shapes, 1, "one shared shape entry");
    assert_eq!(sel.hits, 0, "different literals must not hit: {sel:?}");
    assert_eq!(sel.misses, 2);
    assert_eq!(sel.entries, 2, "both instances cached for their repeats");
    assert_bit_identical(
        &predictor.predict(&p2, &catalog, &samples),
        &perturbed,
        "perturbed",
    );

    // And the perturbed instance is itself warm on repeat.
    let again = predictor.predict_with_caches(&p2, &catalog, &samples, &fit_cache, &sel_cache);
    assert!(again.sel_estimates.ptr_eq(&perturbed.sel_estimates));
    assert_eq!(sel_cache.stats().hits, 1);
}

/// Bit-identity must survive eviction and refill: with capacities far
/// below the working set, every entry is repeatedly evicted and recomputed
/// — and every single response still equals its uncached reference.
#[test]
fn predictions_stay_bit_identical_across_eviction_and_refill() {
    let (predictor, catalog, samples) = small_setup();
    let scan = |cut: i64| {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
        b.build(t)
    };
    let join = |cut: i64| {
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
        let u = b.seq_scan("u", Pred::True);
        let j = b.hash_join(t, u, "a", "x");
        b.build(j)
    };
    let plans: Vec<Plan> = vec![
        scan(500),
        scan(1500),
        scan(2500),
        join(800),
        join(1600),
        join(3200),
    ];
    let references: Vec<Prediction> = plans
        .iter()
        .map(|p| predictor.predict(p, &catalog, &samples))
        .collect();

    for policy in [
        EvictionPolicy::Lru,
        EvictionPolicy::Segmented,
        EvictionPolicy::RejectNew,
    ] {
        let fit_cache = SharedFitCache::new(CacheConfig {
            max_shapes: 1,
            max_fits_per_shape: 2,
            max_sel_entries: 2,
            eviction: policy,
            shards: 1,
        });
        let sel_cache = SharedSelEstCache::new(2, policy);
        // Three round-robin rounds over 6 instances against capacity 2:
        // every round evicts and refills under Lru/Segmented.
        for round in 0..3 {
            for (plan, reference) in plans.iter().zip(&references) {
                let got =
                    predictor.predict_with_caches(plan, &catalog, &samples, &fit_cache, &sel_cache);
                assert_bit_identical(reference, &got, &format!("{policy:?} round {round}"));
            }
        }
        let sel = sel_cache.stats();
        match policy {
            EvictionPolicy::RejectNew => assert_eq!(sel.evictions, 0, "{sel:?}"),
            _ => assert!(
                sel.evictions > 0,
                "cycling 6 instances through capacity 2 must evict: {sel:?}"
            ),
        }
        assert!(sel.entries <= 2);
    }
}

/// The same contract through the full concurrent service, with the stock
/// configuration: warm responses equal cold responses equal the inline
/// uncached reference.
#[test]
fn service_responses_bit_identical_cold_and_warm() {
    let (predictor, catalog, samples) = small_setup();
    let mut b = PlanBuilder::new();
    let t = b.seq_scan("t", Pred::lt("b", Value::Int(2200)));
    let u = b.seq_scan("u", Pred::True);
    let j = b.hash_join(t, u, "a", "x");
    let plan = Arc::new(b.build(j));
    let reference = predictor.predict(&plan, &catalog, &samples);
    let service = PredictionService::start(
        predictor,
        Arc::new(catalog),
        Arc::new(samples),
        ServiceConfig::default(),
    );
    let cold = service.predict_blocking(Arc::clone(&plan), None);
    let warm = service.predict_blocking(Arc::clone(&plan), None);
    assert_bit_identical(&reference, &cold.prediction, "service cold");
    assert_bit_identical(&reference, &warm.prediction, "service warm");
    let stats = service.cache_stats();
    assert_eq!(stats.sel_hits, 1, "{stats:?}");
    assert_eq!(stats.fit_hits, 1, "{stats:?}");
    service.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// (a) Literal-key extraction is injective on literals for a fixed
    /// shape: distinct cuts ⇒ distinct keys, equal cuts ⇒ equal keys.
    #[test]
    fn literal_key_injective_for_fixed_shape(cut_a in 1i64..3000, cut_b in 1i64..3000) {
        let scan = |cut: i64| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", Pred::and(vec![
                Pred::lt("b", Value::Int(cut)),
                Pred::in_list("a", vec![Value::Int(cut % 7), Value::Int(3)]),
            ]));
            b.build(t)
        };
        let (a, b) = (scan(cut_a), scan(cut_b));
        prop_assert_eq!(a.shape_signature(), b.shape_signature());
        if cut_a == cut_b {
            prop_assert_eq!(a.literal_key(), b.literal_key());
        } else {
            prop_assert_ne!(a.literal_key(), b.literal_key());
        }
    }

    /// (b) `shape_signature` is invariant under literal perturbation, for
    /// scans and joins alike.
    #[test]
    fn shape_signature_invariant_under_literal_perturbation(
        cut_a in 1i64..4000,
        cut_b in 1i64..4000,
        lo in 0i64..50,
    ) {
        let join = |cut: i64, lo: i64| {
            let mut b = PlanBuilder::new();
            let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
            let u = b.seq_scan("u", Pred::between("x", Value::Int(lo), Value::Int(lo + 9)));
            let j = b.hash_join(t, u, "a", "x");
            b.build(j)
        };
        let a = join(cut_a, lo);
        let b = join(cut_b, (lo + 13) % 50);
        prop_assert_eq!(a.shape_signature(), b.shape_signature());
        prop_assert_eq!(a.shape_hash(), b.shape_hash());
    }

    /// (c) Cache hit ⇒ identical `SelEstimates` bytes (and, stronger, the
    /// very same allocation).
    #[test]
    fn sel_cache_hit_returns_identical_bytes(cut in 1i64..4000, capacity in 1usize..4) {
        let (predictor, catalog, samples) = small_setup();
        let sel_cache = SharedSelEstCache::new(capacity, EvictionPolicy::Lru);
        let fit_cache = SharedFitCache::default();
        let mut b = PlanBuilder::new();
        let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
        let plan = b.build(t);
        let cold = predictor.predict_with_caches(&plan, &catalog, &samples, &fit_cache, &sel_cache);
        let warm = predictor.predict_with_caches(&plan, &catalog, &samples, &fit_cache, &sel_cache);
        prop_assert_eq!(sel_cache.stats().hits, 1);
        prop_assert!(warm.sel_estimates.ptr_eq(&cold.sel_estimates));
        prop_assert_eq!(
            warm.sel_estimates.canonical_bytes(),
            cold.sel_estimates.canonical_bytes()
        );
    }
}

/// One cache shared across two *different sample sets* of one catalog must
/// never cross-serve estimates: the sample fingerprint separates them, and
/// each prediction matches its own reference.
#[test]
fn distinct_sample_sets_never_share_estimates() {
    let (predictor, catalog, _) = small_setup();
    let mut rng = Rng::new(77);
    let samples_a = catalog.draw_samples(0.05, 1, &mut rng);
    let samples_b = catalog.draw_samples(0.05, 1, &mut rng);
    assert_ne!(samples_a.fingerprint(), samples_b.fingerprint());

    let fit_cache = SharedFitCache::default();
    let sel_cache = SharedSelEstCache::default();
    let mut b = PlanBuilder::new();
    let t = b.seq_scan("t", Pred::lt("b", Value::Int(1000)));
    let plan = b.build(t);
    let on_a = predictor.predict_with_caches(&plan, &catalog, &samples_a, &fit_cache, &sel_cache);
    let on_b = predictor.predict_with_caches(&plan, &catalog, &samples_b, &fit_cache, &sel_cache);
    let sel = sel_cache.stats();
    assert_eq!(sel.hits, 0, "{sel:?}");
    assert_eq!(sel.entries, 2, "{sel:?}");
    assert_bit_identical(
        &predictor.predict(&plan, &catalog, &samples_a),
        &on_a,
        "samples a",
    );
    assert_bit_identical(
        &predictor.predict(&plan, &catalog, &samples_b),
        &on_b,
        "samples b",
    );
}

/// The `SelEstCache` trait surface stays usable through `&dyn` (the
/// predictor takes trait objects).
#[test]
fn works_through_dyn_object() {
    let (predictor, catalog, samples) = small_setup();
    let sel_cache = SharedSelEstCache::default();
    let dyn_sel: &dyn SelEstCache = &sel_cache;
    let fit_cache = SharedFitCache::default();
    let mut b = PlanBuilder::new();
    let t = b.seq_scan("t", Pred::lt("b", Value::Int(900)));
    let plan = b.build(t);
    let a = predictor.predict_with_caches(&plan, &catalog, &samples, &fit_cache, dyn_sel);
    let c = predictor.predict_with_caches(&plan, &catalog, &samples, &fit_cache, dyn_sel);
    assert_bit_identical(&a, &c, "dyn");
    assert_eq!(sel_cache.stats().hits, 1);
}

/// Concurrency stress: N client threads hammer one service with
/// interleaved hit/miss/evict traffic (tiny cache capacities force
/// constant eviction), and every response must equal a single-threaded
/// replay of the same request sequence bit-for-bit. The replay runs the
/// single-shard configuration (1 worker, 1 queue shard, 1 cache shard)
/// while the concurrent run uses per-worker queue shards and sharded
/// caches, so the differential also pins sharded ≡ unsharded under
/// eviction pressure. `#[ignore]`-gated; CI's service step runs it
/// explicitly (`cargo test -p uaq-service -- --ignored`).
#[test]
#[ignore = "stress test: run explicitly (CI service step) with -- --ignored"]
fn stress_concurrent_hit_miss_evict_matches_single_threaded_replay() {
    let (predictor, catalog, samples) = small_setup();
    // 4 shapes × 6 literal variants = 24 instances against a sel capacity
    // of 8 and a shape capacity of 2: constant interleaved miss + evict.
    let instances: Vec<Arc<Plan>> = (0..6i64)
        .flat_map(|v| {
            let cut = 300 + v * 550;
            let scan_t = {
                let mut b = PlanBuilder::new();
                let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
                Arc::new(b.build(t))
            };
            let scan_u = {
                let mut b = PlanBuilder::new();
                let u = b.seq_scan("u", Pred::ge("y", Value::Int(cut / 2)));
                Arc::new(b.build(u))
            };
            let join = {
                let mut b = PlanBuilder::new();
                let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
                let u = b.seq_scan("u", Pred::True);
                let j = b.hash_join(t, u, "a", "x");
                Arc::new(b.build(j))
            };
            let filtered = {
                let mut b = PlanBuilder::new();
                let t = b.seq_scan("t", Pred::True);
                let f = b.filter(t, Pred::between("a", Value::Int(cut % 40), Value::Int(45)));
                Arc::new(b.build(f))
            };
            [scan_t, scan_u, join, filtered]
        })
        .collect();

    let config = ServiceConfig {
        workers: 6,
        cache: CacheConfig {
            max_shapes: 2,
            max_fits_per_shape: 2,
            max_sel_entries: 8,
            eviction: EvictionPolicy::Segmented,
            shards: 2,
        },
        ..Default::default()
    };

    // Deterministic per-thread request sequences with a shared pseudo-
    // random schedule (same multiset every run).
    let clients = 4;
    let per_client = 150;
    let n_instances = instances.len();
    let sequence_for = move |client: u64| -> Vec<usize> {
        let mut rng = Rng::new(0xC0FFEE ^ client);
        (0..per_client)
            .map(|_| rng.usize_below(n_instances))
            .collect()
    };

    let catalog = Arc::new(catalog);
    let samples = Arc::new(samples);

    // Single-threaded, single-shard replay: the same sequences through a
    // 1-worker service with the same tiny caches and no sharding at all.
    let replay_service = PredictionService::start(
        predictor.clone(),
        Arc::clone(&catalog),
        Arc::clone(&samples),
        ServiceConfig {
            workers: 1,
            queue_shards: 1,
            cache: CacheConfig {
                shards: 1,
                ..config.cache
            },
            ..config.clone()
        },
    );
    let mut replay: Vec<Vec<(u64, u64)>> = Vec::new();
    for client in 0..clients {
        let mut rows = Vec::new();
        for &i in &sequence_for(client as u64) {
            let r = replay_service.predict_blocking(Arc::clone(&instances[i]), Some(75.0));
            rows.push((
                r.prediction.mean_ms().to_bits(),
                r.prediction.var().to_bits(),
            ));
        }
        replay.push(rows);
    }
    replay_service.shutdown();

    // Concurrent run: all clients at once against a 6-worker pool.
    let service = Arc::new(PredictionService::start(
        predictor, catalog, samples, config,
    ));
    let mut handles = Vec::new();
    for client in 0..clients {
        let service = Arc::clone(&service);
        let instances = instances.clone();
        handles.push(std::thread::spawn(move || {
            sequence_for(client as u64)
                .into_iter()
                .enumerate()
                .map(|(n, i)| {
                    let r = service
                        .submit(PredictRequest {
                            id: (client * per_client + n) as u64,
                            plan: Arc::clone(&instances[i]),
                            deadline_ms: Some(75.0),
                            tenant: TenantId::default(),
                        })
                        .recv()
                        .expect("worker alive");
                    (
                        r.prediction.mean_ms().to_bits(),
                        r.prediction.var().to_bits(),
                    )
                })
                .collect::<Vec<_>>()
        }));
    }
    for (client, handle) in handles.into_iter().enumerate() {
        let got = handle.join().expect("client thread");
        assert_eq!(
            got, replay[client],
            "client {client}: concurrent responses drifted from single-threaded replay"
        );
    }
    let stats = service.cache_stats();
    assert!(
        stats.sel_evictions > 0,
        "stress must exercise eviction: {stats:?}"
    );
    assert!(stats.sel_hits > 0, "stress must exercise hits: {stats:?}");
    assert!(
        stats.sel_misses > 0,
        "stress must exercise misses: {stats:?}"
    );
}

/// Worker-kill stress: the same differential discipline with a seeded
/// kill schedule (worker kills between requests, mid-request kills that
/// strike with the request in hand). Invariants: every request is
/// answered exactly once; responses served at a prediction-bearing tier
/// are bit-identical to the uncached reference; and once the injector is
/// disarmed, the recovered service serves every instance warm and
/// bit-identical — kills may cost tiers, never correctness. `#[ignore]`-
/// gated like the concurrency stress; CI's service step runs it.
#[test]
#[ignore = "stress test: run explicitly (CI service step) with -- --ignored"]
fn stress_worker_kills_preserve_exactly_one_response_and_bit_identity() {
    use uaq_service::{
        silence_injected_panics, FaultInjector, FaultPlan, SeededFaultInjector, ServedTier,
    };

    silence_injected_panics();
    let (predictor, catalog, samples) = small_setup();
    let instances: Vec<Arc<Plan>> = (0..4i64)
        .flat_map(|v| {
            let cut = 400 + v * 700;
            let scan = {
                let mut b = PlanBuilder::new();
                let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
                Arc::new(b.build(t))
            };
            let join = {
                let mut b = PlanBuilder::new();
                let t = b.seq_scan("t", Pred::lt("b", Value::Int(cut)));
                let u = b.seq_scan("u", Pred::True);
                let j = b.hash_join(t, u, "a", "x");
                Arc::new(b.build(j))
            };
            [scan, join]
        })
        .collect();
    let references: Vec<Prediction> = instances
        .iter()
        .map(|p| predictor.predict(p, &catalog, &samples))
        .collect();

    // Kills only — no forced misses or delays — so every answered tier
    // above the floor must be exact.
    let plan = FaultPlan {
        worker_kill: 30,
        mid_request_kill: 25,
        ..FaultPlan::none()
    };
    let injector = Arc::new(SeededFaultInjector::new(0x4B1D, plan));
    let catalog = Arc::new(catalog);
    let samples = Arc::new(samples);
    let service = Arc::new(PredictionService::start_with_faults(
        predictor,
        Arc::clone(&catalog),
        Arc::clone(&samples),
        ServiceConfig {
            workers: 4,
            ..Default::default()
        },
        Arc::clone(&injector) as Arc<dyn FaultInjector>,
    ));

    let clients = 4usize;
    let per_client = 100usize;
    let mut handles = Vec::new();
    for client in 0..clients {
        let service = Arc::clone(&service);
        let instances = instances.clone();
        let references: Vec<(u64, u64)> = references
            .iter()
            .map(|r| (r.mean_ms().to_bits(), r.var().to_bits()))
            .collect();
        handles.push(std::thread::spawn(move || {
            let mut rng = Rng::new(0xD1E ^ client as u64);
            let mut degraded = 0usize;
            for n in 0..per_client {
                let i = rng.usize_below(instances.len());
                let rx = service.submit(PredictRequest {
                    id: (client * per_client + n) as u64,
                    plan: Arc::clone(&instances[i]),
                    deadline_ms: Some(100.0),
                    tenant: TenantId::default(),
                });
                let r = rx
                    .recv_timeout(std::time::Duration::from_secs(30))
                    .expect("exactly one response: never lost");
                assert!(rx.try_recv().is_err(), "never duplicated");
                match r.tier {
                    ServedTier::Full | ServedTier::CachedEstimates => {
                        assert_eq!(
                            (
                                r.prediction.mean_ms().to_bits(),
                                r.prediction.var().to_bits()
                            ),
                            references[i],
                            "client {client} req {n}: prediction-bearing tier must be exact"
                        );
                    }
                    _ => degraded += 1,
                }
            }
            degraded
        }));
    }
    let degraded: usize = handles.into_iter().map(|h| h.join().expect("client")).sum();
    let stats = service.robustness_stats();
    assert!(
        stats.workers_respawned > 0,
        "the kill schedule must actually kill: {stats:?}"
    );
    assert_eq!(
        degraded as u64, stats.worker_panics,
        "under a kills-only plan, degraded responses are exactly the mid-request kills: {stats:?}"
    );

    // Post-recovery: disarmed, every instance serves warm and exact.
    injector.disarm();
    for (i, (instance, reference)) in instances.iter().zip(&references).enumerate() {
        let resp = service.predict_blocking(Arc::clone(instance), None);
        assert_eq!(resp.tier, ServedTier::Full, "instance {i}");
        assert_bit_identical(
            reference,
            &resp.prediction,
            &format!("instance {i} post-recovery"),
        );
    }
}
